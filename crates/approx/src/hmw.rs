//! Helmbold–McDowell–Wang safe orderings for semaphore traces (paper
//! Section 4, reference \[5\]).
//!
//! HMW analyze traces of programs that synchronize with counting
//! semaphores, where the V-to-P pairing is *anonymous*: the trace shows
//! which V's and P's executed, but any V's token may have served any P in
//! another execution. Their three phases, as the paper recounts them:
//!
//! 1. order the i-th V before the i-th P of each semaphore (the observed
//!    pairing) — **unsafe**: a different execution may pair differently;
//! 2. replace that by orderings that hold under *every* pairing —
//!    **safe but overly conservative**;
//! 3. **sharpen** by noting that only some P events can actually execute
//!    after certain V events, adding further safe orderings.
//!
//! This module implements the safe computation as a counting fixpoint
//! (the argument behind phases 2–3):
//!
//! > Let `R` be the safe relation so far (initially program order and
//! > fork/join edges, closed). For a P event `p` on semaphore `s`, let
//! > `k = 1 + |{P' on s : p' →R p}|` — in every execution at least `k`
//! > tokens are consumed by the time `p` completes, so at least
//! > `k − initial(s)` V events complete before `p` begins. The V events
//! > that *can* complete before `p` begins are `C = {v : ¬(p →R v)}`.
//! > If `|C|` equals the required count, **every** member of `C` must
//! > precede `p`: add all edges `v → p` and re-close.
//!
//! Each round either adds an edge or terminates, so the fixpoint is
//! polynomial. Soundness is checked in tests against the exact engine
//! (the result must be contained in MHB under the dependence-ignoring
//! feasibility HMW assume — and hence in the paper's MHB as well); the
//! paper's point, proved by Theorem 1 and measured by experiment E7, is
//! that the containment is *strict*: safe orderings are only a subset of
//! MHB.
//!
//! [`unsafe_phase1`] exposes the observed-pairing relation so the unsafety
//! can be demonstrated (tests construct an execution where it claims an
//! ordering the exact engine refutes).

use eo_model::{EventId, Op, ProgramExecution, SemId};
use eo_relations::Relation;

/// The safe (guaranteed) orderings of a semaphore trace, per HMW.
pub struct SafeOrderings {
    relation: Relation,
    rounds: usize,
    edges_added: usize,
}

impl SafeOrderings {
    /// Runs the counting fixpoint on `exec`.
    pub fn compute(exec: &ProgramExecution) -> SafeOrderings {
        let trace = exec.trace();
        let n = exec.n_events();

        // Base: program order + fork/join, NO dependences (HMW's notion of
        // feasibility ignores shared data), closed.
        let no_d = Relation::new(n);
        let mut rel = eo_model::induce::base_edges(trace, &no_d);
        rel.close_transitively();

        // Per-semaphore populations.
        let n_sems = trace.semaphores.len();
        let mut vs: Vec<Vec<EventId>> = vec![Vec::new(); n_sems];
        let mut ps: Vec<Vec<EventId>> = vec![Vec::new(); n_sems];
        for e in &trace.events {
            match e.op {
                Op::SemV(s) => vs[s.index()].push(e.id),
                Op::SemP(s) => ps[s.index()].push(e.id),
                _ => {}
            }
        }

        let mut rounds = 0;
        let mut edges_added = 0;
        loop {
            rounds += 1;
            let mut changed = false;
            for s in 0..n_sems {
                let initial = trace.semaphores[s].initial as usize;
                for &p in &ps[s] {
                    // Tokens consumed by the time p completes.
                    let k = 1 + ps[s]
                        .iter()
                        .filter(|&&q| q != p && rel.contains(q.index(), p.index()))
                        .count();
                    let needed = k.saturating_sub(initial);
                    if needed == 0 {
                        continue;
                    }
                    let candidates: Vec<EventId> = vs[s]
                        .iter()
                        .copied()
                        .filter(|&v| !rel.contains(p.index(), v.index()))
                        .collect();
                    debug_assert!(
                        candidates.len() >= needed,
                        "{} candidate V's for a P needing {needed} on {}",
                        candidates.len(),
                        SemId::new(s)
                    );
                    if candidates.len() == needed {
                        for v in candidates {
                            if rel.insert(v.index(), p.index()) {
                                changed = true;
                                edges_added += 1;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            rel.close_transitively();
        }

        SafeOrderings {
            relation: rel,
            rounds,
            edges_added,
        }
    }

    /// HMW's answer to "is `a` guaranteed before `b`?".
    pub fn guaranteed_before(&self, a: EventId, b: EventId) -> bool {
        self.relation.contains(a.index(), b.index())
    }

    /// The full safe-ordering relation (transitively closed).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Fixpoint rounds taken.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Semaphore edges added beyond program order and fork/join.
    pub fn edges_added(&self) -> usize {
        self.edges_added
    }
}

/// HMW's **phase 1** relation: program order, fork/join, and the observed
/// pairing — the i-th V on each semaphore ordered before the i-th
/// *completed* P. Closed transitively.
///
/// Unsafe: another execution with the same events may pair differently;
/// the test suite exhibits a claimed ordering the exact engine refutes.
pub fn unsafe_phase1(exec: &ProgramExecution) -> Relation {
    let trace = exec.trace();
    let n = exec.n_events();
    let no_d = Relation::new(n);
    let mut rel = eo_model::induce::base_edges(trace, &no_d);

    let n_sems = trace.semaphores.len();
    let mut vs: Vec<Vec<EventId>> = vec![Vec::new(); n_sems];
    let mut ps: Vec<Vec<EventId>> = vec![Vec::new(); n_sems];
    for e in &trace.events {
        match e.op {
            Op::SemV(s) => vs[s.index()].push(e.id),
            Op::SemP(s) => ps[s.index()].push(e.id),
            _ => {}
        }
    }
    for s in 0..n_sems {
        let initial = trace.semaphores[s].initial as usize;
        for (i, &p) in ps[s].iter().enumerate() {
            // The i-th P (0-based) consumes the (i - initial)-th V's token
            // under the FIFO reading; initial tokens pair with nothing.
            if i >= initial {
                if let Some(&v) = vs[s].get(i - initial) {
                    rel.insert(v.index(), p.index());
                }
            }
        }
    }
    rel.close_transitively();
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_engine::{ExactEngine, FeasibilityMode};
    use eo_model::fixtures;
    use eo_model::{Op, TraceBuilder};

    #[test]
    fn handshake_is_found_safe() {
        let (trace, ids) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let safe = SafeOrderings::compute(&exec);
        assert!(safe.guaranteed_before(ids.v, ids.p), "1 V, 1 P: forced");
        assert!(safe.guaranteed_before(ids.v, ids.after_p));
        assert!(!safe.guaranteed_before(ids.after_v, ids.p));
        assert_eq!(safe.edges_added(), 1);
    }

    #[test]
    fn two_v_two_p_forces_nothing_pairwise() {
        // V,V on separate processes; P,P on two more: any V may serve any
        // P, and each P needs ≥1 token with 2 candidates — no single V is
        // forced before a given P... but both P's completing needs both
        // V's: the SECOND P (k=2) has needed=2 = |C| only once one P is
        // ordered. With nothing ordered among P's, no edges at all.
        let mut tb = TraceBuilder::new();
        let a = tb.process("va");
        let b = tb.process("vb");
        let c = tb.process("pc");
        let d = tb.process("pd");
        let s = tb.semaphore("s", 0);
        let v1 = tb.push(a, Op::SemV(s));
        let v2 = tb.push(b, Op::SemV(s));
        let p1 = tb.push(c, Op::SemP(s));
        let p2 = tb.push(d, Op::SemP(s));
        let exec = tb.build().unwrap().to_execution().unwrap();
        let safe = SafeOrderings::compute(&exec);
        for &v in &[v1, v2] {
            for &p in &[p1, p2] {
                assert!(!safe.guaranteed_before(v, p), "{v}->{p} is not guaranteed");
            }
        }
        // The exact engine agrees: each P has some execution where a given
        // V follows it.
        let engine = ExactEngine::new(&exec);
        assert!(!engine.mhb(v1, p1));
    }

    #[test]
    fn chained_p_sharpens_the_count() {
        // One process does P;P (so the second P is always the 2nd token
        // consumer); two V's exist. Both V's must precede the second P.
        let mut tb = TraceBuilder::new();
        let va = tb.process("va");
        let vb = tb.process("vb");
        let pp = tb.process("pp");
        let s = tb.semaphore("s", 0);
        let v1 = tb.push(va, Op::SemV(s));
        let v2 = tb.push(vb, Op::SemV(s));
        let p1 = tb.push(pp, Op::SemP(s));
        let p2 = tb.push(pp, Op::SemP(s));
        let exec = tb.build().unwrap().to_execution().unwrap();
        let safe = SafeOrderings::compute(&exec);
        assert!(safe.guaranteed_before(v1, p2));
        assert!(safe.guaranteed_before(v2, p2));
        assert!(!safe.guaranteed_before(v1, p1), "p1 could use v2's token");
        // Cross-check with the exact engine.
        let engine = ExactEngine::new(&exec);
        assert!(engine.mhb(v1, p2) && engine.mhb(v2, p2));
        assert!(!engine.mhb(v1, p1));
        let _ = p1;
    }

    #[test]
    fn initial_tokens_reduce_the_requirement() {
        let mut tb = TraceBuilder::new();
        let pv = tb.process("v");
        let pq = tb.process("p");
        let s = tb.semaphore("s", 1);
        let v = tb.push(pv, Op::SemV(s));
        let q = tb.push(pq, Op::SemP(s));
        let exec = tb.build().unwrap().to_execution().unwrap();
        let safe = SafeOrderings::compute(&exec);
        assert!(
            !safe.guaranteed_before(v, q),
            "the initial token can serve the P"
        );
    }

    #[test]
    fn safe_orderings_are_sound_wrt_exact_mhb() {
        use eo_lang::generator::{generate_trace, WorkloadSpec};
        for seed in 0..6 {
            let trace = generate_trace(&WorkloadSpec::small_semaphore(seed), 50);
            let exec = trace.to_execution().unwrap();
            let safe = SafeOrderings::compute(&exec);
            let relaxed = ExactEngine::with_mode(&exec, FeasibilityMode::IgnoreDependences);
            for (a, b) in safe.relation().pairs() {
                assert!(
                    relaxed.mhb(EventId::new(a), EventId::new(b)),
                    "seed {seed}: HMW claimed unsound ordering e{a}->e{b}"
                );
            }
        }
    }

    #[test]
    fn phase1_is_unsafe() {
        // Two V's from different processes, one P: the observed order
        // pairs the first V with the P, but the other execution pairs the
        // other V — phase 1's claim is refuted by the exact engine.
        let mut tb = TraceBuilder::new();
        let a = tb.process("va");
        let b = tb.process("vb");
        let c = tb.process("pc");
        let s = tb.semaphore("s", 0);
        let v1 = tb.push(a, Op::SemV(s));
        let _v2 = tb.push(b, Op::SemV(s));
        let p = tb.push(c, Op::SemP(s));
        let exec = tb.build().unwrap().to_execution().unwrap();

        let phase1 = unsafe_phase1(&exec);
        assert!(
            phase1.contains(v1.index(), p.index()),
            "phase 1 trusts the observed pairing"
        );
        let engine = ExactEngine::new(&exec);
        assert!(
            !engine.mhb(v1, p),
            "…but v2's token could serve the P: the claim is unsafe"
        );
    }

    #[test]
    fn phase1_respects_initial_tokens() {
        let mut tb = TraceBuilder::new();
        let pv = tb.process("v");
        let pq = tb.process("p");
        let s = tb.semaphore("s", 1);
        let v = tb.push(pv, Op::SemV(s));
        let q1 = tb.push(pq, Op::SemP(s));
        let q2 = tb.push(pq, Op::SemP(s));
        let exec = tb.build().unwrap().to_execution().unwrap();
        let phase1 = unsafe_phase1(&exec);
        assert!(
            !phase1.contains(v.index(), q1.index()),
            "initial token serves q1"
        );
        assert!(phase1.contains(v.index(), q2.index()));
    }

    #[test]
    fn fixpoint_terminates_quickly_on_fixtures() {
        let (trace, _a, _b) = fixtures::crossing();
        let exec = trace.to_execution().unwrap();
        let safe = SafeOrderings::compute(&exec);
        assert!(safe.rounds() <= 4);
        // Crossing: each semaphore has one V and one P — both forced.
        assert_eq!(safe.edges_added(), 2);
    }
}
