//! [`AnalysisSession`]: one program, one interned state space, many
//! queries.
//!
//! A session owns the engine-side [`QueryMemo`] (interned state arena,
//! dead-state memo, epoch-stamped visit sets) plus the serving-side
//! caches from [`crate::cache`]. Every answer it produces is exact and
//! bit-identical to a fresh one-shot [`eo_engine::ExactEngine`] run of the
//! same query under the same [`EngineOptions`] — the differential test
//! `tests/batch_differential.rs` pins this. What the session changes is
//! *cost*: repeated, symmetric, complementary, or transitively implied
//! queries are answered from caches without touching the state space, and
//! queries that do search reuse every state interned so far.
//!
//! With [`SessionConfig::backend`] set to [`QueryBackend::Sat`], the
//! engine tier answers through the symbolic CNF backend instead of the
//! witness search. Decisions stay bit-identical (both procedures are
//! exact — `tests/backend_differential.rs` pins the agreement); witness
//! *schedules* may legitimately differ, since any feasible schedule with
//! the required property is a valid witness.

use crate::cache::{FactKind, FactStore, WitnessCache};
use eo_approx::{SafeOrderings, TaskGraph};
use eo_engine::{
    Answer, Budget, EngineConfig, EngineError, EngineOptions, ExactEngine, FeasibilityMode,
    OrderingSummary, Query, QueryBackend, QueryMemo, Response, SatSession, SearchCtx,
};
use eo_model::{EventId, ProgramExecution};
use eo_race::Race;
use eo_relations::fxhash::FxHasher;
use eo_relations::Relation;
use std::hash::Hasher;

/// Serving-side configuration for an [`AnalysisSession`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Engine configuration (feasibility mode, limits, budget). The
    /// session resolves budgets through
    /// [`EngineOptions::effective_budget`], exactly as one-shot queries
    /// do.
    pub engine: EngineOptions,
    /// Cross-query result caching (fact store, witness LRU, memoized
    /// summary and race reports). Answers are identical either way; off
    /// exists for differential testing and benchmarking.
    pub cache: bool,
    /// The polynomial guaranteed-ordering prefilter (HMW safe orderings ∪
    /// EGP task graph): sound fast-path answers for pairs the cheap
    /// analyses already decide.
    pub prefilter: bool,
    /// The whole-program static prefilter: run the `eo-mhp` fixpoint on
    /// the program reconstructed from the trace and refute queries its
    /// guaranteed orderings decide — with zero state-space exploration.
    /// Off by default (`eo serve --static-prefilter` turns it on);
    /// answers are identical either way.
    pub static_prefilter: bool,
    /// Capacity of the witness-schedule LRU (entries, not bytes).
    pub witness_capacity: usize,
    /// Which decision procedure answers queries that reach the engine
    /// tier (`eo serve --backend {exact,sat}`). Decided answers are
    /// identical either way; witness *schedules* may differ (both are
    /// valid witnesses). [`QueryBackend::Sat`] answers each query with
    /// one incremental solve against a shared CNF encoding, amortizing
    /// learned clauses across the batch.
    pub backend: QueryBackend,
    /// The non-default [`EngineConfig`] fields this session was opened
    /// with, echoed additively on every reply as a `config` object.
    /// Empty (no echo, byte-stable responses) unless the session was
    /// built from an explicit config via
    /// [`SessionConfig::from_engine_config`].
    pub config_echo: Vec<(&'static str, String)>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineOptions::default(),
            cache: true,
            prefilter: true,
            static_prefilter: false,
            witness_capacity: 256,
            backend: QueryBackend::Exact,
            config_echo: Vec::new(),
        }
    }
}

impl SessionConfig {
    /// A session config carrying every knob of one [`EngineConfig`]:
    /// mode, equivalence, and budget caps into the engine options,
    /// `backend` and `static_prefilter` into the serving layer, and the
    /// config's non-default fields into the per-reply `config` echo.
    pub fn from_engine_config(cfg: &EngineConfig) -> SessionConfig {
        SessionConfig {
            engine: cfg.engine_options(),
            static_prefilter: cfg.static_prefilter,
            backend: cfg.backend,
            config_echo: cfg.non_default_fields(),
            ..SessionConfig::default()
        }
    }
}

/// Running counters for one session; the server aggregates these into the
/// `serve.*` metrics in [`eo_obs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (including degraded ones).
    pub queries: u64,
    /// Queries answered from a cross-query cache without any search.
    pub cache_hits: u64,
    /// Queries that were not cache hits.
    pub cache_misses: u64,
    /// Cache misses decided by the polynomial guarantee relation alone.
    pub prefilter_hits: u64,
    /// Cache misses decided by the whole-program MHP static prefilter,
    /// with zero state-space exploration.
    pub static_prefilter_hits: u64,
}

impl SessionStats {
    /// Accumulates another session's counters (used when a batch is
    /// split across worker sessions).
    pub fn merge(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.prefilter_hits += other.prefilter_hits;
        self.static_prefilter_hits += other.static_prefilter_hits;
    }
}

/// A [`Response`] plus serving metadata: where the answer came from.
#[derive(Clone, Debug)]
pub struct SessionReply {
    /// The query and its exact answer.
    pub response: Response,
    /// Answered from a cross-query cache (fact store, witness LRU,
    /// memoized summary) without running any search.
    pub cached: bool,
    /// Decided by the polynomial guarantee prefilter.
    pub prefilter: bool,
    /// Decided by the whole-program MHP static prefilter (no trace-level
    /// analysis, no state-space exploration).
    pub static_prefilter: bool,
    /// The backend configured for the engine tier of this session
    /// (echoed on every reply; the protocol layer renders it additively
    /// so default `exact` responses stay byte-stable).
    pub backend: QueryBackend,
    /// Non-default engine-config fields (additive `config` echo; empty
    /// for sessions not built from an explicit [`EngineConfig`]).
    pub config_echo: Vec<(&'static str, String)>,
    /// The synchronization primitive classes present in this program's
    /// trace, echoed on `summary` responses (stable order).
    pub primitives: Vec<&'static str>,
}

/// A long-lived analysis session over one program execution.
///
/// Construction is cheap (the state space grows lazily, query by query).
/// The session is `!Sync` by design — one mutable owner per state space;
/// the server shards batches across independent sessions instead.
pub struct AnalysisSession<'e> {
    exec: &'e ProgramExecution,
    fingerprint: u64,
    config: SessionConfig,
    ctx: SearchCtx<'e>,
    memo: QueryMemo,
    /// Race detection requires the operational F(P) (`IgnoreDependences`);
    /// when the session's own mode differs, a second context + memo are
    /// built lazily for it.
    race_ctx: Option<SearchCtx<'e>>,
    race_memo: Option<QueryMemo>,
    /// The symbolic backend, built lazily on the first engine-tier query
    /// when `config.backend` is [`QueryBackend::Sat`]. Owns its own CNF
    /// encoding and learned-clause database, shared by every query of
    /// the session.
    sat: Option<SatSession>,
    facts: FactStore,
    witnesses: WitnessCache,
    summary: Option<Box<OrderingSummary>>,
    races: Option<Vec<Race>>,
    guarantee: Option<Relation>,
    static_facts: Option<Box<StaticFacts>>,
    stats: SessionStats,
}

/// Lazily built whole-program static facts: the `eo-mhp` fixpoint of the
/// program the trace reconstructs, with its statement verdicts projected
/// onto this execution's events.
struct StaticFacts {
    /// `ordered.contains(a, b)` ⇔ event `a`'s statement is guaranteed to
    /// complete before event `b`'s statement begins, in every execution.
    ordered: Relation,
    mhp: eo_mhp::MhpAnalysis,
    /// Statement anchor of each event (branch-free reconstruction:
    /// preorder statement numbering is process-major event order).
    stmt_of: Vec<eo_mhp::StmtId>,
}

impl<'e> AnalysisSession<'e> {
    /// Opens a session with default configuration.
    pub fn new(exec: &'e ProgramExecution) -> Self {
        AnalysisSession::with_config(exec, SessionConfig::default())
    }

    /// Opens a session with explicit configuration.
    pub fn with_config(exec: &'e ProgramExecution, config: SessionConfig) -> Self {
        let ctx = SearchCtx::new(exec, config.engine.mode);
        let memo = QueryMemo::with_budget(&ctx, config.engine.effective_budget());
        let n = exec.n_events();
        AnalysisSession {
            exec,
            fingerprint: fingerprint(exec),
            witnesses: WitnessCache::new(config.witness_capacity),
            config,
            ctx,
            memo,
            race_ctx: None,
            race_memo: None,
            sat: None,
            facts: FactStore::new(n),
            summary: None,
            races: None,
            guarantee: None,
            static_facts: None,
            stats: SessionStats::default(),
        }
    }

    /// The program execution this session analyses.
    pub fn exec(&self) -> &'e ProgramExecution {
        self.exec
    }

    /// A stable fingerprint of the program's trace; result caches are
    /// keyed on it so cached answers can never leak across programs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Replaces the budget every subsequent query runs under, leaving all
    /// caches and interned state intact. Long-lived sessions need this:
    /// a [`Budget`] deadline is absolute from construction and its cancel
    /// flag is sticky, so a server that kept the opening budget would
    /// eventually degrade every query. Renewing per request restores the
    /// one-shot contract — each query sees a fresh clock — without
    /// rebuilding the session.
    pub fn set_budget(&mut self, budget: Budget) {
        // `Query::Summary` builds a one-shot engine from these options, so
        // they must carry the renewed budget too.
        self.config.engine.budget = Some(budget);
        // The memos take the *resolved* budget (unset caps filled from the
        // engine limits), exactly as construction does.
        let effective = self.config.engine.effective_budget();
        self.memo.set_budget(effective.clone());
        if let Some(memo) = &mut self.race_memo {
            memo.set_budget(effective.clone());
        }
        if let Some(sat) = &mut self.sat {
            sat.set_budget(effective);
        }
    }

    /// The symbolic backend, built on first use (its construction pays
    /// the cubic encoding once; every query after that is incremental).
    fn sat_session(&mut self) -> &mut SatSession {
        let ctx = &self.ctx;
        let budget = self.config.engine.effective_budget();
        self.sat
            .get_or_insert_with(|| SatSession::with_budget(ctx, budget))
    }

    /// States interned in the session's main state arena so far.
    pub fn interned_states(&self) -> usize {
        self.memo.interned_states()
    }

    /// Answers one query. Exact: the reply is bit-identical to
    /// [`ExactEngine::query`] with the same [`EngineOptions`]; `Err` means
    /// the budget stopped the search (degraded, not wrong).
    ///
    /// # Panics
    ///
    /// Panics if a query names an event id out of range, or if a witness
    /// query repeats the same event (the protocol layer validates both).
    pub fn query(&mut self, query: Query) -> Result<SessionReply, EngineError> {
        self.stats.queries += 1;
        match query {
            Query::Mhb { a, b } => self.decide(query, FactKind::Mhb, a, b),
            Query::Chb { a, b } => self.decide(query, FactKind::Chb, a, b),
            Query::Ccw { a, b } => self.decide(query, FactKind::Ccw, a, b),
            Query::WitnessBefore { first, second } => self.witness(query, first, second, false),
            Query::WitnessOverlap { a, b } => self.witness(query, a, b, true),
            Query::Summary => self.summary_query(),
            other => {
                // `Query` is non-exhaustive; a session refusing a new
                // variant loudly beats silently mis-answering it.
                unimplemented!("serve session does not handle {other:?}")
            }
        }
    }

    /// Answers a batch in order, collecting per-query results. Budget
    /// errors degrade the affected queries only; later queries still run
    /// (and may still be served from caches).
    pub fn query_batch(&mut self, queries: &[Query]) -> Vec<Result<SessionReply, EngineError>> {
        queries.iter().map(|&q| self.query(q)).collect()
    }

    /// The exact race report for this program (operational F(P)). Memoized
    /// after the first call when caching is on.
    pub fn races(&mut self) -> Result<(Vec<Race>, bool), EngineError> {
        self.stats.queries += 1;
        if self.config.cache {
            if let Some(r) = &self.races {
                self.stats.cache_hits += 1;
                return Ok((r.clone(), true));
            }
        }
        self.stats.cache_misses += 1;
        if self.config.static_prefilter {
            self.static_facts();
        }
        let facts = self.static_facts.as_deref();
        let prefilter = facts.map(|f| eo_race::StaticPrefilter::new(&f.mhp, &f.stmt_of));
        let races = if self.config.engine.mode == FeasibilityMode::IgnoreDependences {
            eo_race::try_exact_races_with_memo_prefiltered(
                &self.ctx,
                &mut self.memo,
                prefilter.as_ref(),
            )?
        } else {
            if self.race_ctx.is_none() {
                self.race_ctx = Some(SearchCtx::new(
                    self.exec,
                    FeasibilityMode::IgnoreDependences,
                ));
            }
            let ctx = self.race_ctx.as_ref().expect("race ctx just installed");
            let memo = self.race_memo.get_or_insert_with(|| {
                QueryMemo::with_budget(ctx, self.config.engine.effective_budget())
            });
            eo_race::try_exact_races_with_memo_prefiltered(ctx, memo, prefilter.as_ref())?
        };
        if self.config.cache {
            self.races = Some(races.clone());
        }
        Ok((races, false))
    }

    fn reply(&self, query: Query, answer: Answer, cached: bool, prefilter: bool) -> SessionReply {
        SessionReply {
            response: Response::new(query, answer),
            cached,
            prefilter,
            static_prefilter: false,
            backend: self.config.backend,
            config_echo: self.config.config_echo.clone(),
            // The primitive-set echo rides only on whole-program summary
            // replies; point queries stay lean.
            primitives: match query {
                Query::Summary => primitive_set(self.exec),
                _ => Vec::new(),
            },
        }
    }

    fn reply_static(&self, query: Query, answer: Answer) -> SessionReply {
        SessionReply {
            static_prefilter: true,
            ..self.reply(query, answer, false, false)
        }
    }

    fn decide(
        &mut self,
        query: Query,
        kind: FactKind,
        a: EventId,
        b: EventId,
    ) -> Result<SessionReply, EngineError> {
        assert!(
            a.index() < self.exec.n_events() && b.index() < self.exec.n_events(),
            "event id out of range for this program"
        );
        if a == b {
            // Irreflexive by definition; the engine answers without
            // searching and so do we (counted as neither hit nor miss).
            return Ok(self.reply(query, Answer::Decided(false), false, false));
        }
        if self.config.cache {
            if let Some(v) = self.facts.lookup(kind, a, b) {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Decided(v), true, false));
            }
        }
        self.stats.cache_misses += 1;
        if self.config.static_prefilter {
            let g = &self.static_facts().ordered;
            if let Some(v) = decide_from_guarantee(g, kind, a, b) {
                self.stats.static_prefilter_hits += 1;
                if self.config.cache {
                    self.facts.record(kind, a, b, v);
                }
                return Ok(self.reply_static(query, Answer::Decided(v)));
            }
        }
        if self.config.prefilter {
            if let Some(v) = self.prefilter_decide(kind, a, b) {
                self.stats.prefilter_hits += 1;
                if self.config.cache {
                    self.facts.record(kind, a, b, v);
                }
                return Ok(self.reply(query, Answer::Decided(v), false, true));
            }
        }
        let v = if self.config.backend == QueryBackend::Sat {
            let sat = self.sat_session();
            match kind {
                FactKind::Mhb => sat.try_must_happen_before(a, b)?,
                FactKind::Chb => sat.try_could_happen_before(a, b)?,
                FactKind::Ccw => sat.try_could_be_concurrent(a, b)?,
            }
        } else {
            match kind {
                FactKind::Mhb => self.memo.try_must_happen_before(&self.ctx, a, b)?,
                FactKind::Chb => self.memo.try_could_happen_before(&self.ctx, a, b)?,
                FactKind::Ccw => self.memo.try_could_be_concurrent(&self.ctx, a, b)?,
            }
        };
        if self.config.cache {
            self.facts.record(kind, a, b, v);
        }
        Ok(self.reply(query, Answer::Decided(v), false, false))
    }

    fn witness(
        &mut self,
        query: Query,
        a: EventId,
        b: EventId,
        overlap: bool,
    ) -> Result<SessionReply, EngineError> {
        assert!(
            a.index() < self.exec.n_events() && b.index() < self.exec.n_events(),
            "event id out of range for this program"
        );
        assert!(a != b, "witness queries need two distinct events");
        // Overlap witnesses are symmetric in (a, b) — the search visits the
        // same states either way — so the cache key is order-normalized.
        let key = if overlap {
            Query::WitnessOverlap {
                a: EventId::new(a.index().min(b.index())),
                b: EventId::new(a.index().max(b.index())),
            }
        } else {
            query
        };
        if self.config.cache {
            if let Some(w) = self.witnesses.get(self.fingerprint, key) {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Witness(w), true, false));
            }
            // A refuted relation instance refutes the witness too: no
            // schedule to exhibit. (The converse — an affirmed instance —
            // still needs a search to produce the schedule itself.)
            let refuted = if overlap {
                self.facts.lookup(FactKind::Ccw, a, b) == Some(false)
            } else {
                self.facts.lookup(FactKind::Chb, a, b) == Some(false)
            };
            if refuted {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Witness(None), true, false));
            }
        }
        self.stats.cache_misses += 1;
        if self.config.static_prefilter {
            let g = &self.static_facts().ordered;
            // A static order refutes the witness the same way the dynamic
            // guarantee does: no execution runs the events the other way.
            let refuted = if overlap {
                decide_from_guarantee(g, FactKind::Ccw, a, b) == Some(false)
            } else {
                g.contains(b.index(), a.index())
            };
            if refuted {
                self.stats.static_prefilter_hits += 1;
                if self.config.cache {
                    let kind = if overlap {
                        FactKind::Ccw
                    } else {
                        FactKind::Chb
                    };
                    self.facts.record(kind, a, b, false);
                    self.witnesses.put(self.fingerprint, key, None);
                }
                return Ok(self.reply_static(query, Answer::Witness(None)));
            }
        }
        if self.config.prefilter {
            let refuted = if overlap {
                self.prefilter_decide(FactKind::Ccw, a, b) == Some(false)
            } else {
                // G(b, a) forces b before a in every execution: no witness
                // runs a first.
                self.guarantee().contains(b.index(), a.index())
            };
            if refuted {
                self.stats.prefilter_hits += 1;
                if self.config.cache {
                    let kind = if overlap {
                        FactKind::Ccw
                    } else {
                        FactKind::Chb
                    };
                    self.facts.record(kind, a, b, false);
                    self.witnesses.put(self.fingerprint, key, None);
                }
                return Ok(self.reply(query, Answer::Witness(None), false, true));
            }
        }
        let w = if self.config.backend == QueryBackend::Sat {
            let sat = self.sat_session();
            if overlap {
                sat.try_witness_overlap(a, b)?
            } else {
                sat.try_witness_before(a, b)?
            }
        } else if overlap {
            self.memo.try_witness_overlap(&self.ctx, a, b)?
        } else {
            self.memo.try_witness_before(&self.ctx, a, b)?
        };
        if self.config.cache {
            let kind = if overlap {
                FactKind::Ccw
            } else {
                FactKind::Chb
            };
            self.facts.record(kind, a, b, w.is_some());
            self.witnesses.put(self.fingerprint, key, w.clone());
        }
        Ok(self.reply(query, Answer::Witness(w), false, false))
    }

    fn summary_query(&mut self) -> Result<SessionReply, EngineError> {
        if self.config.cache {
            if let Some(s) = &self.summary {
                self.stats.cache_hits += 1;
                return Ok(self.reply(Query::Summary, Answer::Summary(s.clone()), true, false));
            }
        }
        self.stats.cache_misses += 1;
        let engine = ExactEngine::with_options(self.exec, self.config.engine.clone());
        let summary = Box::new(engine.try_summary()?);
        if self.config.cache {
            // One summary decides every pairwise instance; seed the fact
            // store so later point queries are O(1) hits.
            self.facts.seed_summary(&summary);
            self.summary = Some(summary.clone());
        }
        Ok(self.reply(Query::Summary, Answer::Summary(summary), false, false))
    }

    /// A sound fast-path decision from the guarantee relation, or `None`
    /// when the cheap analyses don't decide this pair.
    fn prefilter_decide(&mut self, kind: FactKind, a: EventId, b: EventId) -> Option<bool> {
        decide_from_guarantee(self.guarantee(), kind, a, b)
    }

    /// The whole-program static facts — built lazily on first use by
    /// reconstructing the trace's canonical program, running the `eo-mhp`
    /// fixpoint on it, and projecting the statement verdicts onto events.
    /// When caching is on the event orderings are seeded into the fact
    /// store through the same guarantee rules the polynomial prefilter
    /// uses, so cached facts and static facts can never disagree.
    fn static_facts(&mut self) -> &StaticFacts {
        if self.static_facts.is_none() {
            let (program, event_of_stmt) = eo_lang::program_from_trace(self.exec.trace());
            let mhp = eo_mhp::MhpAnalysis::analyze(&program);
            let mut stmt_of = vec![eo_mhp::StmtId(0); event_of_stmt.len()];
            for (si, ev) in event_of_stmt.iter().enumerate() {
                stmt_of[ev.index()] = eo_mhp::StmtId(si as u32);
            }
            let ordered = mhp.event_orderings(&stmt_of);
            if self.config.cache {
                self.facts.seed_guarantee(&ordered);
            }
            self.static_facts = Some(Box::new(StaticFacts {
                ordered,
                mhp,
                stmt_of,
            }));
        }
        self.static_facts
            .as_deref()
            .expect("static facts just built")
    }

    /// The guarantee relation G = HMW safe orderings ∪ EGP task graph,
    /// transitively closed — built lazily on first use and seeded into the
    /// fact store when caching is on.
    fn guarantee(&mut self) -> &Relation {
        if self.guarantee.is_none() {
            let mut g = SafeOrderings::compute(self.exec).relation().clone();
            g.union_with(TaskGraph::build(self.exec).relation());
            g.close_transitively();
            if self.config.cache {
                self.facts.seed_guarantee(&g);
            }
            self.guarantee = Some(g);
        }
        self.guarantee.as_ref().expect("guarantee just built")
    }
}

/// A sound fast-path decision from a guarantee-style ordering relation
/// (`g(a,b)` ⇔ `a` completes before `b` begins in every execution): used
/// by both the polynomial prefilter and the whole-program static
/// prefilter, which therefore can never disagree where both decide.
fn decide_from_guarantee(g: &Relation, kind: FactKind, a: EventId, b: EventId) -> Option<bool> {
    let (ai, bi) = (a.index(), b.index());
    match kind {
        // G(a,b) ⇒ a before b in every feasible execution ⇒ MHB. The
        // converse direction is not decided by G's absence.
        FactKind::Mhb => g.contains(ai, bi).then_some(true),
        // G(a,b) ⇒ a before b in *some* execution too (F(P) contains
        // the observed run), so CHB(a,b) holds; G(b,a) refutes it.
        FactKind::Chb => {
            if g.contains(ai, bi) {
                Some(true)
            } else if g.contains(bi, ai) {
                Some(false)
            } else {
                None
            }
        }
        // A guaranteed order in either direction rules out overlap.
        FactKind::Ccw => (g.contains(ai, bi) || g.contains(bi, ai)).then_some(false),
    }
}

/// The synchronization primitive classes present in a program's trace,
/// in a stable order. Traces are always in the core calculus (surface
/// barriers/monitors/channels reach the engine desugared to semaphores),
/// so the vocabulary here is the core one.
pub fn primitive_set(exec: &ProgramExecution) -> Vec<&'static str> {
    use eo_model::Op;
    let (mut compute, mut sem, mut ev, mut fj) = (false, false, false, false);
    for i in 0..exec.n_events() {
        match &exec.trace().event(eo_model::EventId::new(i)).op {
            Op::Compute => compute = true,
            Op::SemP(_) | Op::SemV(_) => sem = true,
            Op::Post(_) | Op::Wait(_) | Op::Clear(_) => ev = true,
            Op::Fork(_) | Op::Join(_) => fj = true,
        }
    }
    let mut out = Vec::new();
    for (present, name) in [
        (compute, "compute"),
        (ev, "event-var"),
        (fj, "fork-join"),
        (sem, "semaphore"),
    ] {
        if present {
            out.push(name);
        }
    }
    out
}

/// Fingerprints a program execution by hashing its canonical trace JSON.
pub fn fingerprint(exec: &ProgramExecution) -> u64 {
    let mut h = FxHasher::default();
    h.write(exec.trace().to_value().pretty().as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::fixtures;

    fn decided(reply: &SessionReply) -> bool {
        match reply.response.answer {
            Answer::Decided(v) => v,
            ref other => panic!("expected a decided answer, got {other:?}"),
        }
    }

    /// The satellite invariant: a fact served from the cross-query cache
    /// and a fact decided by the whole-program static prefilter can never
    /// disagree — the static tier seeds the fact store through the same
    /// sound guarantee rules, and both must match the engine oracle.
    #[test]
    fn cached_facts_and_static_facts_never_disagree() {
        let (trace, _) = fixtures::figure1();
        let exec = ProgramExecution::from_trace(trace).expect("fixture is valid");
        let mut oracle = AnalysisSession::with_config(
            &exec,
            SessionConfig {
                cache: false,
                prefilter: false,
                static_prefilter: false,
                ..Default::default()
            },
        );
        let mut session = AnalysisSession::with_config(
            &exec,
            SessionConfig {
                prefilter: false,
                static_prefilter: true,
                ..Default::default()
            },
        );
        let n = exec.n_events();
        let mut static_answers = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                for q in [
                    Query::Mhb { a: ea, b: eb },
                    Query::Chb { a: ea, b: eb },
                    Query::Ccw { a: ea, b: eb },
                ] {
                    let expected = decided(&oracle.query(q).expect("no budget"));
                    let first = session.query(q).expect("no budget");
                    assert_eq!(decided(&first), expected, "{q:?}");
                    if first.static_prefilter {
                        static_answers += 1;
                    }
                    // Ask again: the answer is now in the fact store (the
                    // static tier and engine answers both seed it), and
                    // the cached fact must agree with what was served.
                    let again = session.query(q).expect("no budget");
                    assert_eq!(decided(&again), expected, "{q:?} (cached)");
                    assert!(again.cached, "{q:?}: second ask must be a cache hit");
                }
            }
        }
        assert!(
            session.stats().static_prefilter_hits + static_answers > 0
                || session.stats().cache_hits > 0,
            "the static tier (directly or via seeded facts) must answer something"
        );
        assert!(
            session.stats().static_prefilter_hits == static_answers,
            "reply markers and counters agree"
        );
    }
}
