//! A Callahan–Subhlok-style static guaranteed-ordering analysis (paper
//! Section 4, reference \[1\]).
//!
//! Callahan and Subhlok analyze loop-free parallel programs *statically*:
//! which statement instances are guaranteed to execute in a given order in
//! **every** execution of the program (they prove that question co-NP-hard
//! too, and give a data-flow framework computing a sound subset). This
//! module is that framework adapted to `eo-lang`'s AST:
//!
//! For every static statement `s`, compute `prec(s)` — the set of
//! statements guaranteed to have *executed and completed* before `s`, in
//! every execution in which `s` executes. The transfer rules are exactly
//! the intuitive ones:
//!
//! * sequence: `prec(sᵢ₊₁) ⊇ prec(sᵢ) ∪ {sᵢ}`;
//! * conditional: the continuation inherits the test plus the
//!   *intersection* of what the two branches guarantee (a statement inside
//!   one branch is not guaranteed to the continuation unless both branches
//!   contain it — with our tree-shaped blocks, only the test survives the
//!   meet, plus everything before it);
//! * fork: the target's first statement inherits `{fork} ∪ prec(fork)`;
//! * join: inherits every statement on *all* paths through each joined
//!   process, plus whatever the target's entry already inherited;
//! * `Wait(v)`: whichever `Post(v)` fired, that post and its own
//!   guarantees happened — so the wait inherits the **intersection** over
//!   all `Post(v)` statements `p` of `{p} ∪ prec(p)`. (Clears are handled
//!   conservatively: if the variable has any `Clear`, the wait inherits
//!   nothing from posts — a cleared flag may have been re-posted by any of
//!   them. C&S target the Clear-free language, and so does the precise
//!   rule here.)
//! * semaphores: no static rule (C&S's language has none); `P`/`V` behave
//!   like opaque statements. Sound, maximally incomplete — the HMW
//!   *dynamic* analysis is the semaphore story.
//!
//! The sets grow monotonically under these rules, so iterating to a
//! fixpoint terminates; the result is sound with respect to *every*
//! execution of the program, which the tests check against the exact
//! engine on each observable trace (static claims must be contained in
//! every trace's dependence-ignoring MHB — all-executions guarantees are
//! in particular same-events guarantees).
//!
//! Statements are numbered by `eo-lang`'s shared [`StmtMap`] flattening,
//! so [`StmtId`]s produced here interoperate directly with the anchored
//! interpreter runs (`eo_lang::run_to_trace_anchored`) and the `eo-lint`
//! diagnostics built on the same numbering.

use eo_lang::stmt::StmtMap;
use eo_lang::{Program, StmtKind};
use eo_relations::{BitSet, Relation};

pub use eo_lang::stmt::StmtId;

/// One flattened statement: where it lives and what it is.
#[derive(Clone, Debug)]
pub struct StaticStmt {
    /// The owning process definition.
    pub process: eo_lang::ProcRef,
    /// Mnemonic of the statement kind (diagnostics).
    pub kind: &'static str,
    /// The statement's label, if any.
    pub label: Option<String>,
}

/// The result of the static analysis.
pub struct StaticOrderings {
    stmts: Vec<StaticStmt>,
    /// `guaranteed.contains(a, b)` ⇔ statement `a` completes before `b`
    /// begins in every execution in which `b` executes.
    guaranteed: Relation,
    /// `entry.contains(a, b)` ⇔ statement `a` completes before control
    /// *reaches* `b` — the inflow of the fixpoint, without `b`'s own
    /// Wait/Join contributions. Unlike [`StaticOrderings::guaranteed_before`],
    /// this holds even in executions where `b` blocks forever at its
    /// statement, which is what deadlock reasoning needs.
    entry: Relation,
    rounds: usize,
}

impl StaticOrderings {
    /// Runs the data-flow fixpoint on `program`.
    ///
    /// # Panics
    /// Panics if the program fails static validation.
    pub fn analyze(program: &Program) -> StaticOrderings {
        program
            .validate()
            .expect("analyze requires a valid program");
        let map = StmtMap::build(program);
        let n = map.len();

        // Posts per event variable, and whether the variable has Clears.
        let n_ev = program.event_vars.len();
        let mut posts: Vec<Vec<StmtId>> = vec![Vec::new(); n_ev];
        let mut has_clear = vec![false; n_ev];
        let initially_set: Vec<bool> = program.event_vars.iter().map(|v| v.initially_set).collect();
        for id in map.ids() {
            match map.kind(id) {
                StmtKind::Post(v) => posts[v.index()].push(id),
                StmtKind::Clear(v) => has_clear[v.index()] = true,
                _ => {}
            }
        }

        // Fork site per definition (validation guarantees at most one).
        let mut fork_site: Vec<Option<StmtId>> = vec![None; program.processes.len()];
        for id in map.ids() {
            if let StmtKind::Fork(targets) = map.kind(id) {
                for t in targets {
                    fork_site[t.index()] = Some(id);
                }
            }
        }

        let mut prec: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        let mut entries: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = false;

            for (pi, def) in program.processes.iter().enumerate() {
                // Entry set of this definition.
                let mut flow_in = BitSet::new(n);
                if !def.root {
                    if let Some(fork) = fork_site[pi] {
                        flow_in.union_with(&prec[fork.index()]);
                        flow_in.insert(fork.index());
                    }
                }
                let body = map.body(eo_lang::ProcRef(pi as u32));
                changed |= walk_block(
                    &map,
                    body,
                    flow_in,
                    &mut prec,
                    &mut entries,
                    &posts,
                    &has_clear,
                    &initially_set,
                )
                .1;
            }

            if !changed {
                break;
            }
        }

        // Materialize the relation: a guaranteed-before b ⇔ a ∈ prec(b).
        // Note the relation may contain cycles: a statement on a prec-cycle
        // (e.g. a process that Waits on a flag only it Posts later) can
        // never execute in ANY run, so its "guaranteed before" claims are
        // vacuously true — the per-execution reading is "in every execution
        // in which b executes", and there are none.
        let mut guaranteed = Relation::new(n);
        for (b, preds) in prec.iter().enumerate() {
            for a in preds.iter() {
                guaranteed.insert(a, b);
            }
        }
        let mut entry = Relation::new(n);
        for (b, preds) in entries.iter().enumerate() {
            for a in preds.iter() {
                entry.insert(a, b);
            }
        }

        let stmts = map
            .ids()
            .map(|id| StaticStmt {
                process: map.process(id),
                kind: map.kind_name(id),
                label: map.node(id).label.clone(),
            })
            .collect();

        StaticOrderings {
            stmts,
            guaranteed,
            entry,
            rounds,
        }
    }

    /// Number of static statements.
    pub fn n_stmts(&self) -> usize {
        self.stmts.len()
    }

    /// The flattened statement table.
    pub fn stmts(&self) -> &[StaticStmt] {
        &self.stmts
    }

    /// Is `a` guaranteed to complete before `b` begins in every execution
    /// in which `b` executes?
    pub fn guaranteed_before(&self, a: StmtId, b: StmtId) -> bool {
        self.guaranteed.contains(a.index(), b.index())
    }

    /// Is `a` guaranteed to complete before control *reaches* `b`, in
    /// every execution in which `b` is reached?
    ///
    /// Strictly weaker evidence than [`StaticOrderings::guaranteed_before`]
    /// but it holds even when `b` is a blocking statement that never
    /// fires: `guaranteed_before(a, b)` is conditioned on `b` *executing*
    /// (a `Wait`'s prec set includes the very posts it waits for), while
    /// this is conditioned only on control arriving at `b`. Deadlock
    /// reasoning must use this form — "the supplier already ran when the
    /// process got stuck here" — or it would assume away the stuck state.
    pub fn completes_before_reaching(&self, a: StmtId, b: StmtId) -> bool {
        self.entry.contains(a.index(), b.index())
    }

    /// Are `a` and `b` guaranteed-ordered in *some* direction?
    ///
    /// This is the race-pruning query: if two conflicting events anchor
    /// to statements ordered either way, they cannot execute concurrently
    /// in any execution in which both run, so the pair can be discarded
    /// without consulting an exact engine. (Statements on a prec-cycle
    /// are vacuously ordered — they never execute — but events observed
    /// in an actual trace did execute, so their anchors are cycle-free.)
    pub fn ordered_either_way(&self, a: StmtId, b: StmtId) -> bool {
        self.guaranteed_before(a, b) || self.guaranteed_before(b, a)
    }

    /// The full guaranteed-ordering relation over statement ids.
    pub fn relation(&self) -> &Relation {
        &self.guaranteed
    }

    /// Fixpoint rounds taken.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The first statement carrying `label`.
    pub fn stmt_labeled(&self, label: &str) -> Option<StmtId> {
        self.stmts
            .iter()
            .position(|s| s.label.as_deref() == Some(label))
            .map(|i| StmtId(i as u32))
    }
}

/// Walks a block with the given inflow; returns (outflow-of-block,
/// changed) where outflow = statements guaranteed executed-and-completed
/// after the block runs, for callers sequencing behind it.
#[allow(clippy::too_many_arguments)]
fn walk_block(
    map: &StmtMap<'_>,
    ids: &[StmtId],
    mut flow: BitSet,
    prec: &mut [BitSet],
    entries: &mut [BitSet],
    posts: &[Vec<StmtId>],
    has_clear: &[bool],
    initially_set: &[bool],
) -> (BitSet, bool) {
    let mut changed = false;
    for &id in ids {
        // This statement inherits the inflow — recorded twice: the raw
        // inflow is the *entry* set (complete before control arrives),
        // then prec additionally absorbs statement-specific sources
        // (complete before the statement finishes).
        entries[id.index()].union_with(&flow);
        changed |= prec[id.index()].union_with(&flow);

        // …plus statement-specific sources.
        match map.kind(id) {
            StmtKind::Wait(v) => {
                let vi = v.index();
                // The post-meet rule is sound only when a Post is the ONLY
                // way the flag can be set: no Clears (a cleared flag may be
                // re-posted by anyone) and not initially set (the wait may
                // fire off the initial flag with no post at all).
                if !has_clear[vi] && !initially_set[vi] && !posts[vi].is_empty() {
                    // Whichever post fired: intersection over candidates.
                    let mut meet: Option<BitSet> = None;
                    for &p in &posts[vi] {
                        let mut contrib = prec[p.index()].clone();
                        contrib.insert(p.index());
                        match &mut meet {
                            None => meet = Some(contrib),
                            Some(m) => {
                                m.intersect_with(&contrib);
                            }
                        }
                    }
                    if let Some(m) = meet {
                        changed |= prec[id.index()].union_with(&m);
                    }
                }
            }
            StmtKind::Join(targets) => {
                for t in targets {
                    // Everything on all paths through the target, plus its
                    // entry inflow, precedes the join.
                    let body = map.body(*t);
                    let all_paths = guaranteed_through(map, body);
                    changed |= prec[id.index()].union_with(&all_paths);
                    if let Some(&first) = body.first() {
                        let entry = prec[first.index()].clone();
                        changed |= prec[id.index()].union_with(&entry);
                    }
                }
            }
            StmtKind::If { .. } => {
                // Branches flow from the test.
                let mut branch_in = prec[id.index()].clone();
                branch_in.insert(id.index());
                let (then_out, c1) = walk_block(
                    map,
                    map.then_branch(id),
                    branch_in.clone(),
                    prec,
                    entries,
                    posts,
                    has_clear,
                    initially_set,
                );
                let (else_out, c2) = walk_block(
                    map,
                    map.else_branch(id),
                    branch_in,
                    prec,
                    entries,
                    posts,
                    has_clear,
                    initially_set,
                );
                changed |= c1 | c2;
                // Continuation: test + inflow + meet of branch outflows.
                let mut meet = then_out;
                meet.intersect_with(&else_out);
                flow = prec[id.index()].clone();
                flow.insert(id.index());
                flow.union_with(&meet);
                continue;
            }
            _ => {}
        }

        // Default sequencing: the next statement sees this one completed.
        flow = prec[id.index()].clone();
        flow.insert(id.index());
    }
    (flow, changed)
}

/// Statements on *all* paths through `ids` (a block): every non-If
/// statement, plus recursively each If's test and the meet of its
/// branches.
fn guaranteed_through(map: &StmtMap<'_>, ids: &[StmtId]) -> BitSet {
    let n = map.len();
    let mut out = BitSet::new(n);
    for &id in ids {
        out.insert(id.index());
        if let StmtKind::If { .. } = map.kind(id) {
            let mut meet = guaranteed_through(map, map.then_branch(id));
            meet.intersect_with(&guaranteed_through(map, map.else_branch(id)));
            out.union_with(&meet);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_lang::ProgramBuilder;

    #[test]
    fn straight_line_order() {
        let mut b = ProgramBuilder::new();
        let p = b.process("p");
        b.compute(p, "a").compute(p, "b").compute(p, "c");
        let so = StaticOrderings::analyze(&b.build());
        let (a, b_, c) = (
            so.stmt_labeled("a").unwrap(),
            so.stmt_labeled("b").unwrap(),
            so.stmt_labeled("c").unwrap(),
        );
        assert!(so.guaranteed_before(a, b_));
        assert!(so.guaranteed_before(a, c), "transitive through sequencing");
        assert!(!so.guaranteed_before(c, a));
        assert!(so.ordered_either_way(c, a), "ordered, just the other way");
    }

    #[test]
    fn parallel_processes_unordered() {
        let mut b = ProgramBuilder::new();
        let p0 = b.process("p0");
        let p1 = b.process("p1");
        b.compute(p0, "a");
        b.compute(p1, "b");
        let so = StaticOrderings::analyze(&b.build());
        let (a, b_) = (so.stmt_labeled("a").unwrap(), so.stmt_labeled("b").unwrap());
        assert!(!so.guaranteed_before(a, b_));
        assert!(!so.guaranteed_before(b_, a));
        assert!(!so.ordered_either_way(a, b_));
    }

    #[test]
    fn fork_and_join_order_across_processes() {
        let mut b = ProgramBuilder::new();
        let main = b.process("main");
        let w = b.subprocess("w");
        b.compute(main, "pre");
        b.compute(w, "work");
        b.fork(main, &[w]);
        b.join(main, &[w]);
        b.compute(main, "post");
        let so = StaticOrderings::analyze(&b.build());
        let pre = so.stmt_labeled("pre").unwrap();
        let work = so.stmt_labeled("work").unwrap();
        let post = so.stmt_labeled("post").unwrap();
        assert!(
            so.guaranteed_before(pre, work),
            "fork carries prec into the child"
        );
        assert!(
            so.guaranteed_before(work, post),
            "join carries the child back"
        );
    }

    #[test]
    fn single_post_orders_the_wait() {
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let p0 = b.process("poster");
        b.compute(p0, "before_post");
        b.post(p0, ev);
        let p1 = b.process("waiter");
        b.wait(p1, ev);
        b.compute(p1, "after_wait");
        let so = StaticOrderings::analyze(&b.build());
        let before = so.stmt_labeled("before_post").unwrap();
        let after = so.stmt_labeled("after_wait").unwrap();
        assert!(so.guaranteed_before(before, after));
    }

    #[test]
    fn two_posts_guarantee_only_their_meet() {
        // Two posters with a common prologue statement each… the wait can
        // only rely on the intersection, which is empty across different
        // processes.
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let p0 = b.process("poster0");
        b.compute(p0, "pre0");
        b.post(p0, ev);
        let p1 = b.process("poster1");
        b.compute(p1, "pre1");
        b.post(p1, ev);
        let p2 = b.process("waiter");
        b.wait(p2, ev);
        b.compute(p2, "after");
        let so = StaticOrderings::analyze(&b.build());
        let after = so.stmt_labeled("after").unwrap();
        assert!(!so.guaranteed_before(so.stmt_labeled("pre0").unwrap(), after));
        assert!(!so.guaranteed_before(so.stmt_labeled("pre1").unwrap(), after));
    }

    #[test]
    fn clears_disable_the_wait_rule() {
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let p0 = b.process("poster");
        b.compute(p0, "pre");
        b.post(p0, ev);
        let p1 = b.process("clearer");
        b.clear(p1, ev);
        let p2 = b.process("waiter");
        b.wait(p2, ev);
        b.compute(p2, "after");
        let so = StaticOrderings::analyze(&b.build());
        assert!(
            !so.guaranteed_before(
                so.stmt_labeled("pre").unwrap(),
                so.stmt_labeled("after").unwrap()
            ),
            "with a Clear around, the post inference is withdrawn"
        );
    }

    #[test]
    fn branch_meet_keeps_only_the_test() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let p = b.process("p");
        b.if_eq_labeled(
            p,
            x,
            0,
            "test",
            |t| {
                t.compute_here("then_work");
            },
            |e| {
                e.compute_here("else_work");
            },
        );
        b.compute(p, "after");
        let so = StaticOrderings::analyze(&b.build());
        let after = so.stmt_labeled("after").unwrap();
        assert!(so.guaranteed_before(so.stmt_labeled("test").unwrap(), after));
        assert!(
            !so.guaranteed_before(so.stmt_labeled("then_work").unwrap(), after),
            "a branch statement is not guaranteed to the continuation"
        );
        assert!(!so.guaranteed_before(so.stmt_labeled("else_work").unwrap(), after));
    }

    #[test]
    fn post_on_all_paths_via_both_branches_is_not_claimed() {
        // Both branches post, so the wait IS always triggered — but by
        // *different statements*; the meet keeps only their common prec
        // (the test). Sound, though incomplete.
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let ev = b.event_var("ev");
        let p0 = b.process("poster");
        b.compute(p0, "pre");
        b.if_eq_labeled(
            p0,
            x,
            0,
            "test",
            |t| {
                t.post_here(ev);
            },
            |e| {
                e.post_here(ev);
            },
        );
        let p1 = b.process("waiter");
        b.wait(p1, ev);
        b.compute(p1, "after");
        let so = StaticOrderings::analyze(&b.build());
        let after = so.stmt_labeled("after").unwrap();
        assert!(so.guaranteed_before(so.stmt_labeled("pre").unwrap(), after));
        assert!(so.guaranteed_before(so.stmt_labeled("test").unwrap(), after));
    }

    #[test]
    fn semaphores_contribute_nothing_statically() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p0 = b.process("p0");
        b.compute(p0, "a");
        b.sem_v(p0, s);
        let p1 = b.process("p1");
        b.sem_p(p1, s);
        b.compute(p1, "b");
        let so = StaticOrderings::analyze(&b.build());
        assert!(
            !so.guaranteed_before(so.stmt_labeled("a").unwrap(), so.stmt_labeled("b").unwrap()),
            "C&S's language has no semaphores; the static rule stays silent"
        );
    }

    #[test]
    fn entry_sets_exclude_the_waited_for_posts() {
        // prec(Wait) contains the post (it fired before the wait
        // *completed*), but entry(Wait) must not — in a run where the wait
        // blocks forever, the post may never have happened. A mutual-wait
        // deadlock is exactly the program where the difference matters.
        let mut b = ProgramBuilder::new();
        let u = b.event_var("u");
        let v = b.event_var("v");
        let p0 = b.process("p0");
        b.labeled(p0, eo_lang::StmtKind::Wait(u), "wait_u");
        b.labeled(p0, eo_lang::StmtKind::Post(v), "post_v");
        let p1 = b.process("p1");
        b.labeled(p1, eo_lang::StmtKind::Wait(v), "wait_v");
        b.labeled(p1, eo_lang::StmtKind::Post(u), "post_u");
        let so = StaticOrderings::analyze(&b.build());
        let wait_v = so.stmt_labeled("wait_v").unwrap();
        let post_v = so.stmt_labeled("post_v").unwrap();
        assert!(
            so.guaranteed_before(post_v, wait_v),
            "prec-level claim holds (vacuously — wait_v never completes)"
        );
        assert!(
            !so.completes_before_reaching(post_v, wait_v),
            "entry-level claim must NOT hold: p1 reaches wait_v unconditionally"
        );
        // Sequencing within a process does reach the entry set.
        let wait_u = so.stmt_labeled("wait_u").unwrap();
        assert!(so.completes_before_reaching(wait_u, post_v));
    }

    #[test]
    fn numbering_agrees_with_the_shared_stmt_map() {
        // StaticOrderings and StmtMap must number statements identically —
        // anchored interpreter runs rely on it.
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let p = b.process("p");
        b.compute(p, "a");
        b.if_eq_labeled(
            p,
            x,
            0,
            "t",
            |t| {
                t.compute_here("then");
            },
            |e| {
                e.compute_here("else");
            },
        );
        b.compute(p, "z");
        let prog = b.build();
        let so = StaticOrderings::analyze(&prog);
        let map = StmtMap::build(&prog);
        assert_eq!(so.n_stmts(), map.len());
        for label in ["a", "t", "then", "else", "z"] {
            assert_eq!(so.stmt_labeled(label), map.labeled(label), "label {label}");
        }
    }

    #[test]
    fn static_claims_hold_on_every_observed_trace() {
        // Soundness against the exact engine: run the program under many
        // schedulers; for each trace, every static claim between executed
        // labeled statements must be contained in the trace's exact
        // dependence-ignoring MHB.
        use eo_engine::{ExactEngine, FeasibilityMode};
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let main = b.process("main");
        let w = b.subprocess("w");
        b.compute(main, "m0");
        b.fork(main, &[w]);
        b.compute(w, "w0");
        b.post(w, ev);
        b.wait(main, ev);
        b.join(main, &[w]);
        b.compute(main, "m1");
        let program = b.build();
        let so = StaticOrderings::analyze(&program);

        for seed in 0..6 {
            let trace =
                eo_lang::run_to_trace(&program, &mut eo_lang::Scheduler::random(seed)).unwrap();
            let exec = trace.to_execution().unwrap();
            let engine = ExactEngine::with_mode(&exec, FeasibilityMode::IgnoreDependences);
            for (a, bb) in so.relation().pairs() {
                let (la, lb) = (&so.stmts()[a].label, &so.stmts()[bb].label);
                if let (Some(la), Some(lb)) = (la, lb) {
                    if let (Some(ea), Some(eb)) = (exec.event_labeled(la), exec.event_labeled(lb)) {
                        assert!(
                            engine.mhb(ea, eb),
                            "static claim {la}->{lb} must hold dynamically (seed {seed})"
                        );
                    }
                }
            }
        }
    }
}
