//! Lowering surface synchronization to the paper's core calculus.
//!
//! The paper's complexity results (and every analysis layer in this
//! repository — the exact engine, the CNF encoding, the MHP fixpoint,
//! the HMW/EGP approximations) are stated over fork/join, counting
//! semaphores, and Post/Wait/Clear. The surface primitives
//! ([`StmtKind::BarrierWait`], [`StmtKind::Lock`]/[`StmtKind::Unlock`],
//! [`StmtKind::CondWait`]/[`StmtKind::CondSignal`],
//! [`StmtKind::Send`]/[`StmtKind::Recv`]) are each given meaning by a
//! *sound desugaring* into that core:
//!
//! | surface                | core form (per statement)                        |
//! |------------------------|--------------------------------------------------|
//! | `lock(m)`              | `P(m.mtx)` — binary semaphore, initial 1         |
//! | `unlock(m)`            | `V(m.mtx)`                                       |
//! | `cond_signal(c)`       | `V(c.cv)` — counted wake tokens, initial 0       |
//! | `cond_wait(c, m)`      | `V(m.mtx); P(c.cv); P(m.mtx)`                    |
//! | `send(ch)` (cap k)     | `P(ch.slots); V(ch.items)` — slots init k        |
//! | `recv(ch)`             | `P(ch.items); V(ch.slots)` — items init 0        |
//! | `barrier_wait(b)`, round r, party i of n | `V(s[r][i][j])` for each j≠i, then `P(s[r][j][i])` for each j≠i |
//!
//! Each barrier generation gets its own pairwise handshake semaphores,
//! so the *existing* semaphore meet rule in `eo-mhp` (intersect over all
//! V suppliers) derives the all-to-all barrier ordering with no special
//! case: every `P(s[r][j][i])` has exactly one supplier — party j's
//! arrival — hence everything before any party's arrival is guaranteed
//! before everything after any other party's departure. DESIGN.md §15
//! gives the per-primitive soundness arguments.
//!
//! [`DesugarMap`] is the provenance side table: it names, for every core
//! statement, the surface statement it implements and whether it is that
//! statement's **commit** step (the single step that represents the
//! statement in schedule projections — matching
//! [`crate::interp::commit_step`] for the direct interpretation). Lints,
//! MHP verdicts, and witness schedules computed on the core form travel
//! back to surface statements through this map.

use crate::ast::{Program, ProgramError, SemDef, Stmt, StmtKind};
use crate::stmt::{StmtId, StmtMap};
use eo_model::SemId;

/// How one core statement relates to the surface statement it lowers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesugarRole {
    /// The single representative step: schedule projections keep exactly
    /// the commit events, one per executed surface statement.
    Commit,
    /// Scaffolding (reservations, releases, handshake halves).
    Aux,
}

/// Provenance from the desugared core program back to the surface
/// program. Core statements are identified by their [`StmtId`] under
/// `StmtMap::build(&desugared.program)`; surface statements by their
/// [`StmtId`] under `StmtMap::build(&surface_program)`.
#[derive(Clone, Debug)]
pub struct DesugarMap {
    /// Indexed by core [`StmtId`]: the originating surface statement and
    /// this core statement's role in its lowering.
    origin: Vec<(StmtId, DesugarRole)>,
    /// Indexed by surface [`StmtId`]: the core commit statement.
    commit: Vec<StmtId>,
    /// Indexed by surface [`StmtId`]: all core statements lowering it,
    /// in program order.
    cores: Vec<Vec<StmtId>>,
}

impl DesugarMap {
    /// The surface statement a core statement implements.
    pub fn surface_of(&self, core: StmtId) -> StmtId {
        self.origin[core.index()].0
    }

    /// The core statement's role in its surface statement's lowering.
    pub fn role(&self, core: StmtId) -> DesugarRole {
        self.origin[core.index()].1
    }

    /// Whether the core statement is its surface statement's commit step.
    pub fn is_commit(&self, core: StmtId) -> bool {
        self.origin[core.index()].1 == DesugarRole::Commit
    }

    /// The core commit statement of a surface statement.
    pub fn commit_core(&self, surface: StmtId) -> StmtId {
        self.commit[surface.index()]
    }

    /// All core statements lowering a surface statement, in order.
    pub fn cores_of(&self, surface: StmtId) -> &[StmtId] {
        &self.cores[surface.index()]
    }

    /// Number of surface statements.
    pub fn surface_len(&self) -> usize {
        self.commit.len()
    }

    /// Number of core statements.
    pub fn core_len(&self) -> usize {
        self.origin.len()
    }

    /// Projects a core run's per-event anchors (`stmt_of` from
    /// [`crate::interp::run_to_trace_anchored`] on the **desugared**
    /// program) onto the sequence of committed surface statements — the
    /// object the desugar-vs-direct differential compares.
    pub fn project_commits(&self, stmt_of: &[StmtId]) -> Vec<StmtId> {
        stmt_of
            .iter()
            .filter(|sid| self.is_commit(**sid))
            .map(|sid| self.surface_of(*sid))
            .collect()
    }
}

/// A desugared program plus the provenance map back to its surface form.
#[derive(Clone, Debug)]
pub struct Desugared {
    /// The core-only program (no surface declarations or statements).
    pub program: Program,
    /// Core-to-surface provenance.
    pub map: DesugarMap,
}

/// Projects a **direct** anchored run (of the surface program itself)
/// onto its committed-statement sequence — the direct-side counterpart
/// of [`DesugarMap::project_commits`].
pub fn direct_commits(run: &crate::interp::AnchoredRun) -> Vec<StmtId> {
    run.stmt_of
        .iter()
        .zip(&run.commit_of)
        .filter(|(_, &c)| c)
        .map(|(&sid, _)| sid)
        .collect()
}

/// Lowers `program` to the core calculus. Validates first; programs
/// already in core form come back as a clone with an identity map, so
/// callers can desugar unconditionally.
pub fn desugar(program: &Program) -> Result<Desugared, ProgramError> {
    program.validate()?;
    let surface = StmtMap::build(program);

    // Participant lists (process indices, in ProcRef order) and round
    // counts per barrier, from the same top-level walk validation does.
    let n_procs = program.processes.len();
    let mut waits = vec![vec![0u32; n_procs]; program.barriers.len()];
    for (pi, def) in program.processes.iter().enumerate() {
        for stmt in &def.body {
            if let StmtKind::BarrierWait(b) = &stmt.kind {
                waits[b.index()][pi] += 1;
            }
        }
    }
    let parts: Vec<Vec<usize>> = waits
        .iter()
        .map(|per_proc| {
            (0..n_procs)
                .filter(|&pi| per_proc[pi] > 0)
                .collect::<Vec<_>>()
        })
        .collect();

    // Generated semaphores are appended after the surface ones, so every
    // surface SemId stays valid in the core program.
    let mut sems: Vec<SemDef> = program.semaphores.clone();
    let mut fresh = |name: String, initial: u32| -> SemId {
        let id = SemId::new(sems.len());
        sems.push(SemDef { name, initial });
        id
    };

    // Per barrier: handshake semaphore ids, indexed [round][from][to]
    // over participant indices (the [i][i] diagonal is unused padding).
    let mut bar_sems: Vec<Vec<Vec<Vec<SemId>>>> = Vec::with_capacity(program.barriers.len());
    for (bi, def) in program.barriers.iter().enumerate() {
        let n = parts[bi].len();
        let rounds = parts[bi]
            .first()
            .map(|&pi| waits[bi][pi] as usize)
            .unwrap_or(0);
        let mut per_round = Vec::with_capacity(rounds);
        for k in 0..rounds {
            let mut from = vec![vec![SemId::new(0); n]; n];
            #[allow(clippy::needless_range_loop)] // i/j are matrix coordinates
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        from[i][j] = fresh(format!("{}.r{k}.{i}to{j}", def.name), 0);
                    }
                }
            }
            per_round.push(from);
        }
        bar_sems.push(per_round);
    }
    let mtx_sems: Vec<SemId> = program
        .mutexes
        .iter()
        .map(|m| fresh(format!("{}.mtx", m.name), 1))
        .collect();
    let cond_sems: Vec<SemId> = program
        .condvars
        .iter()
        .map(|c| fresh(format!("{}.cv", c.name), 0))
        .collect();
    let chan_slot_sems: Vec<SemId> = program
        .channels
        .iter()
        .map(|c| fresh(format!("{}.slots", c.name), c.capacity))
        .collect();
    let chan_item_sems: Vec<SemId> = program
        .channels
        .iter()
        .map(|c| fresh(format!("{}.items", c.name), 0))
        .collect();

    let mut lower = Lower {
        parts: &parts,
        bar_sems: &bar_sems,
        mtx_sems: &mtx_sems,
        cond_sems: &cond_sems,
        chan_slot_sems: &chan_slot_sems,
        chan_item_sems: &chan_item_sems,
        wait_seen: vec![vec![0usize; n_procs]; program.barriers.len()],
        origin: Vec::new(),
        commit: vec![StmtId(0); surface.len()],
        next_surface: 0,
    };

    let processes = program
        .processes
        .iter()
        .enumerate()
        .map(|(pi, def)| crate::ast::ProcDef {
            name: def.name.clone(),
            root: def.root,
            body: lower.block(pi, &def.body),
        })
        .collect();

    debug_assert_eq!(lower.next_surface as usize, surface.len());
    let mut cores = vec![Vec::new(); surface.len()];
    for (core_ix, (sid, _)) in lower.origin.iter().enumerate() {
        cores[sid.index()].push(StmtId(core_ix as u32));
    }
    let map = DesugarMap {
        origin: lower.origin,
        commit: lower.commit,
        cores,
    };
    let core = Program {
        processes,
        semaphores: sems,
        event_vars: program.event_vars.clone(),
        variables: program.variables.clone(),
        barriers: Vec::new(),
        mutexes: Vec::new(),
        condvars: Vec::new(),
        channels: Vec::new(),
    };
    debug_assert!(core.validate().is_ok(), "desugaring broke validity");
    debug_assert_eq!(map.core_len(), StmtMap::build(&core).len());
    Ok(Desugared { program: core, map })
}

struct Lower<'a> {
    parts: &'a [Vec<usize>],
    bar_sems: &'a [Vec<Vec<Vec<SemId>>>],
    mtx_sems: &'a [SemId],
    cond_sems: &'a [SemId],
    chan_slot_sems: &'a [SemId],
    chan_item_sems: &'a [SemId],
    /// Per barrier per process: top-level waits lowered so far (= round).
    wait_seen: Vec<Vec<usize>>,
    /// Filled in core-StmtMap preorder: entry `k` describes core
    /// statement `StmtId(k)`. This works because the lowering emits core
    /// statements in exactly the preorder `StmtMap::build` numbers them.
    origin: Vec<(StmtId, DesugarRole)>,
    commit: Vec<StmtId>,
    next_surface: u32,
}

impl Lower<'_> {
    fn emit(&mut self, out: &mut Vec<Stmt>, surface: StmtId, role: DesugarRole, stmt: Stmt) {
        let core = StmtId(self.origin.len() as u32);
        self.origin.push((surface, role));
        if role == DesugarRole::Commit {
            self.commit[surface.index()] = core;
        }
        out.push(stmt);
    }

    fn block(&mut self, pi: usize, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            self.stmt(pi, stmt, &mut out);
        }
        out
    }

    fn stmt(&mut self, pi: usize, stmt: &Stmt, out: &mut Vec<Stmt>) {
        let sid = StmtId(self.next_surface);
        self.next_surface += 1;
        let label = stmt.label.clone();
        match &stmt.kind {
            StmtKind::If {
                var,
                equals,
                then_branch,
                else_branch,
            } => {
                // Preorder: the If itself, then its branches. Reserve the
                // origin entry before recursing so core ids line up.
                let core = StmtId(self.origin.len() as u32);
                self.origin.push((sid, DesugarRole::Commit));
                self.commit[sid.index()] = core;
                let t = self.block(pi, then_branch);
                let e = self.block(pi, else_branch);
                out.push(Stmt {
                    kind: StmtKind::If {
                        var: *var,
                        equals: *equals,
                        then_branch: t,
                        else_branch: e,
                    },
                    label,
                });
            }
            StmtKind::BarrierWait(b) => {
                let parts = &self.parts[b.index()];
                let i = parts
                    .iter()
                    .position(|&p| p == pi)
                    .expect("validated: waiting process is a participant");
                let round = self.wait_seen[b.index()][pi];
                self.wait_seen[b.index()][pi] += 1;
                let n = parts.len();
                if n == 1 {
                    // A one-party barrier is a no-op; keep one event so
                    // the statement still commits.
                    self.emit(
                        out,
                        sid,
                        DesugarRole::Commit,
                        Stmt {
                            kind: StmtKind::Skip,
                            label,
                        },
                    );
                    return;
                }
                let sems = &self.bar_sems[b.index()][round];
                #[allow(clippy::needless_range_loop)] // j indexes peer columns
                for j in 0..n {
                    if j != i {
                        self.emit(
                            out,
                            sid,
                            DesugarRole::Aux,
                            Stmt::new(StmtKind::SemV(sems[i][j])),
                        );
                    }
                }
                let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                for (ix, &j) in others.iter().enumerate() {
                    let role = if ix + 1 == others.len() {
                        DesugarRole::Commit
                    } else {
                        DesugarRole::Aux
                    };
                    let lbl = if role == DesugarRole::Commit {
                        label.clone()
                    } else {
                        None
                    };
                    self.emit(
                        out,
                        sid,
                        role,
                        Stmt {
                            kind: StmtKind::SemP(sems[j][i]),
                            label: lbl,
                        },
                    );
                }
            }
            StmtKind::Lock(m) => self.emit(
                out,
                sid,
                DesugarRole::Commit,
                Stmt {
                    kind: StmtKind::SemP(self.mtx_sems[m.index()]),
                    label,
                },
            ),
            StmtKind::Unlock(m) => self.emit(
                out,
                sid,
                DesugarRole::Commit,
                Stmt {
                    kind: StmtKind::SemV(self.mtx_sems[m.index()]),
                    label,
                },
            ),
            StmtKind::CondWait(c, m) => {
                self.emit(
                    out,
                    sid,
                    DesugarRole::Aux,
                    Stmt::new(StmtKind::SemV(self.mtx_sems[m.index()])),
                );
                self.emit(
                    out,
                    sid,
                    DesugarRole::Aux,
                    Stmt::new(StmtKind::SemP(self.cond_sems[c.index()])),
                );
                self.emit(
                    out,
                    sid,
                    DesugarRole::Commit,
                    Stmt {
                        kind: StmtKind::SemP(self.mtx_sems[m.index()]),
                        label,
                    },
                );
            }
            StmtKind::CondSignal(c) => self.emit(
                out,
                sid,
                DesugarRole::Commit,
                Stmt {
                    kind: StmtKind::SemV(self.cond_sems[c.index()]),
                    label,
                },
            ),
            StmtKind::Send(ch) => {
                self.emit(
                    out,
                    sid,
                    DesugarRole::Aux,
                    Stmt::new(StmtKind::SemP(self.chan_slot_sems[ch.index()])),
                );
                self.emit(
                    out,
                    sid,
                    DesugarRole::Commit,
                    Stmt {
                        kind: StmtKind::SemV(self.chan_item_sems[ch.index()]),
                        label,
                    },
                );
            }
            StmtKind::Recv(ch) => {
                self.emit(
                    out,
                    sid,
                    DesugarRole::Commit,
                    Stmt {
                        kind: StmtKind::SemP(self.chan_item_sems[ch.index()]),
                        label,
                    },
                );
                self.emit(
                    out,
                    sid,
                    DesugarRole::Aux,
                    Stmt::new(StmtKind::SemV(self.chan_slot_sems[ch.index()])),
                );
            }
            core_kind => self.emit(
                out,
                sid,
                DesugarRole::Commit,
                Stmt {
                    kind: core_kind.clone(),
                    label,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::interp::{run_to_trace, run_to_trace_anchored};
    use crate::scheduler::Scheduler;

    #[test]
    fn core_program_round_trips_identically() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p0 = b.process("p0");
        b.sem_v(p0, s).compute(p0, "a");
        let p1 = b.process("p1");
        b.sem_p(p1, s).compute(p1, "b");
        let prog = b.build();
        let d = desugar(&prog).unwrap();
        assert_eq!(d.program, prog, "core programs are fixed points");
        for sid in StmtMap::build(&prog).ids() {
            assert_eq!(d.map.surface_of(sid), sid);
            assert!(d.map.is_commit(sid));
            assert_eq!(d.map.commit_core(sid), sid);
        }
    }

    #[test]
    fn mutex_lowers_to_binary_semaphore() {
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let p0 = b.process("p0");
        b.lock(p0, m).compute(p0, "cs0").unlock(p0, m);
        let p1 = b.process("p1");
        b.lock(p1, m).compute(p1, "cs1").unlock(p1, m);
        let prog = b.build();
        let d = desugar(&prog).unwrap();
        assert_eq!(d.program.semaphores.len(), 1);
        assert_eq!(d.program.semaphores[0].initial, 1);
        assert_eq!(d.program.semaphores[0].name, "m.mtx");
        // Every schedule of the core form keeps the critical sections
        // disjoint; a quick run sanity-checks executability.
        let t = run_to_trace(&d.program, &mut Scheduler::round_robin()).unwrap();
        assert_eq!(t.n_events(), 6);
    }

    #[test]
    fn barrier_round_uses_pairwise_handshakes() {
        let mut b = ProgramBuilder::new();
        let bar = b.barrier("bar", 3);
        for i in 0..3 {
            let p = b.process(&format!("p{i}"));
            b.compute(p, &format!("before{i}"));
            b.barrier_wait(p, bar);
            b.compute(p, &format!("after{i}"));
        }
        let prog = b.build();
        let d = desugar(&prog).unwrap();
        // 3 parties, 1 round: 3·2 handshake semaphores.
        assert_eq!(d.program.semaphores.len(), 6);
        let run = run_to_trace_anchored(&d.program, &mut Scheduler::round_robin()).unwrap();
        // Commit projection has one entry per surface statement executed.
        let commits = d.map.project_commits(&run.stmt_of);
        assert_eq!(commits.len(), 9);
        // No "after" may commit before every "before" has committed.
        let surface = StmtMap::build(&prog);
        let first_after = commits
            .iter()
            .position(|&sid| {
                surface
                    .node(sid)
                    .label
                    .as_deref()
                    .is_some_and(|l| l.starts_with("after"))
            })
            .unwrap();
        for i in 0..3 {
            let before = surface.labeled(&format!("before{i}")).unwrap();
            let pos = commits.iter().position(|&s| s == before).unwrap();
            assert!(
                pos < first_after,
                "barrier orders before{i} ahead of all afters"
            );
        }
    }

    #[test]
    fn unequal_barrier_rounds_rejected() {
        let mut b = ProgramBuilder::new();
        let bar = b.barrier("bar", 2);
        let p0 = b.process("p0");
        b.barrier_wait(p0, bar).barrier_wait(p0, bar);
        let p1 = b.process("p1");
        b.barrier_wait(p1, bar);
        assert!(matches!(
            b.try_build(),
            Err(ProgramError::BarrierRounds { .. })
        ));
    }

    #[test]
    fn channel_lowers_to_slot_item_semaphores() {
        let mut b = ProgramBuilder::new();
        let ch = b.channel("ch", 2);
        let tx = b.process("tx");
        b.send(tx, ch).send(tx, ch).send(tx, ch);
        let rx = b.process("rx");
        b.recv(rx, ch).recv(rx, ch).recv(rx, ch);
        let prog = b.build();
        let d = desugar(&prog).unwrap();
        assert_eq!(d.program.semaphores.len(), 2);
        assert_eq!(d.program.semaphores[0].initial, 2, "slots = capacity");
        assert_eq!(d.program.semaphores[1].initial, 0, "items start empty");
        let t = run_to_trace(&d.program, &mut Scheduler::round_robin()).unwrap();
        assert_eq!(t.n_events(), 12, "2 core events per send/recv");
    }
}
