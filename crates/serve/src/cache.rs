//! Cross-query caches: the pairwise fact store and the witness LRU.
//!
//! A session answers many queries about one program, and the queries
//! overlap heavily: MHB and CHB are complements across the diagonal
//! (`a CHB b ⇔ ¬(b MHB a)`), CCW is symmetric, MHB is transitive, and a
//! witness query decides the corresponding relation instance as a side
//! effect. The crate-private `FactStore` exploits exactly those identities — and only
//! those: every derivation rule here is an identity the exact engine
//! itself satisfies, so a fact-served answer is bit-identical to what a
//! fresh engine run would return.
//!
//! Deliberately **not** a rule: `a MHB b` does *not* refute `a CCW b`.
//! The operational could-be-concurrent relation asks whether both events
//! can be simultaneously *ready*, which a forced execution order does not
//! preclude. CCW facts come only from CCW-shaped answers (engine results,
//! the summary, or the polynomial guarantee relation, which is sound for
//! CCW by the argument in `eo_engine::degraded`).

use eo_engine::Query;
use eo_model::EventId;
use eo_relations::fxhash::FxHashMap;
use eo_relations::{BitSet, Relation};

/// Which decided relation a fact belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FactKind {
    /// must-have-happened-before.
    Mhb,
    /// could-have-happened-before.
    Chb,
    /// operational could-be-concurrent.
    Ccw,
}

/// Decided pairwise facts for one program, with sound derivation.
///
/// Internally everything reduces to two matrices per relation family:
/// proved-true and proved-false MHB pairs (CHB is stored through the
/// complement identity) plus symmetric proved/refuted CCW pairs. MHB
/// truths are kept transitively closed incrementally, so proving `a → b`
/// and `b → c` separately still answers `a → c` without a search.
pub(crate) struct FactStore {
    n: usize,
    mhb_yes: Relation,
    mhb_no: Relation,
    /// Symmetric, keyed min→max.
    ccw_yes: Relation,
    /// Symmetric, keyed min→max.
    ccw_no: Relation,
}

impl FactStore {
    pub(crate) fn new(n: usize) -> Self {
        FactStore {
            n,
            mhb_yes: Relation::new(n),
            mhb_no: Relation::new(n),
            ccw_yes: Relation::new(n),
            ccw_no: Relation::new(n),
        }
    }

    /// Looks up a decided fact. `a == b` pairs are handled by the session
    /// (every relation here is irreflexive), not stored.
    pub(crate) fn lookup(&self, kind: FactKind, a: EventId, b: EventId) -> Option<bool> {
        let (a, b) = (a.index(), b.index());
        match kind {
            FactKind::Mhb => self.mhb(a, b),
            // a CHB b ⇔ ¬(b MHB a): the engine decides both through the
            // same witness search, so the identity is exact, not a bound.
            FactKind::Chb => self.mhb(b, a).map(|v| !v),
            FactKind::Ccw => {
                let (x, y) = (a.min(b), a.max(b));
                if self.ccw_yes.contains(x, y) {
                    Some(true)
                } else if self.ccw_no.contains(x, y) {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    fn mhb(&self, a: usize, b: usize) -> Option<bool> {
        if self.mhb_yes.contains(a, b) {
            Some(true)
        } else if self.mhb_no.contains(a, b) {
            Some(false)
        } else {
            None
        }
    }

    /// Records a decided fact (an engine answer, a guarantee-relation
    /// consequence, or a summary entry).
    pub(crate) fn record(&mut self, kind: FactKind, a: EventId, b: EventId, value: bool) {
        let (a, b) = (a.index(), b.index());
        match kind {
            FactKind::Mhb => self.record_mhb(a, b, value),
            FactKind::Chb => self.record_mhb(b, a, !value),
            FactKind::Ccw => {
                let (x, y) = (a.min(b), a.max(b));
                if value {
                    self.ccw_yes.insert(x, y);
                } else {
                    self.ccw_no.insert(x, y);
                }
            }
        }
    }

    fn record_mhb(&mut self, a: usize, b: usize, value: bool) {
        if !value {
            self.mhb_no.insert(a, b);
            return;
        }
        if self.mhb_yes.contains(a, b) {
            return;
        }
        // Incremental transitive closure: everything reaching `a` now also
        // reaches `b` and everything `b` reaches. MHB is transitive (it
        // quantifies over the same set of induced orders), so the derived
        // pairs are exact engine answers, not approximations.
        let mut b_row: BitSet = self.mhb_yes.row(b).clone();
        b_row.insert(b);
        for x in 0..self.n {
            if x == a || self.mhb_yes.contains(x, a) {
                self.mhb_yes.row_mut(x).union_with(&b_row);
            }
        }
    }

    /// Seeds the store from the polynomial guarantee relation `g` (HMW
    /// safe orderings ∪ EGP task graph, transitively closed by the
    /// caller): `g(a,b)` proves `a MHB b` and refutes `CCW(a,b)` — the
    /// same sound rules `eo_engine::degraded` uses.
    pub(crate) fn seed_guarantee(&mut self, g: &Relation) {
        self.mhb_yes.union_with(g);
        self.mhb_yes.close_transitively();
        for (a, b) in g.pairs() {
            let (x, y) = (a.min(b), a.max(b));
            self.ccw_no.insert(x, y);
        }
    }

    /// Seeds every pairwise fact from a full exact summary: after one
    /// `summary` query, every later point query is a cache hit.
    pub(crate) fn seed_summary(&mut self, summary: &eo_engine::OrderingSummary) {
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                self.record_mhb(a, b, summary.mhb(ea, eb));
                if a < b {
                    self.record(FactKind::Ccw, ea, eb, summary.ccw(ea, eb));
                }
            }
        }
    }
}

/// A small LRU for witness schedules, keyed on (program fingerprint,
/// query). Witnesses are the bulky answers — full schedules — so unlike
/// the bit-matrix fact store they are capacity-bounded: when full, the
/// least-recently-used entry is evicted (an O(capacity) scan; capacities
/// are small enough that a heap would cost more than it saves).
pub(crate) struct WitnessCache {
    capacity: usize,
    clock: u64,
    map: FxHashMap<(u64, Query), Entry>,
}

/// A cached witness answer (`None` = proved absent) plus its LRU stamp.
struct Entry {
    stamp: u64,
    witness: Option<Vec<EventId>>,
}

impl WitnessCache {
    pub(crate) fn new(capacity: usize) -> Self {
        WitnessCache {
            capacity,
            clock: 0,
            map: FxHashMap::default(),
        }
    }

    /// The cached witness for `query`, refreshing its recency. The outer
    /// `Option` is hit/miss; the inner one is the cached answer (`None`
    /// meaning "proved: no witness exists").
    pub(crate) fn get(&mut self, fingerprint: u64, query: Query) -> Option<Option<Vec<EventId>>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.map.get_mut(&(fingerprint, query))?;
        entry.stamp = clock;
        Some(entry.witness.clone())
    }

    pub(crate) fn put(&mut self, fingerprint: u64, query: Query, witness: Option<Vec<EventId>>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.map.insert(
            (fingerprint, query),
            Entry {
                stamp: self.clock,
                witness,
            },
        );
        if self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EventId {
        EventId::new(i)
    }

    #[test]
    fn chb_is_served_through_the_mhb_complement() {
        let mut f = FactStore::new(4);
        f.record(FactKind::Mhb, e(1), e(2), true);
        assert_eq!(f.lookup(FactKind::Chb, e(2), e(1)), Some(false));
        assert_eq!(f.lookup(FactKind::Chb, e(1), e(2)), None, "not implied");
        f.record(FactKind::Chb, e(0), e(3), true);
        assert_eq!(f.lookup(FactKind::Mhb, e(3), e(0)), Some(false));
    }

    #[test]
    fn mhb_truths_close_transitively_but_falsehoods_do_not() {
        let mut f = FactStore::new(4);
        f.record(FactKind::Mhb, e(0), e(1), true);
        f.record(FactKind::Mhb, e(1), e(2), true);
        assert_eq!(f.lookup(FactKind::Mhb, e(0), e(2)), Some(true));
        f.record(FactKind::Mhb, e(2), e(3), false);
        assert_eq!(f.lookup(FactKind::Mhb, e(1), e(3)), None);
    }

    #[test]
    fn ccw_is_symmetric_and_mhb_does_not_refute_it() {
        let mut f = FactStore::new(4);
        f.record(FactKind::Ccw, e(2), e(1), true);
        assert_eq!(f.lookup(FactKind::Ccw, e(1), e(2)), Some(true));
        f.record(FactKind::Mhb, e(0), e(3), true);
        assert_eq!(
            f.lookup(FactKind::Ccw, e(0), e(3)),
            None,
            "an execution-order fact must not decide operational overlap"
        );
    }

    #[test]
    fn witness_lru_evicts_the_least_recently_used() {
        let mut c = WitnessCache::new(2);
        let q = |i: usize| Query::WitnessBefore {
            first: e(i),
            second: e(i + 1),
        };
        c.put(7, q(0), Some(vec![e(0)]));
        c.put(7, q(1), None);
        assert_eq!(c.get(7, q(0)), Some(Some(vec![e(0)]))); // refresh q(0)
        c.put(7, q(2), None); // evicts q(1)
        assert_eq!(c.len(), 2);
        assert!(c.get(7, q(1)).is_none());
        assert_eq!(c.get(7, q(0)), Some(Some(vec![e(0)])));
        assert!(c.get(8, q(0)).is_none(), "fingerprint keys the cache");
    }
}
