//! Deterministic fault-injection coverage for the supervisor.
//!
//! Every [`EngineError`] variant the budget can raise is reached here via
//! a [`FaultPlan`] tripping at a chosen checkpoint, and every degraded
//! answer produced under an injected fault is checked against the
//! unbudgeted oracle. `Fault::WorkerPanic` exercises the worker pool's
//! `catch_unwind` recovery: the exploration must come back with
//! `EngineError::WorkerFailed` — returning at all proves every pool
//! thread was joined.

#![cfg(feature = "fault-injection")]

use eo_engine::sat_backend::{chb_via_sat, chb_via_sat_budgeted, SatSession};
use eo_engine::{
    explore_statespace_parallel_budgeted, AnalysisOutcome, Budget, EngineError, ExactEngine, Fault,
    FaultPlan, FeasibilityMode, QuerySession, SearchCtx,
};
use eo_model::fixtures;

fn faulty(at: u64, fault: Fault) -> Budget {
    Budget::unlimited().with_fault(FaultPlan::trip_at(at, fault))
}

#[test]
fn every_coordinator_fault_surfaces_as_its_error_variant() {
    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let cases = [
        (Fault::Deadline, EngineError::DeadlineExceeded { ms: 0 }),
        (Fault::Memory, EngineError::MemoryExceeded { limit: 0 }),
        (Fault::Cancel, EngineError::Cancelled),
    ];
    for (fault, expected) in cases {
        let engine = ExactEngine::new(&exec).with_budget(faulty(1, fault));
        assert_eq!(
            engine.try_summary().err(),
            Some(expected.clone()),
            "{fault:?}"
        );
        assert_eq!(engine.feasible_set().err(), Some(expected), "{fault:?}");
    }
}

#[test]
fn analyze_degrades_consistently_at_every_fault_point() {
    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let full = ExactEngine::new(&exec).summary();
    for at in [1, 3, 10] {
        for fault in [Fault::Deadline, Fault::Memory, Fault::Cancel] {
            let engine = ExactEngine::new(&exec).with_budget(faulty(at, fault));
            match engine.analyze() {
                AnalysisOutcome::Exact(_) => {
                    panic!("fault {fault:?}@{at} never tripped")
                }
                AnalysisOutcome::Degraded(d) => {
                    let expected_kind = match fault {
                        Fault::Deadline => {
                            matches!(d.reason(), EngineError::DeadlineExceeded { .. })
                        }
                        Fault::Memory => matches!(d.reason(), EngineError::MemoryExceeded { .. }),
                        Fault::Cancel => *d.reason() == EngineError::Cancelled,
                        Fault::WorkerPanic => unreachable!(),
                    };
                    assert!(expected_kind, "{fault:?}@{at} gave {:?}", d.reason());
                    if let Err(msg) = d.check_consistency_against(&full) {
                        panic!("{fault:?}@{at}: degraded answer contradicts oracle: {msg}");
                    }
                }
            }
        }
    }
}

#[test]
fn later_fault_points_decide_no_fewer_pairs() {
    let (trace, _, _) = fixtures::crossing();
    let exec = trace.to_execution().unwrap();
    let mut prev = 0usize;
    for at in [1, 4, 16] {
        let engine = ExactEngine::new(&exec).with_budget(faulty(at, Fault::Deadline));
        let AnalysisOutcome::Degraded(d) = engine.analyze() else {
            // The whole analysis fit under `at` checkpoints; nothing more
            // to compare.
            return;
        };
        assert!(
            d.decided_pairs() >= prev,
            "more budget decided fewer pairs ({} < {prev}) at fault point {at}",
            d.decided_pairs()
        );
        prev = d.decided_pairs();
    }
}

#[test]
fn worker_panic_is_recovered_and_all_threads_join() {
    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
    for threads in [1, 2, 4] {
        let budget = faulty(1, Fault::WorkerPanic);
        let got = explore_statespace_parallel_budgeted(&ctx, &budget, threads);
        assert_eq!(
            got.err(),
            Some(EngineError::WorkerFailed),
            "{threads} threads"
        );
    }
}

#[test]
fn worker_panic_mid_run_degrades_the_analysis() {
    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let full = ExactEngine::new(&exec).summary();
    // Checkpoint 5 lets a few expansion tasks finish before one panics.
    for at in [1, 5] {
        let engine = ExactEngine::new(&exec).with_budget(faulty(at, Fault::WorkerPanic));
        match engine.analyze_with_threads(4) {
            AnalysisOutcome::Exact(_) => panic!("worker panic @{at} never tripped"),
            AnalysisOutcome::Degraded(d) => {
                assert_eq!(*d.reason(), EngineError::WorkerFailed, "@{at}");
                if let Err(msg) = d.check_consistency_against(&full) {
                    panic!("worker panic @{at}: contradicts oracle: {msg}");
                }
            }
        }
    }
}

#[test]
fn witness_queries_report_injected_exhaustion() {
    let (trace, ids) = fixtures::sem_handshake();
    let exec = trace.to_execution().unwrap();
    let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
    let (a, b) = (ids.v, ids.p);

    let mut session = QuerySession::with_budget(&ctx, faulty(1, Fault::Deadline));
    assert!(matches!(
        session.try_witness_before(a, b),
        Err(EngineError::DeadlineExceeded { .. })
    ));

    let mut session = QuerySession::with_budget(&ctx, faulty(1, Fault::Memory));
    assert!(matches!(
        session.try_witness_overlap(a, b),
        Err(EngineError::MemoryExceeded { .. })
    ));

    let mut session = QuerySession::with_budget(&ctx, faulty(1, Fault::Cancel));
    assert_eq!(
        session.try_must_happen_before(a, b),
        Err(EngineError::Cancelled)
    );

    // An untripped plan leaves answers identical to the unbudgeted path.
    let mut faulted = QuerySession::with_budget(&ctx, faulty(1_000_000, Fault::Deadline));
    let mut plain = QuerySession::new(&ctx);
    assert_eq!(
        faulted.try_could_happen_before(a, b).unwrap(),
        plain.could_happen_before(a, b)
    );
}

#[test]
fn sat_backend_honours_injected_faults() {
    let (trace, a, b) = fixtures::crossing();
    let exec = trace.to_execution().unwrap();
    let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);

    // Fault before the encoding is even built.
    assert!(matches!(
        chb_via_sat_budgeted(&ctx, a, b, &faulty(1, Fault::Deadline)),
        Err(EngineError::DeadlineExceeded { .. })
    ));
    // Fault deep inside the DPLL search (checkpoints 1–2 are the
    // pre/post-encoding checks, so 3+ lands on solver nodes).
    assert!(matches!(
        chb_via_sat_budgeted(&ctx, a, b, &faulty(3, Fault::Cancel)),
        Err(EngineError::Cancelled)
    ));
    // An untripped plan must not change the verdict.
    let untripped = faulty(1_000_000_000, Fault::Memory);
    assert_eq!(
        chb_via_sat_budgeted(&ctx, a, b, &untripped)
            .unwrap()
            .is_some(),
        chb_via_sat(&ctx, a, b).is_some()
    );
}

#[test]
fn sat_session_cancellation_lands_mid_propagation() {
    let (trace, ids) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
    let (a, b) = (ids.post_left, ids.post_right);

    // Checkpoints 1–2 are the session's entry check and the solver's
    // up-front stop poll; 3 lands on a poll *inside* the first unit
    // propagation cascade (the encoding's base facts imply a cascade far
    // longer than one poll interval), before any decision is made.
    let mut session = SatSession::with_budget(&ctx, faulty(3, Fault::Cancel));
    assert_eq!(
        session.try_could_happen_before(a, b),
        Err(EngineError::Cancelled)
    );
    let solver = session.encoding().solver();
    assert_eq!(
        solver.decisions, 0,
        "the fault must trip before the first decision"
    );
    assert!(
        solver.propagations > 0,
        "the fault must trip inside propagation, not at entry"
    );

    // Renewing the budget revives the session in place, learned state
    // intact, and the answer matches the one-shot oracle.
    session.set_budget(Budget::unlimited());
    assert_eq!(
        session.try_could_happen_before(a, b).unwrap(),
        chb_via_sat(&ctx, a, b).is_some()
    );

    // Deadline and memory faults surface as their own variants through
    // the same mid-propagation poll.
    let mut session = SatSession::with_budget(&ctx, faulty(3, Fault::Deadline));
    assert!(matches!(
        session.try_witness_before(a, b),
        Err(EngineError::DeadlineExceeded { .. })
    ));
    let mut session = SatSession::with_budget(&ctx, faulty(3, Fault::Memory));
    assert!(matches!(
        session.try_witness_overlap(a, b),
        Err(EngineError::MemoryExceeded { .. })
    ));
}
