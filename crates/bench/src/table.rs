//! Minimal fixed-width table rendering for the report binary.

/// Renders rows as a fixed-width text table with a header and a rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["n", "value"],
            &[
                vec!["1".into(), "short".into()],
                vec!["20".into(), "longer-cell".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[3].ends_with("longer-cell"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["1".into()]]);
    }
}
