//! A minimal JSON tree, parser, and pretty-printer.
//!
//! The on-disk trace format (see `testdata/figure1.trace.json`) was
//! originally produced by serde derives; the build environment is offline,
//! so this module implements the same wire format by hand:
//!
//! * struct → object with fields in declaration order;
//! * unit enum variant → its name as a string (`"Compute"`);
//! * newtype/tuple enum variant → single-key object (`{"Post": 0}`);
//! * `Option` → `null` or the value;
//! * dense ids → bare numbers;
//! * pretty output with two-space indentation.
//!
//! Other crates (the lint subsystem's `--json` rendering, for instance)
//! reuse [`Value`] rather than growing their own printers.

use std::fmt::Write as _;

/// A parsed JSON document. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. The trace format only uses non-negative integers, but
    /// parsing accepts any integer that fits `i64`.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in member order.
    Object(Vec<(String, Value)>),
}

/// A malformed document, or a well-formed document with the wrong shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// The members if this is an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], JsonError> {
        match self {
            Value::Object(members) => Ok(members),
            other => Err(JsonError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(elems) => Ok(elems),
            other => Err(JsonError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// The number if this is an integer.
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(JsonError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The number as a `u32` (the trace format's id/counter width).
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        u32::try_from(self.as_i64()?).map_err(|_| JsonError::new("number out of u32 range"))
    }

    /// The flag if this is a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a required object member.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::new(format!("missing member {key:?}")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes with two-space indentation (serde_json's pretty format).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serializes without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(elems) if !elems.is_empty() => {
                out.push_str("[\n");
                for (i, v) in elems.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < elems.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(elems) => {
                out.push('[');
                for (i, v) in elems.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not part of the trace format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't occur in our traces;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"xs": [1, 2], "o": {"k": null}}"#).unwrap();
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("o").unwrap().get("k").unwrap(), &Value::Null);
    }

    #[test]
    fn pretty_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x\"y".into())),
            (
                "ids".into(),
                Value::Array(vec![Value::Int(0), Value::Int(1)]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("flag".into(), Value::Null),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\"ids\": [\n    0,\n    1\n  ]"), "{text}");
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn compact_round_trips() {
        let v = parse(r#"{"a":[true,false],"b":"s"}"#).unwrap();
        assert_eq!(parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("[1,]").is_err());
    }
}
