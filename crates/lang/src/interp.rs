//! The sequentially consistent interleaving interpreter.
//!
//! [`run_to_trace`] executes a [`Program`] one statement at a time: at each
//! step it collects the processes whose next statement can execute, asks
//! the [`Scheduler`] to pick one, executes that statement atomically, and
//! records the corresponding event. The result is an observed
//! [`Trace`] — exactly the object the paper's analyses take as input.
//!
//! Sequential consistency is by construction: there is a single global
//! interleaving, and every read sees the latest write in it. Statement
//! granularity matches the paper's event granularity (each event is "an
//! execution instance of a set of consecutively executed statements"; we
//! use the finest version, one statement per event, which loses no
//! generality).
//!
//! The trace only contains what actually happened: processes that were
//! never forked (e.g. a fork in an untaken branch) do not appear, and
//! untaken branches contribute no events. That is the point of the paper's
//! Figure 1 — re-executions that *change* a branch decision perform
//! different events, which is why feasibility is defined by preserving the
//! shared-data dependences.

use crate::ast::{ProcRef, Program, Stmt, StmtKind};
use crate::scheduler::Scheduler;
use crate::stmt::{StmtId, StmtMap};
use eo_model::trace::{EvVarDecl, ProcessDecl, SemDecl, VarDecl};
use eo_model::{Event, EventId, Op, ProcessId, Trace};

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The program failed static validation.
    Invalid(crate::ast::ProgramError),
    /// Execution reached a state where live processes remain but none can
    /// execute (possible with `Wait` after `Clear`, `P` with no matching
    /// `V`, or `join` on a never-forked process).
    Deadlock {
        /// Events executed before the deadlock.
        executed: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Invalid(e) => write!(f, "invalid program: {e}"),
            RunError::Deadlock { executed } => {
                write!(f, "deadlock after {executed} events")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Number of interpreter micro-steps (= emitted events) one execution of
/// a statement of this kind takes under the **direct** interpretation.
///
/// Core kinds execute atomically (one step). The surface primitives
/// deliberately mirror their desugaring's step structure so the
/// desugar-vs-direct differential compares like with like: a blocking
/// point in the core form is a blocking point here too.
pub fn micro_steps(kind: &StmtKind) -> usize {
    match kind {
        StmtKind::BarrierWait(_) => 2, // arrive, depart
        StmtKind::CondWait(..) => 3,   // release mutex, take wake token, relock
        StmtKind::Send(_) => 2,        // reserve slot, publish item
        StmtKind::Recv(_) => 2,        // take item, release slot
        _ => 1,
    }
}

/// Index of the micro-step at which a statement of this kind *commits* —
/// the step whose event represents the statement in schedule
/// projections ([`crate::desugar::DesugarMap`] marks the same step in
/// the core form). For single-step kinds this is step 0.
pub fn commit_step(kind: &StmtKind) -> usize {
    match kind {
        StmtKind::BarrierWait(_) => 1, // departing is what orders the generations
        StmtKind::CondWait(..) => 2,   // the wait is over once the mutex is re-held
        StmtKind::Send(_) => 1,        // publishing makes the item visible
        _ => 0,                        // Recv commits on the take (step 0)
    }
}

/// A frame of a process's continuation: a block, the parallel slice of
/// the block's statement ids, and the index of the next statement.
struct Frame<'p, 'm> {
    block: &'p [Stmt],
    ids: &'m [StmtId],
    next: usize,
}

/// A live runtime process.
struct ProcState<'p, 'm> {
    def: ProcRef,
    frames: Vec<Frame<'p, 'm>>,
    /// Index of the next micro-step within the current statement (0 for
    /// statements not yet started; only surface primitives have > 1).
    micro: usize,
    /// For an in-flight `BarrierWait` past its arrive step: the barrier
    /// generation this process joined.
    pending_gen: Option<u64>,
}

impl<'p, 'm> ProcState<'p, 'm> {
    fn current(&mut self) -> Option<&'p Stmt> {
        loop {
            let frame = self.frames.last_mut()?;
            if frame.next < frame.block.len() {
                return Some(&frame.block[frame.next]);
            }
            self.frames.pop();
        }
    }
}

/// An observed execution together with per-event static anchors.
///
/// `stmt_of[e]` is the [`StmtId`] of the AST statement whose execution
/// produced event `e` — the bridge from dynamic events back to static
/// analyses ([`crate::stmt::StmtMap`], the CS guaranteed-ordering
/// analysis, and the lints built on them). The trace itself is
/// byte-identical to what [`run_to_trace`] produces; anchors are a side
/// table, not part of the wire format.
pub struct AnchoredRun {
    /// The observed trace.
    pub trace: Trace,
    /// Per event (by index): the static statement it instantiates.
    pub stmt_of: Vec<StmtId>,
    /// Per event (by index): whether this event is its statement's
    /// *commit* step (see [`commit_step`]). Always `true` for core
    /// statements; surface primitives commit on exactly one of their
    /// micro-steps.
    pub commit_of: Vec<bool>,
}

/// An anchored run that may have ended in deadlock: the events up to the
/// stuck point are still reported (the schedule enumerator in
/// [`crate::explore`] compares deadlock *prefixes* between the direct
/// and desugared forms, not just deadlock booleans).
pub struct PartialRun {
    /// The (possibly partial) observed run.
    pub run: AnchoredRun,
    /// `false` iff live processes remained but none could execute.
    pub completed: bool,
}

/// Runs `program` under `scheduler` and returns the observed trace.
///
/// The returned trace always validates (it is valid by construction — a
/// debug assertion confirms this).
pub fn run_to_trace(program: &Program, scheduler: &mut Scheduler) -> Result<Trace, RunError> {
    run_to_trace_anchored(program, scheduler).map(|r| r.trace)
}

/// Like [`run_to_trace`], but also reports, for every emitted event, the
/// static statement ([`StmtId`] under [`StmtMap::build`]'s numbering)
/// that produced it.
pub fn run_to_trace_anchored(
    program: &Program,
    scheduler: &mut Scheduler,
) -> Result<AnchoredRun, RunError> {
    let partial = run_to_trace_partial(program, scheduler)?;
    if partial.completed {
        debug_assert!(
            partial.run.trace.validate().is_ok(),
            "interpreter emitted an invalid trace"
        );
        Ok(partial.run)
    } else {
        Err(RunError::Deadlock {
            executed: partial.run.trace.n_events(),
        })
    }
}

/// Like [`run_to_trace_anchored`], but deadlock is not an error: the
/// partial run up to the stuck point is returned with `completed:
/// false`. Only static invalidity is an `Err`.
pub fn run_to_trace_partial(
    program: &Program,
    scheduler: &mut Scheduler,
) -> Result<PartialRun, RunError> {
    program.validate().map_err(RunError::Invalid)?;
    let map = StmtMap::build(program);

    let n_defs = program.processes.len();
    // def -> runtime trace ProcessId, once instantiated.
    let mut instance: Vec<Option<ProcessId>> = vec![None; n_defs];
    let mut procs: Vec<ProcState<'_, '_>> = Vec::new();
    let mut decls: Vec<ProcessDecl> = Vec::new();

    for (di, def) in program.processes.iter().enumerate() {
        if def.root {
            instance[di] = Some(ProcessId::new(procs.len()));
            procs.push(ProcState {
                def: ProcRef(di as u32),
                frames: vec![Frame {
                    block: &def.body,
                    ids: map.body(ProcRef(di as u32)),
                    next: 0,
                }],
                micro: 0,
                pending_gen: None,
            });
            decls.push(ProcessDecl {
                name: def.name.clone(),
                created_by: None,
            });
        }
    }

    let mut store: Vec<i64> = vec![0; program.variables.len()];
    let mut sem: Vec<u32> = program.semaphores.iter().map(|s| s.initial).collect();
    let mut flag: Vec<bool> = program.event_vars.iter().map(|v| v.initially_set).collect();
    // Direct runtime state for the surface primitives (the desugared core
    // form encodes the same state in semaphore counters; DESIGN.md §15
    // maps each field to its desugaring).
    let mut bar_arrivals: Vec<u64> = vec![0; program.barriers.len()];
    let mut mtx: Vec<u32> = vec![1; program.mutexes.len()];
    let mut cond: Vec<u32> = vec![0; program.condvars.len()];
    let mut chan_free: Vec<u32> = program.channels.iter().map(|c| c.capacity).collect();
    let mut chan_items: Vec<u32> = vec![0; program.channels.len()];
    let mut events: Vec<Event> = Vec::with_capacity(program.max_events());
    let mut stmt_of: Vec<StmtId> = Vec::with_capacity(program.max_events());
    let mut commit_of: Vec<bool> = Vec::with_capacity(program.max_events());
    let mut completed = true;

    loop {
        // Collect enabled processes (sorted by runtime id by construction).
        let mut enabled: Vec<(ProcessId, ProcRef)> = Vec::new();
        let mut anyone_live = false;
        for pi in 0..procs.len() {
            let (def, micro, pending_gen, stmt) = {
                let p = &mut procs[pi];
                match p.current() {
                    Some(s) => (p.def, p.micro, p.pending_gen, s),
                    None => continue,
                }
            };
            anyone_live = true;
            let ok = match (&stmt.kind, micro) {
                (StmtKind::SemP(s), _) => sem[s.index()] > 0,
                (StmtKind::Wait(v), _) => flag[v.index()],
                (StmtKind::Join(targets), _) => targets.iter().all(|t| match instance[t.index()] {
                    Some(pid) => procs[pid.index()]
                        .frames
                        .iter()
                        .all(|f| f.next >= f.block.len()),
                    None => false,
                }),
                // Surface primitives: step 0 of a barrier wait (arrive) is
                // always enabled; the depart step waits for the joined
                // generation to fill.
                (StmtKind::BarrierWait(b), 1) => {
                    let parties = u64::from(program.barriers[b.index()].parties);
                    let gen = pending_gen.expect("arrived implies generation recorded");
                    bar_arrivals[b.index()] >= (gen + 1) * parties
                }
                (StmtKind::Lock(m), _) => mtx[m.index()] > 0,
                (StmtKind::CondWait(c, _), 1) => cond[c.index()] > 0,
                (StmtKind::CondWait(_, m), 2) => mtx[m.index()] > 0,
                (StmtKind::Send(ch), 0) => chan_free[ch.index()] > 0,
                (StmtKind::Recv(ch), 0) => chan_items[ch.index()] > 0,
                _ => true,
            };
            if ok {
                enabled.push((ProcessId::new(pi), def));
            }
        }

        if !anyone_live {
            break;
        }
        if enabled.is_empty() {
            completed = false;
            break;
        }

        let (pid, _) = enabled[scheduler.pick(&enabled)];
        let stmt = procs[pid.index()].current().expect("enabled implies live");
        let micro = procs[pid.index()].micro;
        let last_micro = micro + 1 == micro_steps(&stmt.kind);
        // Advance the instruction pointer before executing (forked children
        // must not confuse the current frame bookkeeping). Multi-step
        // surface statements advance their micro counter instead until
        // the final step.
        let sid = {
            let frame = procs[pid.index()].frames.last_mut().expect("live");
            let sid = frame.ids[frame.next];
            if last_micro {
                frame.next += 1;
                procs[pid.index()].micro = 0;
            } else {
                procs[pid.index()].micro += 1;
            }
            sid
        };

        let eid = EventId::new(events.len());
        let mut reads: Vec<eo_model::VarId> = Vec::new();
        let mut writes: Vec<eo_model::VarId> = Vec::new();
        let op = match &stmt.kind {
            StmtKind::Skip => Op::Compute,
            StmtKind::Compute {
                reads: r,
                writes: w,
            } => {
                reads = r.clone();
                writes = w.clone();
                Op::Compute
            }
            StmtKind::Assign { var, value } => {
                store[var.index()] = *value;
                writes.push(*var);
                Op::Compute
            }
            StmtKind::SemP(s) => {
                sem[s.index()] -= 1;
                Op::SemP(*s)
            }
            StmtKind::SemV(s) => {
                sem[s.index()] += 1;
                Op::SemV(*s)
            }
            StmtKind::Post(v) => {
                flag[v.index()] = true;
                Op::Post(*v)
            }
            StmtKind::Wait(v) => Op::Wait(*v),
            StmtKind::Clear(v) => {
                flag[v.index()] = false;
                Op::Clear(*v)
            }
            StmtKind::Fork(targets) => {
                let mut children = Vec::with_capacity(targets.len());
                for &t in targets {
                    let child = ProcessId::new(procs.len());
                    instance[t.index()] = Some(child);
                    procs.push(ProcState {
                        def: t,
                        frames: vec![Frame {
                            block: &program.processes[t.index()].body,
                            ids: map.body(t),
                            next: 0,
                        }],
                        micro: 0,
                        pending_gen: None,
                    });
                    decls.push(ProcessDecl {
                        name: program.processes[t.index()].name.clone(),
                        created_by: Some(eid),
                    });
                    children.push(child);
                }
                Op::Fork(children)
            }
            StmtKind::Join(targets) => Op::Join(
                targets
                    .iter()
                    .map(|t| instance[t.index()].expect("join enabled implies forked"))
                    .collect(),
            ),
            StmtKind::If {
                var,
                equals,
                then_branch,
                else_branch,
            } => {
                reads.push(*var);
                let (branch, branch_ids): (&[Stmt], &[StmtId]) = if store[var.index()] == *equals {
                    (then_branch, map.then_branch(sid))
                } else {
                    (else_branch, map.else_branch(sid))
                };
                if !branch.is_empty() {
                    procs[pid.index()].frames.push(Frame {
                        block: branch,
                        ids: branch_ids,
                        next: 0,
                    });
                }
                Op::Compute
            }
            // Surface primitives under the direct reference semantics.
            // Each micro-step mutates the dedicated runtime state and
            // emits a plain Compute event: the surface vocabulary never
            // reaches the trace format (analyses consume the desugared
            // core form; these traces exist for the desugar-vs-direct
            // differential and for direct experimentation).
            StmtKind::BarrierWait(b) => {
                let parties = u64::from(program.barriers[b.index()].parties);
                if micro == 0 {
                    procs[pid.index()].pending_gen = Some(bar_arrivals[b.index()] / parties);
                    bar_arrivals[b.index()] += 1;
                } else {
                    procs[pid.index()].pending_gen = None;
                }
                Op::Compute
            }
            StmtKind::Lock(m) => {
                mtx[m.index()] -= 1;
                Op::Compute
            }
            StmtKind::Unlock(m) => {
                mtx[m.index()] += 1;
                Op::Compute
            }
            StmtKind::CondWait(c, m) => {
                match micro {
                    0 => mtx[m.index()] += 1,  // release the monitor
                    1 => cond[c.index()] -= 1, // consume a wake token
                    _ => mtx[m.index()] -= 1,  // re-acquire the monitor
                }
                Op::Compute
            }
            StmtKind::CondSignal(c) => {
                cond[c.index()] += 1;
                Op::Compute
            }
            StmtKind::Send(ch) => {
                if micro == 0 {
                    chan_free[ch.index()] -= 1;
                } else {
                    chan_items[ch.index()] += 1;
                }
                Op::Compute
            }
            StmtKind::Recv(ch) => {
                if micro == 0 {
                    chan_items[ch.index()] -= 1;
                } else {
                    chan_free[ch.index()] += 1;
                }
                Op::Compute
            }
        };

        let committing = micro == commit_step(&stmt.kind);
        events.push(Event {
            id: eid,
            process: pid,
            op,
            reads,
            writes,
            label: if committing { stmt.label.clone() } else { None },
        });
        stmt_of.push(sid);
        commit_of.push(committing);
    }

    let trace = Trace {
        events,
        processes: decls,
        semaphores: program
            .semaphores
            .iter()
            .map(|s| SemDecl {
                name: s.name.clone(),
                initial: s.initial,
            })
            .collect(),
        event_vars: program
            .event_vars
            .iter()
            .map(|v| EvVarDecl {
                name: v.name.clone(),
                initially_set: v.initially_set,
            })
            .collect(),
        variables: program
            .variables
            .iter()
            .map(|name| VarDecl { name: name.clone() })
            .collect(),
    };
    Ok(PartialRun {
        run: AnchoredRun {
            trace,
            stmt_of,
            commit_of,
        },
        completed,
    })
}

/// Runs `program` under up to `attempts` random seeds (starting at
/// `first_seed`) until a run completes, returning the trace and the seed
/// that produced it. Programs whose schedules can deadlock (the Theorem 3
/// gadgets) use this to find a completing observed execution.
pub fn run_with_random_retries(
    program: &Program,
    first_seed: u64,
    attempts: u32,
) -> Result<(Trace, u64), RunError> {
    let mut last = RunError::Deadlock { executed: 0 };
    for k in 0..attempts {
        let seed = first_seed + k as u64;
        match run_to_trace(program, &mut Scheduler::random(seed)) {
            Ok(t) => return Ok((t, seed)),
            Err(e @ RunError::Invalid(_)) => return Err(e),
            Err(e) => last = e,
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn straight_line_program_runs() {
        let mut b = ProgramBuilder::new();
        let p = b.process("p");
        b.compute(p, "one");
        b.compute(p, "two");
        let prog = b.build();
        let t = run_to_trace(&prog, &mut Scheduler::deterministic()).unwrap();
        assert_eq!(t.n_events(), 2);
        assert_eq!(t.event_labeled("one"), Some(EventId(0)));
    }

    #[test]
    fn semaphore_blocks_until_v() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let waiter = b.process("waiter"); // lower pid, but blocked at first
        b.sem_p(waiter, s);
        b.compute(waiter, "after_p");
        let signaler = b.process("signaler");
        b.compute(signaler, "pre_v");
        b.sem_v(signaler, s);
        let prog = b.build();
        let t = run_to_trace(&prog, &mut Scheduler::deterministic()).unwrap();
        // Deterministic scheduling: waiter is pid 0 but blocked, so the
        // signaler's events come first.
        let labels: Vec<Option<&str>> = t.events.iter().map(|e| e.label.as_deref()).collect();
        assert_eq!(labels, vec![Some("pre_v"), None, None, Some("after_p")]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn deadlock_is_reported() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p = b.process("p");
        b.sem_p(p, s); // no V anywhere
        let prog = b.build();
        assert_eq!(
            run_to_trace(&prog, &mut Scheduler::deterministic()),
            Err(RunError::Deadlock { executed: 0 })
        );
    }

    #[test]
    fn branch_reads_latest_write() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let ev = b.event_var("done");
        let writer = b.process("writer");
        b.assign(writer, x, 1);
        b.post(writer, ev);
        let reader = b.process("reader");
        b.wait(reader, ev);
        b.if_eq(
            reader,
            x,
            1,
            |then| {
                then.compute_here("then_taken");
            },
            |els| {
                els.compute_here("else_taken");
            },
        );
        let prog = b.build();
        let t = run_to_trace(&prog, &mut Scheduler::deterministic()).unwrap();
        assert!(t.event_labeled("then_taken").is_some());
        assert!(t.event_labeled("else_taken").is_none());
    }

    #[test]
    fn untaken_branch_with_fork_leaves_child_out_of_trace() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let main = b.process("main");
        let ghost = b.subprocess("ghost");
        b.compute(ghost, "ghost_work");
        // x is 0, so the equals-1 branch (which forks) is not taken.
        b.if_eq(
            main,
            x,
            1,
            |then| {
                then.fork_here(&[ghost]);
            },
            |_els| {},
        );
        let prog = b.build();
        let t = run_to_trace(&prog, &mut Scheduler::deterministic()).unwrap();
        assert_eq!(t.processes.len(), 1, "ghost never existed");
        assert_eq!(t.n_events(), 1, "just the if test");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fork_join_round_trip() {
        let mut b = ProgramBuilder::new();
        let main = b.process("main");
        let w1 = b.subprocess("w1");
        let w2 = b.subprocess("w2");
        b.compute(w1, "work1");
        b.compute(w2, "work2");
        b.fork(main, &[w1, w2]);
        b.join(main, &[w1, w2]);
        b.compute(main, "after_join");
        let prog = b.build();
        let t = run_to_trace(&prog, &mut Scheduler::round_robin()).unwrap();
        assert_eq!(t.n_events(), 5);
        let after = t.event_labeled("after_join").unwrap();
        assert_eq!(after.index(), 4, "join target completes before the tail");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn join_on_never_forked_process_deadlocks() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let main = b.process("main");
        let child = b.subprocess("child");
        b.compute(child, "unreachable");
        b.if_eq(
            main,
            x,
            1, // false: x starts 0
            |then| {
                then.fork_here(&[child]);
            },
            |_els| {},
        );
        b.join(main, &[child]);
        let prog = b.build();
        assert!(matches!(
            run_to_trace(&prog, &mut Scheduler::deterministic()),
            Err(RunError::Deadlock { .. })
        ));
    }

    #[test]
    fn random_seeds_produce_different_interleavings() {
        let mut b = ProgramBuilder::new();
        let p0 = b.process("p0");
        let p1 = b.process("p1");
        for i in 0..4 {
            b.compute(p0, &format!("a{i}"));
            b.compute(p1, &format!("b{i}"));
        }
        let prog = b.build();
        let t1 = run_to_trace(&prog, &mut Scheduler::random(1)).unwrap();
        let t2 = run_to_trace(&prog, &mut Scheduler::random(2)).unwrap();
        // Same events...
        assert_eq!(t1.n_events(), t2.n_events());
        // ...but (with these seeds) a different observed order.
        let order = |t: &Trace| {
            t.events
                .iter()
                .map(|e| e.label.clone().unwrap())
                .collect::<Vec<_>>()
        };
        assert_ne!(order(&t1), order(&t2));
    }

    #[test]
    fn anchors_map_events_back_to_their_statements() {
        use crate::stmt::StmtMap;
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let main = b.process("main");
        let w = b.subprocess("w");
        b.compute(w, "work");
        b.assign(main, x, 1);
        b.fork(main, &[w]);
        b.if_eq(
            main,
            x,
            1,
            |then| {
                then.compute_here("taken");
            },
            |els| {
                els.compute_here("not_taken");
            },
        );
        let prog = b.build();
        let map = StmtMap::build(&prog);
        let run = run_to_trace_anchored(&prog, &mut Scheduler::round_robin()).unwrap();
        assert_eq!(run.stmt_of.len(), run.trace.n_events());
        for (ev, &sid) in run.trace.events.iter().zip(&run.stmt_of) {
            // The anchored statement's label is exactly the event's label…
            assert_eq!(map.node(sid).label, ev.label, "event {:?}", ev.id);
        }
        // …and the taken branch anchors inside the If's then-block.
        let taken_ev = run
            .trace
            .events
            .iter()
            .position(|e| e.label.as_deref() == Some("taken"))
            .unwrap();
        let sid = run.stmt_of[taken_ev];
        assert_eq!(map.labeled("taken"), Some(sid));
        assert!(
            map.parent(sid).is_some(),
            "branch statement has an If parent"
        );
    }

    #[test]
    fn retries_find_a_completing_schedule() {
        // Deterministic order deadlocks (clearer runs before poster kills
        // the waiter) only for some schedules; retries should find a
        // completing one.
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let clearer = b.process("clearer");
        b.clear(clearer, ev);
        let poster = b.process("poster");
        b.post(poster, ev);
        let waiter = b.process("waiter");
        b.wait(waiter, ev);
        let prog = b.build();
        let (t, _seed) = run_with_random_retries(&prog, 0, 64).unwrap();
        assert_eq!(t.n_events(), 3);
    }
}
