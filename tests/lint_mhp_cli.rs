//! Pins the `eo lint` exit-code contract (mirroring `cli_exit_codes.rs`
//! for `analyze`/`serve`), its multi-file aggregation, the lint metrics
//! flushing rule, and the committed golden snapshots for
//! `eo lint --json` and `eo mhp --json` on the Figure 1 trace:
//!
//! * `0` — no finding at or above the `--deny` level, every file read
//! * `1` — a denied finding in *any* file, or a usage / input error
//!
//! As with `analyze`, `--metrics-out` flushes the full metrics registry
//! on every exit path; the value assertions that need real recording
//! only run when the binary was built with the `obs` feature.

use std::path::PathBuf;
use std::process::Command;

const FIGURE1: &str = "testdata/figure1.trace.json";

fn eo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_eo"))
        .args(args)
        .output()
        .expect("spawning eo")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("eo-lint-cli-test-{}-{name}", std::process::id()));
    p
}

fn read_metrics(path: &PathBuf) -> std::collections::BTreeMap<String, eo_obs::report::MetricValue> {
    let text = std::fs::read_to_string(path).expect("metrics file must exist");
    std::fs::remove_file(path).ok();
    eo_obs::report::metrics_from_json(&text).expect("metrics file must parse")
}

#[test]
fn lint_exit_codes_aggregate_across_files() {
    // Figure 1 is clean under the default (trace) lints → 0.
    let out = eo(&["lint", FIGURE1]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Same file twice: per-file reports plus an aggregate summary, still 0.
    let out = eo(&["lint", FIGURE1, FIGURE1]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches(&format!("== {FIGURE1} ==")).count(),
        2,
        "one per-file header each: {stdout}"
    );
    assert!(stdout.contains("2 file(s) linted"), "stdout: {stdout}");

    // The MHP pass finds the Figure 1 write/read race (a warning); the
    // default deny level (error) still exits 0, tightening denies it.
    assert_eq!(eo(&["lint", FIGURE1, "--mhp"]).status.code(), Some(0));
    let out = eo(&["lint", FIGURE1, "--mhp", "--deny", "warning"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("EO-L010"),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // One denied file poisons the aggregate exit even when its sibling
    // is clean (clean file first, so the failure must carry across).
    let out = eo(&["lint", FIGURE1, FIGURE1, "--mhp", "--deny", "warning"]);
    assert_eq!(out.status.code(), Some(1));

    // A missing file is an input error (1), but every readable file is
    // still linted and reported.
    let out = eo(&["lint", FIGURE1, "no-such.trace.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains(&format!("== {FIGURE1} ==")),
        "readable files still get reports: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Usage errors stay 1.
    assert_eq!(eo(&["lint"]).status.code(), Some(1));
    assert_eq!(
        eo(&["lint", FIGURE1, "--deny", "nonsense"]).status.code(),
        Some(1)
    );
    assert_eq!(
        eo(&["lint", FIGURE1, "--metrics-out"]).status.code(),
        Some(1),
        "--metrics-out without a path is a usage error"
    );
}

#[test]
fn lint_flushes_the_full_metrics_registry() {
    let m = tmp("lint-metrics.json");
    let out = eo(&[
        "lint",
        FIGURE1,
        FIGURE1,
        "--mhp",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = read_metrics(&m);
    // The full registry is always present (defaults fill unrecorded keys).
    for key in eo_obs::report::ENGINE_METRICS {
        assert!(metrics.contains_key(*key), "missing registry key {key}");
    }
    #[cfg(feature = "obs")]
    {
        use eo_obs::report::MetricValue;
        assert_eq!(
            metrics.get("lint.programs"),
            Some(&MetricValue::Int(2)),
            "one lint_program run per file"
        );
        assert_eq!(
            metrics.get("mhp.analyses"),
            Some(&MetricValue::Int(2)),
            "--mhp runs the fixpoint once per file"
        );
        match metrics.get("lint.diagnostics") {
            Some(MetricValue::Int(n)) => {
                assert!(*n >= 2, "both files report the Figure 1 race")
            }
            other => panic!("lint.diagnostics: {other:?}"),
        }
    }
}

#[test]
fn mhp_cli_exit_codes() {
    assert_eq!(eo(&["mhp", FIGURE1]).status.code(), Some(0));
    assert_eq!(eo(&["mhp", "--figure1"]).status.code(), Some(0));
    assert_eq!(eo(&["mhp"]).status.code(), Some(1), "missing path is usage");
    assert_eq!(eo(&["mhp", "no-such.trace.json"]).status.code(), Some(1));

    let m = tmp("mhp-metrics.json");
    let out = eo(&["mhp", FIGURE1, "--metrics-out", m.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let metrics = read_metrics(&m);
    for key in eo_obs::report::ENGINE_METRICS {
        assert!(metrics.contains_key(*key), "missing registry key {key}");
    }
    #[cfg(feature = "obs")]
    {
        use eo_obs::report::MetricValue;
        assert_eq!(metrics.get("mhp.analyses"), Some(&MetricValue::Int(1)));
        assert_eq!(
            metrics.get("mhp.stmts"),
            Some(&MetricValue::Int(7)),
            "the Figure 1 trace reconstructs to 7 statements"
        );
    }
}

#[test]
fn lint_json_matches_the_committed_golden() {
    let out = eo(&["lint", FIGURE1, "--mhp", "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read_to_string("testdata/lint_figure1_mhp.golden.json")
        .expect("committed golden must exist");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "eo lint --mhp --json diverges from the committed golden"
    );
}

#[test]
fn mhp_json_matches_the_committed_golden() {
    let out = eo(&["mhp", FIGURE1, "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read_to_string("testdata/mhp_figure1.golden.json")
        .expect("committed golden must exist");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "eo mhp --json diverges from the committed golden"
    );
}
