//! E7 — cost of the precision measurement itself: building each baseline
//! relation on the standard workloads (the precision numbers are printed
//! by the `report` binary; this bench times the contenders).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use eo_lang::generator::{generate_trace, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let trace = generate_trace(&WorkloadSpec::small_semaphore(11), 100);
    let sem_exec = trace.to_execution().unwrap();
    let mut espec = WorkloadSpec::small_events(11);
    espec.clears = false;
    let etrace = generate_trace(&espec, 100);
    let ev_exec = etrace.to_execution().unwrap();

    let mut g = c.benchmark_group("e7_baselines");
    g.bench_function("hmw_on_semaphores", |b| {
        b.iter(|| eo_approx::SafeOrderings::compute(black_box(&sem_exec)))
    });
    g.bench_function("hmw_phase1_on_semaphores", |b| {
        b.iter(|| eo_approx::hmw::unsafe_phase1(black_box(&sem_exec)))
    });
    g.bench_function("egp_on_events", |b| {
        b.iter(|| eo_approx::TaskGraph::build(black_box(&ev_exec)))
    });
    g.bench_function("vc_on_semaphores", |b| {
        b.iter(|| eo_approx::VectorClockHb::compute(black_box(&sem_exec)))
    });
    g.bench_function("vc_on_events", |b| {
        b.iter(|| eo_approx::VectorClockHb::compute(black_box(&ev_exec)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::fast_criterion();
    targets = bench
}
criterion_main!(benches);
