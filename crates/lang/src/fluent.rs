//! The fluent, typed program builder.
//!
//! [`ProgramScope`] is the redesigned construction API: sync objects are
//! declared up front and handed back as **typed handles** ([`SemId`],
//! [`BarrierId`], [`MutexId`], [`CondId`], [`ChanId`], …), and each
//! thread's statements live inside a scope closure, so a statement can
//! never be appended to the wrong process by passing a stale `ProcRef`:
//!
//! ```
//! use eo_lang::fluent::ProgramScope;
//!
//! let mut p = ProgramScope::new();
//! let m = p.mutex("m");
//! let done = p.event_var("done");
//! p.thread("worker", |t| {
//!     t.lock(m).compute("critical").unlock(m).post(done);
//! });
//! p.thread("main", |t| {
//!     t.wait(done).compute("after");
//! });
//! let program = p.build();
//! assert_eq!(program.processes.len(), 2);
//! ```
//!
//! Conditional branches nest through [`BranchScope`] closures with the
//! same statement vocabulary (minus barrier waits, which must stay
//! top-level — see [`StmtKind::BarrierWait`]). The older imperative
//! [`crate::builder::ProgramBuilder`] remains available as a
//! compatibility shim over the same `Program` representation; new code
//! should prefer this module (README "Builder migration").

use crate::ast::{BarrierId, ChanId, CondId, MutexId, ProcRef, Program, ProgramError, StmtKind};
use crate::builder::{BlockBuilder, ProgramBuilder};
use eo_model::{EvVarId, SemId, VarId};

/// Scoped construction of a whole [`Program`].
#[derive(Default)]
pub struct ProgramScope {
    b: ProgramBuilder,
}

impl ProgramScope {
    /// A fresh program scope with no declarations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a counting semaphore initialized to zero.
    pub fn semaphore(&mut self, name: &str) -> SemId {
        self.b.semaphore(name)
    }

    /// Declares a counting semaphore with an explicit initial value.
    pub fn semaphore_init(&mut self, name: &str, initial: u32) -> SemId {
        self.b.semaphore_init(name, initial)
    }

    /// Declares an event variable, initially clear.
    pub fn event_var(&mut self, name: &str) -> EvVarId {
        self.b.event_var(name)
    }

    /// Declares an event variable with an explicit initial flag.
    pub fn event_var_init(&mut self, name: &str, initially_set: bool) -> EvVarId {
        self.b.event_var_init(name, initially_set)
    }

    /// Declares a shared variable (initially 0).
    pub fn variable(&mut self, name: &str) -> VarId {
        self.b.variable(name)
    }

    /// Declares a barrier for `parties` participating processes.
    pub fn barrier(&mut self, name: &str, parties: u32) -> BarrierId {
        self.b.barrier(name, parties)
    }

    /// Declares a mutex (initially unlocked).
    pub fn mutex(&mut self, name: &str) -> MutexId {
        self.b.mutex(name)
    }

    /// Declares a condition variable.
    pub fn condvar(&mut self, name: &str) -> CondId {
        self.b.condvar(name)
    }

    /// Declares a bounded channel with the given capacity (≥ 1).
    pub fn channel(&mut self, name: &str, capacity: u32) -> ChanId {
        self.b.channel(name, capacity)
    }

    /// Declares a root thread (exists from the start) and builds its body
    /// inside the scope closure. Returns the handle for `join`s.
    pub fn thread(&mut self, name: &str, f: impl FnOnce(&mut ThreadScope<'_>)) -> ProcRef {
        let p = self.b.process(name);
        f(&mut ThreadScope { b: &mut self.b, p });
        p
    }

    /// Declares a worker thread (must be forked exactly once) and builds
    /// its body. Returns the handle for `fork`/`join`.
    pub fn worker(&mut self, name: &str, f: impl FnOnce(&mut ThreadScope<'_>)) -> ProcRef {
        let p = self.b.subprocess(name);
        f(&mut ThreadScope { b: &mut self.b, p });
        p
    }

    /// Finishes, panicking on a statically malformed program.
    ///
    /// # Panics
    /// Panics if validation fails — see [`ProgramScope::try_build`].
    pub fn build(self) -> Program {
        self.b.build()
    }

    /// Finishes, returning the validation error if malformed.
    pub fn try_build(self) -> Result<Program, ProgramError> {
        self.b.try_build()
    }
}

/// Statement scope of one thread. All appenders return `&mut Self` for
/// chaining.
pub struct ThreadScope<'a> {
    b: &'a mut ProgramBuilder,
    p: ProcRef,
}

impl ThreadScope<'_> {
    /// This thread's process handle.
    pub fn handle(&self) -> ProcRef {
        self.p
    }

    /// Appends a labeled no-access computation event.
    pub fn compute(&mut self, label: &str) -> &mut Self {
        self.b.compute(self.p, label);
        self
    }

    /// Appends an abstract computation with explicit read/write sets.
    pub fn compute_rw(&mut self, reads: &[VarId], writes: &[VarId], label: &str) -> &mut Self {
        self.b.compute_rw(self.p, reads, writes, label);
        self
    }

    /// Appends an unlabeled skip.
    pub fn skip(&mut self) -> &mut Self {
        self.b.skip(self.p);
        self
    }

    /// Appends `var := value`.
    pub fn assign(&mut self, var: VarId, value: i64) -> &mut Self {
        self.b.assign(self.p, var, value);
        self
    }

    /// Appends `P(sem)`.
    pub fn sem_p(&mut self, sem: SemId) -> &mut Self {
        self.b.sem_p(self.p, sem);
        self
    }

    /// Appends `V(sem)`.
    pub fn sem_v(&mut self, sem: SemId) -> &mut Self {
        self.b.sem_v(self.p, sem);
        self
    }

    /// Appends `Post(ev)`.
    pub fn post(&mut self, ev: EvVarId) -> &mut Self {
        self.b.post(self.p, ev);
        self
    }

    /// Appends `Wait(ev)`.
    pub fn wait(&mut self, ev: EvVarId) -> &mut Self {
        self.b.wait(self.p, ev);
        self
    }

    /// Appends `Clear(ev)`.
    pub fn clear(&mut self, ev: EvVarId) -> &mut Self {
        self.b.clear(self.p, ev);
        self
    }

    /// Appends `barrier_wait(b)` (top level only).
    pub fn barrier_wait(&mut self, b: BarrierId) -> &mut Self {
        self.b.barrier_wait(self.p, b);
        self
    }

    /// Appends `lock(m)`.
    pub fn lock(&mut self, m: MutexId) -> &mut Self {
        self.b.lock(self.p, m);
        self
    }

    /// Appends `unlock(m)`.
    pub fn unlock(&mut self, m: MutexId) -> &mut Self {
        self.b.unlock(self.p, m);
        self
    }

    /// Appends `cond_wait(c, m)`.
    pub fn cond_wait(&mut self, c: CondId, m: MutexId) -> &mut Self {
        self.b.cond_wait(self.p, c, m);
        self
    }

    /// Appends `cond_signal(c)`.
    pub fn cond_signal(&mut self, c: CondId) -> &mut Self {
        self.b.cond_signal(self.p, c);
        self
    }

    /// Appends `send(ch)`.
    pub fn send(&mut self, ch: ChanId) -> &mut Self {
        self.b.send(self.p, ch);
        self
    }

    /// Appends `recv(ch)`.
    pub fn recv(&mut self, ch: ChanId) -> &mut Self {
        self.b.recv(self.p, ch);
        self
    }

    /// Appends a labeled statement of any kind.
    pub fn stmt(&mut self, kind: StmtKind, label: &str) -> &mut Self {
        self.b.labeled(self.p, kind, label);
        self
    }

    /// Appends `fork {targets…}`.
    pub fn fork(&mut self, targets: &[ProcRef]) -> &mut Self {
        self.b.fork(self.p, targets);
        self
    }

    /// Appends `join {targets…}`.
    pub fn join(&mut self, targets: &[ProcRef]) -> &mut Self {
        self.b.join(self.p, targets);
        self
    }

    /// Appends `if var = value then … else …`, building both branches
    /// with [`BranchScope`] closures.
    pub fn branch_eq(
        &mut self,
        var: VarId,
        value: i64,
        then_f: impl FnOnce(&mut BranchScope<'_>),
        else_f: impl FnOnce(&mut BranchScope<'_>),
    ) -> &mut Self {
        self.b.if_eq(
            self.p,
            var,
            value,
            |blk| then_f(&mut BranchScope { b: blk }),
            |blk| else_f(&mut BranchScope { b: blk }),
        );
        self
    }
}

/// Statement scope of one conditional branch (no barrier waits — those
/// must be top-level).
pub struct BranchScope<'a> {
    b: &'a mut BlockBuilder,
}

impl BranchScope<'_> {
    /// Appends a labeled computation event.
    pub fn compute(&mut self, label: &str) -> &mut Self {
        self.b.compute_here(label);
        self
    }

    /// Appends `var := value`.
    pub fn assign(&mut self, var: VarId, value: i64) -> &mut Self {
        self.b.assign_here(var, value);
        self
    }

    /// Appends `P(sem)`.
    pub fn sem_p(&mut self, sem: SemId) -> &mut Self {
        self.b.sem_p_here(sem);
        self
    }

    /// Appends `V(sem)`.
    pub fn sem_v(&mut self, sem: SemId) -> &mut Self {
        self.b.sem_v_here(sem);
        self
    }

    /// Appends `Post(ev)`.
    pub fn post(&mut self, ev: EvVarId) -> &mut Self {
        self.b.post_here(ev);
        self
    }

    /// Appends `Wait(ev)`.
    pub fn wait(&mut self, ev: EvVarId) -> &mut Self {
        self.b.wait_here(ev);
        self
    }

    /// Appends `Clear(ev)`.
    pub fn clear(&mut self, ev: EvVarId) -> &mut Self {
        self.b.clear_here(ev);
        self
    }

    /// Appends `lock(m)`.
    pub fn lock(&mut self, m: MutexId) -> &mut Self {
        self.b.lock_here(m);
        self
    }

    /// Appends `unlock(m)`.
    pub fn unlock(&mut self, m: MutexId) -> &mut Self {
        self.b.unlock_here(m);
        self
    }

    /// Appends `cond_wait(c, m)`.
    pub fn cond_wait(&mut self, c: CondId, m: MutexId) -> &mut Self {
        self.b.cond_wait_here(c, m);
        self
    }

    /// Appends `cond_signal(c)`.
    pub fn cond_signal(&mut self, c: CondId) -> &mut Self {
        self.b.cond_signal_here(c);
        self
    }

    /// Appends `send(ch)`.
    pub fn send(&mut self, ch: ChanId) -> &mut Self {
        self.b.send_here(ch);
        self
    }

    /// Appends `recv(ch)`.
    pub fn recv(&mut self, ch: ChanId) -> &mut Self {
        self.b.recv_here(ch);
        self
    }

    /// Appends `fork {targets…}`.
    pub fn fork(&mut self, targets: &[ProcRef]) -> &mut Self {
        self.b.fork_here(targets);
        self
    }

    /// Appends `join {targets…}`.
    pub fn join(&mut self, targets: &[ProcRef]) -> &mut Self {
        self.b.join_here(targets);
        self
    }

    /// Appends a nested conditional.
    pub fn branch_eq(
        &mut self,
        var: VarId,
        value: i64,
        then_f: impl FnOnce(&mut BranchScope<'_>),
        else_f: impl FnOnce(&mut BranchScope<'_>),
    ) -> &mut Self {
        self.b.if_eq_here(
            var,
            value,
            |blk| then_f(&mut BranchScope { b: blk }),
            |blk| else_f(&mut BranchScope { b: blk }),
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_to_trace;
    use crate::scheduler::Scheduler;

    #[test]
    fn fluent_and_imperative_builders_agree() {
        let mut fluent = ProgramScope::new();
        let s = fluent.semaphore("s");
        let x = fluent.variable("x");
        fluent.thread("p0", |t| {
            t.assign(x, 1).sem_v(s);
        });
        fluent.thread("p1", |t| {
            t.sem_p(s).branch_eq(
                x,
                1,
                |then| {
                    then.compute("saw_one");
                },
                |els| {
                    els.compute("saw_other");
                },
            );
        });
        let a = fluent.build();

        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let x = b.variable("x");
        let p0 = b.process("p0");
        b.assign(p0, x, 1).sem_v(p0, s);
        let p1 = b.process("p1");
        b.sem_p(p1, s).if_eq(
            p1,
            x,
            1,
            |then| {
                then.compute_here("saw_one");
            },
            |els| {
                els.compute_here("saw_other");
            },
        );
        assert_eq!(a, b.build(), "both builders produce the same Program");
    }

    #[test]
    fn worker_fork_join_runs() {
        let mut p = ProgramScope::new();
        let w1 = p.worker("w1", |t| {
            t.compute("work1");
        });
        let w2 = p.worker("w2", |t| {
            t.compute("work2");
        });
        p.thread("main", |t| {
            t.fork(&[w1, w2]).join(&[w1, w2]).compute("done");
        });
        let prog = p.build();
        let t = run_to_trace(&prog, &mut Scheduler::round_robin()).unwrap();
        assert_eq!(t.n_events(), 5);
    }

    #[test]
    fn typed_handles_cover_all_sync_objects() {
        let mut p = ProgramScope::new();
        let bar = p.barrier("bar", 2);
        let m = p.mutex("m");
        let c = p.condvar("c");
        let ch = p.channel("ch", 1);
        p.thread("a", |t| {
            t.lock(m)
                .cond_signal(c)
                .unlock(m)
                .send(ch)
                .barrier_wait(bar);
        });
        p.thread("b", |t| {
            t.lock(m)
                .cond_wait(c, m)
                .unlock(m)
                .recv(ch)
                .barrier_wait(bar);
        });
        let prog = p.build();
        assert!(prog.uses_surface_sync());
        assert_eq!(prog.barriers.len(), 1);
        assert_eq!(prog.mutexes.len(), 1);
        assert_eq!(prog.condvars.len(), 1);
        assert_eq!(prog.channels.len(), 1);
    }
}
