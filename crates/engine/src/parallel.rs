//! Parallel cut-lattice exploration.
//!
//! The sequential explorer in [`crate::statespace`] interleaves three
//! kinds of work: stepping the machine out of each state (CPU-bound,
//! embarrassingly parallel), hash-consing successor states into the global
//! arena (memory-bound, hard to parallelize without sharded tables), and
//! the pairwise-fact accumulation over completable states (CPU-bound,
//! parallel by node range). This module parallelizes the first and third
//! on a **persistent worker pool** — workers are spawned once for the
//! whole exploration and fed per-level tasks through a shared
//! condvar-backed queue, so no thread is created per BFS level — while the
//! hash-consing merge stays sequential on the coordinating thread.
//!
//! The storage is the same [`StateGraph`](crate::statespace) the
//! sequential explorer uses: states interned once in the
//! [`StateTable`](crate::statetable::StateTable) arena, executed sets
//! threaded incrementally (each successor adds one bit to its parent's
//! row), overlap checks done by successor-table walks in
//! `accumulate_range` — so the two explorers differ only in who does the
//! stepping, never in what is stored.
//!
//! The result is bit-for-bit identical to the sequential explorer's
//! (tests assert this). Whether it is *faster* depends on how much of the
//! input's cost is machine-stepping versus hashing: the ablation bench
//! (DESIGN.md §5) reports both sides honestly, and on small executions the
//! sequential explorer wins — parallelism only pays once the per-level
//! frontiers are thousands of states wide.
//!
//! ## Failure isolation
//!
//! A panicking worker must not take the analysis down with it. Three
//! mechanisms compose (exercised by the fault-injection suite):
//!
//! * every queue lock recovers from poisoning
//!   ([`PoisonError::into_inner`] — the queue invariants are trivial, so a
//!   mid-`push` panic elsewhere cannot corrupt them);
//! * each task runs under [`catch_unwind`] *inside* the worker's pop
//!   loop: a panicked task becomes a `TaskResult::Failed` and the
//!   worker keeps draining the queue, so the coordinator always receives
//!   one result per task — no thread dies, no slot is abandoned, no hang
//!   even with a single worker;
//! * the coordinator collects *all* expected results for a phase before
//!   acting, then surfaces any failure as
//!   [`EngineError::WorkerFailed`]. The surrounding [`std::thread::scope`]
//!   joins every worker on the way out.
//!
//! [`catch_unwind`]: std::panic::catch_unwind
//! [`PoisonError::into_inner`]: std::sync::PoisonError::into_inner

use crate::budget::Budget;
use crate::ctx::SearchCtx;
use crate::engine::EngineError;
use crate::pool::Queue;
use crate::statespace::{
    accumulate_range, propagate_completability, Node, StateGraph, StateSpaceResult,
};
use eo_model::{EventId, MachState, ProcessId};
use eo_relations::Relation;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// One state to expand: its node index, the state cloned out of the
/// arena, and its enabled list.
type ExpandItem = (usize, MachState, Vec<(ProcessId, EventId)>);

/// Work items sent to the pool.
enum Task {
    /// Expand these states (cloned out of the arena): step every enabled
    /// process once, reporting the event each step fired.
    Expand {
        /// Position of this chunk in the level's task list.
        slot: usize,
        items: Vec<ExpandItem>,
    },
    /// Compute `co_enabled` for these fresh states.
    Enable { slot: usize, items: Vec<MachState> },
}

/// Worker results, tagged by slot so the coordinator can reassemble
/// deterministically.
enum TaskResult {
    Expanded {
        slot: usize,
        succs: Vec<(usize, EventId, MachState)>,
    },
    Enabled {
        slot: usize,
        enabled: Vec<Vec<(ProcessId, EventId)>>,
    },
    /// The worker's task panicked (caught); the slot produced nothing.
    Failed,
}

/// Parallel variant of [`crate::explore_statespace`]. `threads = 0` means
/// "use the available parallelism".
pub fn explore_statespace_parallel(
    ctx: &SearchCtx<'_>,
    max_states: usize,
    threads: usize,
) -> Result<StateSpaceResult, EngineError> {
    explore_statespace_parallel_budgeted(
        ctx,
        &Budget::unlimited().with_max_states(max_states),
        threads,
    )
}

/// Parallel exploration under a full supervisor [`Budget`] (deadline,
/// caps, memory, cancellation — checked once per BFS level — plus worker
/// checkpoints for fault injection). All-or-nothing; degraded analyses
/// use `explore_parallel_partial` to keep the truncated graph.
pub fn explore_statespace_parallel_budgeted(
    ctx: &SearchCtx<'_>,
    budget: &Budget,
    threads: usize,
) -> Result<StateSpaceResult, EngineError> {
    let (mut graph, stopped) = explore_parallel_partial(ctx, budget, threads);
    if let Some(e) = stopped {
        return Err(e);
    }
    finalize_parallel(ctx, budget, &mut graph, threads.max(1))
}

/// Builds the cut-lattice graph on the worker pool, stopping at the first
/// exhausted budget resource or worker failure. The graph built so far is
/// returned either way (level-consistent; see
/// [`crate::statespace::finalize_partial`] for what a truncated graph
/// soundly proves). Every pool thread is joined before this returns.
pub(crate) fn explore_parallel_partial(
    ctx: &SearchCtx<'_>,
    budget: &Budget,
    threads: usize,
) -> (StateGraph, Option<EngineError>) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };

    eo_obs::gauge!("pool.workers", threads as i64);
    let tasks: Queue<Task> = Queue::new();
    let results: Queue<TaskResult> = Queue::new();

    let out = std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // The guard spans the worker's lifetime; the thread-local
                // event buffer flushes when the scoped thread exits, which
                // is always before the exploration returns.
                let _worker_span = eo_obs::span("pool.worker");
                let mut tasks_done: u64 = 0;
                let mut enabled_buf: Vec<(ProcessId, EventId)> = Vec::new();
                while let Some(task) = tasks.pop() {
                    tasks_done += 1;
                    // Isolate each task: a panic (fault-injected or real)
                    // yields a `Failed` result and the worker lives on to
                    // drain the queue — the coordinator is always owed
                    // exactly one result per task.
                    let outcome = catch_unwind(AssertUnwindSafe(|| match task {
                        Task::Expand { slot, items } => {
                            budget.check_worker();
                            let mut succs = Vec::new();
                            for (parent, state, fires) in items {
                                for (p, e) in fires {
                                    let mut st2 = state.clone();
                                    ctx.step(&mut st2, p);
                                    succs.push((parent, e, st2));
                                }
                            }
                            TaskResult::Expanded { slot, succs }
                        }
                        Task::Enable { slot, items } => {
                            budget.check_worker();
                            let enabled = items
                                .iter()
                                .map(|st| {
                                    ctx.co_enabled_into(st, &mut enabled_buf);
                                    enabled_buf.clone()
                                })
                                .collect();
                            TaskResult::Enabled { slot, enabled }
                        }
                    }));
                    results.push(outcome.unwrap_or(TaskResult::Failed));
                }
                eo_obs::counter!("pool.tasks", tasks_done);
            });
        }

        let out = drive(ctx, budget, threads, &tasks, &results);
        tasks.close(); // hang up so workers exit; the scope joins them
        out
    });
    out.0.emit_metrics();
    if eo_obs::recording() {
        eo_obs::gauge!(
            "pool.max_queue_depth",
            tasks.max_depth.load(Ordering::Relaxed) as i64
        );
    }
    out
}

/// The coordinating thread: level-synchronous BFS with the heavy phases
/// fanned out to the pool. Stops (returning the level-consistent graph so
/// far) at the first exhausted budget resource or failed worker task.
fn drive(
    ctx: &SearchCtx<'_>,
    budget: &Budget,
    threads: usize,
    tasks: &Queue<Task>,
    results: &Queue<TaskResult>,
) -> (StateGraph, Option<EngineError>) {
    eo_obs::span!("engine.build_graph");
    let mut graph = StateGraph::seeded(ctx);

    // O(1) running storage estimate for the memory budget (see the
    // sequential `build_graph_budgeted`).
    let state_bytes = std::mem::size_of::<MachState>()
        + ctx.initial_state().heap_bytes()
        + ctx.n_events().div_ceil(64) * 8
        + std::mem::size_of::<Node>();
    let edge_bytes = std::mem::size_of::<u32>() + std::mem::size_of::<(ProcessId, EventId)>();
    let mut est_bytes = state_bytes + graph.nodes[0].enabled.len() * edge_bytes;

    let mut frontier: Vec<usize> = vec![0];
    while !frontier.is_empty() {
        // One budget checkpoint per BFS level.
        if let Err(e) = budget.check(est_bytes) {
            return (graph, Some(e));
        }

        // Phase 1 (pool): successors of every frontier node. Task items
        // carry owned state clones so workers never borrow the arena.
        let expand_span = eo_obs::span("par.expand");
        let chunk = frontier.len().div_ceil(threads).max(1);
        let mut slots = 0;
        for (slot, ids) in frontier.chunks(chunk).enumerate() {
            let items = ids
                .iter()
                .map(|&i| {
                    let state = graph.table.get(crate::statetable::StateId::new(i)).clone();
                    (i, state, graph.nodes[i].enabled.clone())
                })
                .collect();
            tasks.push(Task::Expand { slot, items });
            slots += 1;
        }
        let mut batches: Vec<Vec<(usize, EventId, MachState)>> =
            (0..slots).map(|_| Vec::new()).collect();
        let mut failed = 0usize;
        for _ in 0..slots {
            // Workers always answer every task (panics are caught into
            // `Failed`), so all `slots` results arrive; collect them all
            // before acting so no result is left queued for a later phase.
            match results.pop() {
                Some(TaskResult::Expanded { slot, succs }) => batches[slot] = succs,
                Some(TaskResult::Failed) | None => failed += 1,
                Some(TaskResult::Enabled { .. }) => {
                    debug_assert!(false, "no enable tasks in flight");
                    failed += 1;
                }
            }
        }
        if failed > 0 {
            return (graph, Some(EngineError::WorkerFailed));
        }
        expand_span.end();

        // Phase 2 (sequential): hash-cons successor states into the arena.
        let intern_span = eo_obs::span("par.intern");
        let new_start = graph.nodes.len();
        let mut next_frontier: Vec<usize> = Vec::new();
        for batch in batches {
            for (parent, e, st) in batch {
                let (id, fresh) = graph.table.intern(st);
                if fresh {
                    if let Err(err) = budget.check_states(graph.nodes.len() + 1) {
                        return (graph, Some(err));
                    }
                    debug_assert_eq!(id.index(), graph.nodes.len());
                    est_bytes += state_bytes;
                    graph.nodes.push(Node {
                        enabled: Vec::new(), // filled in phase 3
                        succs: Vec::new(),
                        completable: false,
                    });
                    let row = graph.executed.push_row_copy(parent);
                    debug_assert_eq!(row, id.index());
                    graph.executed.set(row, e.index());
                    next_frontier.push(id.index());
                }
                est_bytes += edge_bytes;
                graph.nodes[parent].succs.push(id.index() as u32);
            }
        }

        intern_span.end();

        // Phase 3 (pool): enabledness of the fresh nodes.
        let enable_span = eo_obs::span("par.enable");
        let fresh = graph.nodes.len() - new_start;
        if fresh > 0 {
            let chunk = fresh.div_ceil(threads).max(1);
            let mut slots = 0;
            let mut cursor = new_start;
            while cursor < graph.nodes.len() {
                let hi = (cursor + chunk).min(graph.nodes.len());
                let items = (cursor..hi)
                    .map(|i| graph.table.get(crate::statetable::StateId::new(i)).clone())
                    .collect();
                tasks.push(Task::Enable { slot: slots, items });
                slots += 1;
                cursor = hi;
            }
            let mut per_slot: Vec<Vec<Vec<(ProcessId, EventId)>>> =
                (0..slots).map(|_| Vec::new()).collect();
            let mut failed = 0usize;
            for _ in 0..slots {
                match results.pop() {
                    Some(TaskResult::Enabled { slot, enabled }) => per_slot[slot] = enabled,
                    Some(TaskResult::Failed) | None => failed += 1,
                    Some(TaskResult::Expanded { .. }) => {
                        debug_assert!(false, "no expand tasks in flight");
                        failed += 1;
                    }
                }
            }
            if failed > 0 {
                // Fresh nodes may lack enabled lists; they read as
                // deadlocks, which completability treats conservatively —
                // the partial graph stays sound for degradation.
                return (graph, Some(EngineError::WorkerFailed));
            }
            let mut write = new_start;
            for slot in per_slot {
                for enabled in slot {
                    est_bytes += enabled.len() * edge_bytes;
                    graph.nodes[write].enabled = enabled;
                    write += 1;
                }
            }
            debug_assert_eq!(write, graph.nodes.len());
        }
        enable_span.end();

        frontier = next_frontier;
    }

    (graph, None)
}

/// Phase 4 over a fully-built graph: completability (sequential linear
/// pass), then pairwise accumulation fanned out by node range and merged
/// by relation union. An accumulation thread that panics surfaces as
/// [`EngineError::WorkerFailed`] — after every thread is joined.
fn finalize_parallel(
    ctx: &SearchCtx<'_>,
    budget: &Budget,
    graph: &mut StateGraph,
    threads: usize,
) -> Result<StateSpaceResult, EngineError> {
    eo_obs::span!("engine.finalize");
    let deadlock_reachable = propagate_completability(ctx, graph, true);
    let (chb, overlap, completable_states) = if graph.nodes.len() < 4 * threads {
        accumulate_range(ctx, graph, 0, graph.nodes.len())
    } else {
        let chunk = graph.nodes.len().div_ceil(threads);
        let graph_ref = &*graph;
        let partials: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(graph_ref.nodes.len());
                    s.spawn(move || {
                        budget.check_worker();
                        accumulate_range(ctx, graph_ref, lo, hi)
                    })
                })
                .collect();
            // Join every handle before reporting, so a panic in one chunk
            // never leaves another thread running.
            handles.into_iter().map(|h| h.join().ok()).collect()
        });
        let n = ctx.n_events();
        let mut chb = Relation::new(n);
        let mut overlap = Relation::new(n);
        let mut completable = 0;
        for p in partials {
            let Some((c, o, k)) = p else {
                return Err(EngineError::WorkerFailed);
            };
            chb.union_with(&c);
            overlap.union_with(&o);
            completable += k;
        }
        (chb, overlap, completable)
    };

    Ok(StateSpaceResult {
        chb,
        overlap,
        states: graph.nodes.len(),
        completable_states,
        deadlock_reachable,
        approx_heap_bytes: graph.approx_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FeasibilityMode;
    use crate::statespace::explore_statespace;
    use eo_model::fixtures;

    fn both(trace: &eo_model::Trace) -> (StateSpaceResult, StateSpaceResult) {
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let seq = explore_statespace(&ctx, 1 << 20).unwrap();
        let par = explore_statespace_parallel(&ctx, 1 << 20, 4).unwrap();
        (seq, par)
    }

    fn assert_same(seq: &StateSpaceResult, par: &StateSpaceResult) {
        assert_eq!(seq.chb, par.chb);
        assert_eq!(seq.overlap, par.overlap);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.completable_states, par.completable_states);
        assert_eq!(seq.deadlock_reachable, par.deadlock_reachable);
    }

    #[test]
    fn parallel_matches_sequential_on_fixtures() {
        for trace in [
            fixtures::independent_pair().0,
            fixtures::sem_handshake().0,
            fixtures::fork_join_diamond().0,
            fixtures::figure1().0,
            fixtures::post_wait_clear_chain().0,
            fixtures::crossing().0,
        ] {
            let (seq, par) = both(&trace);
            assert_same(&seq, &par);
        }
    }

    #[test]
    fn parallel_matches_on_a_generated_workload() {
        use eo_lang::generator::{generate_trace, WorkloadSpec};
        let mut spec = WorkloadSpec::small_semaphore(5);
        spec.processes = 4;
        spec.events_per_process = 4;
        let exec = generate_trace(&spec, 50).to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let seq = explore_statespace(&ctx, 1 << 22).unwrap();
        let par = explore_statespace_parallel(&ctx, 1 << 22, 3).unwrap();
        assert_same(&seq, &par);
    }

    #[test]
    fn zero_threads_means_auto() {
        let (trace, _) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let auto = explore_statespace_parallel(&ctx, 1 << 20, 0).unwrap();
        let seq = explore_statespace(&ctx, 1 << 20).unwrap();
        assert_eq!(auto.chb, seq.chb);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (trace, _) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        assert!(matches!(
            explore_statespace_parallel(&ctx, 3, 2),
            Err(EngineError::StateSpaceExceeded { limit: 3 })
        ));
    }
}
