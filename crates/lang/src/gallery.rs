//! The surface-primitive fixture gallery.
//!
//! Small, named programs — one per new primitive family plus one
//! deliberate misuse — whose `eo analyze`/`eo mhp`/`eo lint` output is
//! golden-pinned under `testdata/gallery/` (see
//! `tests/fixture_gallery.rs`). Each is built with the fluent
//! [`ProgramScope`] API, so the gallery doubles as the builder's
//! reference examples.

use crate::ast::Program;
use crate::fluent::ProgramScope;

/// Names of every gallery fixture, in presentation order.
pub fn names() -> Vec<&'static str> {
    gallery().into_iter().map(|(n, _)| n).collect()
}

/// The whole gallery: `(name, program)` pairs.
pub fn gallery() -> Vec<(&'static str, Program)> {
    vec![
        ("barrier-pipeline", barrier_pipeline()),
        ("monitor-handoff", monitor_handoff()),
        ("channel-pipeline", channel_pipeline()),
        ("channel-starved", channel_starved()),
    ]
}

/// Looks up one fixture by name.
pub fn fixture(name: &str) -> Option<Program> {
    gallery()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
}

/// Three workers produce into per-worker slots, cross a barrier, then
/// each reads its neighbour's slot. The phase-1 writes and phase-2
/// reads conflict on the same variables, but the barrier orders them:
/// MHP proves every cross-phase pair never-concurrent, so the program
/// is race-free *because of* the barrier.
pub fn barrier_pipeline() -> Program {
    let mut p = ProgramScope::new();
    let bar = p.barrier("phase", 3);
    let slots = [p.variable("x0"), p.variable("x1"), p.variable("x2")];
    for i in 0..3usize {
        p.thread(&format!("w{i}"), |t| {
            t.compute_rw(&[], &[slots[i]], &format!("produce{i}"))
                .barrier_wait(bar)
                .compute_rw(&[slots[(i + 1) % 3]], &[], &format!("consume{i}"));
        });
    }
    p.build()
}

/// A one-slot handoff through a mutex + condvar: the producer fills
/// `data` and signals; the consumer waits, then drains. The signal/wait
/// edge (not the lock) is what orders `fill` before `drain`.
pub fn monitor_handoff() -> Program {
    let mut p = ProgramScope::new();
    let m = p.mutex("m");
    let ready = p.condvar("ready");
    let data = p.variable("data");
    p.thread("producer", |t| {
        t.compute_rw(&[], &[data], "fill")
            .lock(m)
            .cond_signal(ready)
            .unlock(m);
    });
    p.thread("consumer", |t| {
        t.lock(m)
            .cond_wait(ready, m)
            .unlock(m)
            .compute_rw(&[data], &[], "drain");
    });
    p.build()
}

/// A producer/consumer pair over a bounded channel of capacity 1: the
/// send publishes `item`, the recv orders `consume` after `produce`,
/// and the producer's trailing `next` stays concurrent with the
/// consumer.
pub fn channel_pipeline() -> Program {
    let mut p = ProgramScope::new();
    let ch = p.channel("ch", 1);
    let item = p.variable("item");
    p.thread("producer", |t| {
        t.compute_rw(&[], &[item], "produce")
            .send(ch)
            .compute("next");
    });
    p.thread("consumer", |t| {
        t.recv(ch).compute_rw(&[item], &[], "consume");
    });
    p.build()
}

/// Deliberate misuse for the lint gallery: a channel that is received
/// on but never sent to. `eo lint` flags it EO-L013 (error) — the
/// second receive can never be satisfied and the consumer wedges.
pub fn channel_starved() -> Program {
    let mut p = ProgramScope::new();
    let ch = p.channel("ch", 1);
    let dead = p.channel("dead", 1);
    p.thread("producer", |t| {
        t.compute("work").send(ch);
    });
    p.thread("consumer", |t| {
        t.recv(ch).recv(dead).compute("never");
    });
    p.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_desugars_and_the_clean_ones_complete() {
        for (name, program) in gallery() {
            let d = crate::desugar(&program).unwrap_or_else(|e| panic!("{name}: {e}"));
            if name == "channel-starved" {
                continue; // wedges by design
            }
            let mut sched = crate::Scheduler::round_robin();
            crate::run_to_trace(&d.program, &mut sched)
                .unwrap_or_else(|e| panic!("{name} must complete: {e:?}"));
        }
    }

    #[test]
    fn lookup_matches_the_gallery() {
        for name in names() {
            assert!(fixture(name).is_some(), "{name}");
        }
        assert!(fixture("no-such").is_none());
    }
}
