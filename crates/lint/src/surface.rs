//! Surface-primitive misuse lints (`EO-L013`).
//!
//! Programs using barriers, mutex/condvar monitors, or bounded channels
//! are linted by desugaring to the semaphore core and remapping every
//! core diagnostic's anchor back through the provenance map (see
//! `lint_validated`). That catches everything the core vocabulary can
//! express — but some misuses only exist at the surface level, because
//! the desugaring *erases* the discipline being violated:
//!
//! * **unlocking a mutex the process does not hold** — the lowering's
//!   `V(m.mtx)` is a perfectly legal semaphore operation that mints an
//!   extra token; only the surface knows it breaks mutual exclusion;
//! * **`cond_wait` without holding the monitor lock** — the release step
//!   `V(m.mtx)` mints a token exactly as above;
//! * **relocking a held mutex** — the lowering's `P(m.mtx)` simply
//!   self-deadlocks; the surface diagnosis ("mutexes here are not
//!   reentrant") is the useful one;
//! * **receiving on a channel nothing ever sends**, or **queuing more
//!   sends than capacity plus receives can drain** — core lints flag the
//!   lowered semaphores by their mangled names; the surface lint names
//!   the channel;
//! * **signalling a condvar nothing ever waits on** (style) — the
//!   lowered `V(c.cv)` token is simply never consumed.
//!
//! The lock-discipline walk tracks, per mutex, the *(min, max)* number
//! of holds along any path through the process body (branches meet by
//! interval union) and reports only certainties: `max = 0` for
//! "not held", `min > 0` for "already held". Uncertain states stay
//! silent — these are lints, and a `Warning` here must mean a real
//! possible misbehavior, not analysis imprecision.

use crate::diag::{codes, Anchor, Diagnostic, Severity};
use crate::LintOptions;
use eo_lang::stmt::StmtMap;
use eo_lang::{ProcRef, Program, StmtId, StmtKind};

/// Runs every surface-level lint, appending findings to `out`.
pub(crate) fn surface_lints(
    program: &Program,
    map: &StmtMap<'_>,
    opts: &LintOptions,
    out: &mut Vec<Diagnostic>,
) {
    lock_discipline(program, map, out);
    channel_supply(program, map, out);
    if opts.style {
        unobserved_signals(program, map, out);
    }
}

/// Per-mutex hold-count interval: (min, max) over all paths so far.
type Holds = Vec<(u32, u32)>;

fn lock_discipline(program: &Program, map: &StmtMap<'_>, out: &mut Vec<Diagnostic>) {
    for pi in 0..program.processes.len() {
        let body = map.body(ProcRef(pi as u32));
        let holds: Holds = vec![(0, 0); program.mutexes.len()];
        walk_locks(program, map, body, holds, out);
    }
}

fn walk_locks(
    program: &Program,
    map: &StmtMap<'_>,
    ids: &[StmtId],
    mut holds: Holds,
    out: &mut Vec<Diagnostic>,
) -> Holds {
    let diag = |id: StmtId, message: String, note: String| Diagnostic {
        code: codes::SURFACE_MISUSE,
        severity: Severity::Error,
        anchor: Anchor::Stmt(id),
        location: map.describe(id),
        message,
        notes: vec![note],
    };
    for &id in ids {
        match map.kind(id) {
            StmtKind::Lock(m) => {
                let (min, max) = holds[m.index()];
                if min > 0 {
                    out.push(diag(
                        id,
                        format!(
                            "relocking mutex `{}` already held by this process",
                            program.mutexes[m.index()].name
                        ),
                        "mutexes are not reentrant: the second `lock` blocks forever".into(),
                    ));
                }
                holds[m.index()] = (min + 1, max + 1);
            }
            StmtKind::Unlock(m) => {
                let (min, max) = holds[m.index()];
                if max == 0 {
                    out.push(diag(
                        id,
                        format!(
                            "unlocking mutex `{}` this process does not hold",
                            program.mutexes[m.index()].name
                        ),
                        "the unlock mints an extra lock token, breaking mutual exclusion".into(),
                    ));
                }
                holds[m.index()] = (min.saturating_sub(1), max.saturating_sub(1));
            }
            StmtKind::CondWait(c, m) => {
                let (_, max) = holds[m.index()];
                if max == 0 {
                    out.push(diag(
                        id,
                        format!(
                            "`cond_wait` on `{}` without holding mutex `{}`",
                            program.condvars[c.index()].name,
                            program.mutexes[m.index()].name
                        ),
                        "the wait's release step mints an extra lock token".into(),
                    ));
                }
                // The wait releases and reacquires: net hold count unchanged.
            }
            StmtKind::If { .. } => {
                let t = walk_locks(program, map, map.then_branch(id), holds.clone(), out);
                let e = walk_locks(program, map, map.else_branch(id), holds.clone(), out);
                holds = t
                    .iter()
                    .zip(&e)
                    .map(|(&(tmin, tmax), &(emin, emax))| (tmin.min(emin), tmax.max(emax)))
                    .collect();
            }
            _ => {}
        }
    }
    holds
}

/// Mutexes provably incapable of causing a permanent block.
///
/// A mutex `m` is *erasable* from the deadlock analysis when, in every
/// process, (a) its uses follow strict bracket discipline on **all**
/// paths — never possibly relocked while held, never possibly unlocked
/// or `cond_wait`ed while not held, never still held at process end —
/// and (b) no potentially-blocking statement (`P`, `Wait`, `Join`,
/// `lock` of any mutex, `barrier_wait`, `send`, `recv`, or a `cond_wait`
/// on a *different* mutex) executes while `m` is possibly held. Then
/// every holder of `m` completes its critical section unconditionally
/// and releases, so no `P(m.mtx)` in the lowering can block forever —
/// the classical argument that flat, non-blocking critical sections
/// cannot deadlock. A `cond_wait` on `m` itself is exempt from (b): its
/// release step gives `m` up before blocking.
///
/// Anything uncertain (conditional holds, nesting, blocking under the
/// lock) keeps the mutex in the core wait-for analysis — conservative in
/// the sound direction.
pub(crate) fn erasable_mutexes(program: &Program, map: &StmtMap<'_>) -> Vec<bool> {
    let mut erasable = vec![true; program.mutexes.len()];
    for pi in 0..program.processes.len() {
        let body = map.body(ProcRef(pi as u32));
        let holds: Holds = vec![(0, 0); program.mutexes.len()];
        let end = walk_erasable(map, body, holds, &mut erasable);
        for (mi, &(_, max)) in end.iter().enumerate() {
            if max > 0 {
                erasable[mi] = false; // possibly held at process end
            }
        }
    }
    erasable
}

fn walk_erasable(
    map: &StmtMap<'_>,
    ids: &[StmtId],
    mut holds: Holds,
    erasable: &mut [bool],
) -> Holds {
    // Marks every possibly-held mutex (except `exempt`) non-erasable.
    fn blocks_held(holds: &Holds, erasable: &mut [bool], exempt: Option<usize>) {
        for (mi, &(_, max)) in holds.iter().enumerate() {
            if max > 0 && Some(mi) != exempt {
                erasable[mi] = false;
            }
        }
    }
    for &id in ids {
        match map.kind(id) {
            StmtKind::Lock(m) => {
                let (min, max) = holds[m.index()];
                if max > 0 {
                    erasable[m.index()] = false; // possible relock
                }
                blocks_held(&holds, erasable, Some(m.index()));
                holds[m.index()] = (min + 1, max + 1);
            }
            StmtKind::Unlock(m) => {
                let (min, max) = holds[m.index()];
                if min == 0 {
                    erasable[m.index()] = false; // possibly not held
                }
                holds[m.index()] = (min.saturating_sub(1), max.saturating_sub(1));
            }
            StmtKind::CondWait(_, m) => {
                let (min, _) = holds[m.index()];
                if min == 0 {
                    erasable[m.index()] = false; // possibly waiting unlocked
                }
                blocks_held(&holds, erasable, Some(m.index()));
            }
            StmtKind::SemP(_)
            | StmtKind::Wait(_)
            | StmtKind::Join(_)
            | StmtKind::BarrierWait(_)
            | StmtKind::Send(_)
            | StmtKind::Recv(_) => {
                blocks_held(&holds, erasable, None);
            }
            StmtKind::If { .. } => {
                let t = walk_erasable(map, map.then_branch(id), holds.clone(), erasable);
                let e = walk_erasable(map, map.else_branch(id), holds.clone(), erasable);
                holds = t
                    .iter()
                    .zip(&e)
                    .map(|(&(tmin, tmax), &(emin, emax))| (tmin.min(emin), tmax.max(emax)))
                    .collect();
            }
            _ => {}
        }
    }
    holds
}

/// Builds the deadlock-analysis variant of a lowered program: every
/// `P`/`V` implementing an [erasable](erasable_mutexes) mutex's
/// `lock`/`unlock` — and the release/reacquire halves of its
/// `cond_wait`s — is replaced by `Skip`, *in place*, so core statement
/// numbering (and therefore anchor remapping) is unchanged. The
/// `cond_wait`'s blocking `P(c.cv)` stays: a never-signalled wait must
/// still participate in wait-for cycles.
pub(crate) fn erase_mutexes(
    lowered: &eo_lang::Desugared,
    map: &StmtMap<'_>,
    erasable: &[bool],
) -> Program {
    let mut dead = std::collections::HashSet::new();
    for id in map.ids() {
        match map.kind(id) {
            StmtKind::Lock(m) | StmtKind::Unlock(m) if erasable[m.index()] => {
                dead.extend(lowered.map.cores_of(id).iter().map(|c| c.index()));
            }
            StmtKind::CondWait(_, m) if erasable[m.index()] => {
                let cores = lowered.map.cores_of(id);
                dead.insert(cores[0].index()); // release V(m.mtx)
                dead.insert(cores[2].index()); // reacquire P(m.mtx)
            }
            _ => {}
        }
    }
    let mut out = lowered.program.clone();
    map_stmts_mut(&mut out, &mut |cid, s| {
        if dead.contains(&cid.index()) {
            s.kind = StmtKind::Skip;
        }
    });
    out
}

/// Walks `program`'s statements in [`StmtMap`] preorder, mutably.
pub(crate) fn map_stmts_mut(program: &mut Program, f: &mut impl FnMut(StmtId, &mut eo_lang::Stmt)) {
    fn walk(
        stmts: &mut [eo_lang::Stmt],
        next: &mut u32,
        f: &mut impl FnMut(StmtId, &mut eo_lang::Stmt),
    ) {
        for s in stmts {
            let id = StmtId(*next);
            *next += 1;
            f(id, s);
            if let StmtKind::If {
                then_branch,
                else_branch,
                ..
            } = &mut s.kind
            {
                walk(then_branch, next, f);
                walk(else_branch, next, f);
            }
        }
    }
    let mut next = 0u32;
    for def in &mut program.processes {
        walk(&mut def.body, &mut next, f);
    }
}

fn channel_supply(program: &Program, map: &StmtMap<'_>, out: &mut Vec<Diagnostic>) {
    let n_ch = program.channels.len();
    let mut sends = vec![0u32; n_ch];
    let mut recvs = vec![0u32; n_ch];
    let mut first_recv: Vec<Option<StmtId>> = vec![None; n_ch];
    for id in map.ids() {
        match map.kind(id) {
            StmtKind::Send(ch) => sends[ch.index()] += 1,
            StmtKind::Recv(ch) => {
                recvs[ch.index()] += 1;
                first_recv[ch.index()].get_or_insert(id);
            }
            _ => {}
        }
    }
    for (ci, def) in program.channels.iter().enumerate() {
        if recvs[ci] > 0 && sends[ci] == 0 {
            let id = first_recv[ci].expect("counted a recv");
            out.push(Diagnostic {
                code: codes::SURFACE_MISUSE,
                severity: Severity::Error,
                anchor: Anchor::Stmt(id),
                location: map.describe(id),
                message: format!(
                    "receiving on channel `{}` that nothing ever sends",
                    def.name
                ),
                notes: vec![format!(
                    "{} receive(s), 0 sends anywhere in the program",
                    recvs[ci]
                )],
            });
        }
        if sends[ci] > def.capacity + recvs[ci] {
            out.push(Diagnostic {
                code: codes::SURFACE_MISUSE,
                severity: Severity::Error,
                anchor: Anchor::Program,
                location: format!("channel `{}`", def.name),
                message: format!(
                    "channel `{}` is over-sent: {} send(s) but capacity {} + {} receive(s)",
                    def.name, sends[ci], def.capacity, recvs[ci]
                ),
                notes: vec![
                    "even if every receive runs, some send can never find a free slot".into(),
                ],
            });
        }
    }
}

fn unobserved_signals(program: &Program, map: &StmtMap<'_>, out: &mut Vec<Diagnostic>) {
    let n_cv = program.condvars.len();
    let mut waits = vec![0u32; n_cv];
    let mut first_signal: Vec<Option<StmtId>> = vec![None; n_cv];
    for id in map.ids() {
        match map.kind(id) {
            StmtKind::CondWait(c, _) => waits[c.index()] += 1,
            StmtKind::CondSignal(c) => {
                first_signal[c.index()].get_or_insert(id);
            }
            _ => {}
        }
    }
    for (ci, def) in program.condvars.iter().enumerate() {
        if let Some(id) = first_signal[ci] {
            if waits[ci] == 0 {
                out.push(Diagnostic {
                    code: codes::SURFACE_MISUSE,
                    severity: Severity::Info,
                    anchor: Anchor::Stmt(id),
                    location: map.describe(id),
                    message: format!(
                        "signalling condvar `{}` that nothing ever waits on",
                        def.name
                    ),
                    notes: vec!["the wake token is never consumed".into()],
                });
            }
        }
    }
}
