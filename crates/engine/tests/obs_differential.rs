//! Differential suite: recording must never change an answer.
//!
//! Every fixture is analyzed twice — once with the recorder disarmed and
//! once inside a `start()`/`finish()` window — and the results must be
//! bit-identical. In a build without `eo-obs/enabled` both legs are the
//! same code (arming is a no-op), so the suite passing there pins the
//! complementary claim: the disabled build behaves as if the probes were
//! never written.

use eo_engine::{AnalysisOutcome, ExactEngine, FeasibilityMode};
use eo_model::{fixtures, EventId, Trace};
use std::sync::Mutex;

/// The recorder is process-global; tests that arm it must not overlap.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn gallery() -> Vec<(&'static str, Trace)> {
    vec![
        ("independent_pair", fixtures::independent_pair().0),
        ("sem_handshake", fixtures::sem_handshake().0),
        ("fork_join_diamond", fixtures::fork_join_diamond().0),
        ("figure1", fixtures::figure1().0),
        ("post_wait_clear_chain", fixtures::post_wait_clear_chain().0),
        ("shared_counter_race", fixtures::shared_counter_race().0),
        ("crossing", fixtures::crossing().0),
    ]
}

/// The full pairwise answer set of one analysis, in comparable form.
fn answers(trace: &Trace, mode: FeasibilityMode) -> Vec<(usize, usize, bool, bool, bool)> {
    let exec = trace.to_execution().expect("fixtures are valid");
    let engine = ExactEngine::with_mode(&exec, mode);
    let summary = match engine.analyze() {
        AnalysisOutcome::Exact(s) => s,
        AnalysisOutcome::Degraded(d) => {
            panic!(
                "fixtures fit the default limits, got degraded: {}",
                d.reason()
            )
        }
    };
    let n = exec.n_events();
    let mut out = Vec::with_capacity(n * n);
    for a in 0..n {
        for b in 0..n {
            let (ea, eb) = (EventId::new(a), EventId::new(b));
            out.push((
                a,
                b,
                summary.mhb(ea, eb),
                summary.chb(ea, eb),
                summary.ccw(ea, eb),
            ));
        }
    }
    out
}

#[test]
fn recording_is_invisible_to_every_fixture_answer() {
    let _serial = RECORDER_LOCK.lock().unwrap();
    for mode in [
        FeasibilityMode::PreserveDependences,
        FeasibilityMode::IgnoreDependences,
    ] {
        for (label, trace) in gallery() {
            let plain = answers(&trace, mode);
            eo_obs::start();
            let recorded = answers(&trace, mode);
            let run = eo_obs::finish();
            assert_eq!(
                plain, recorded,
                "{label} ({mode:?}): recording changed an answer"
            );
            // With the feature on the run must actually have captured the
            // engine's spans; with it off, RunData is structurally empty.
            let total_events: usize = run.threads.iter().map(|t| t.events.len()).sum();
            if eo_obs::recording() {
                unreachable!("finish() must disarm recording");
            }
            let report = eo_obs::report::aggregate(&run);
            if total_events > 0 {
                assert!(
                    report.spans.iter().any(|s| s.name == "engine.analyze"),
                    "{label}: armed run missing the engine.analyze span"
                );
                let metrics = report.metrics_with_defaults();
                assert!(
                    metrics.contains_key("engine.states_interned"),
                    "{label}: registry key missing"
                );
            }
        }
    }
}

#[test]
fn parallel_analysis_is_also_unchanged_by_recording() {
    let _serial = RECORDER_LOCK.lock().unwrap();
    let (trace, _) = fixtures::figure1();
    let plain = {
        let exec = trace.to_execution().unwrap();
        match ExactEngine::new(&exec).analyze_with_threads(3) {
            AnalysisOutcome::Exact(s) => s.state_count(),
            AnalysisOutcome::Degraded(d) => panic!("degraded: {}", d.reason()),
        }
    };
    eo_obs::start();
    let recorded = {
        let exec = trace.to_execution().unwrap();
        match ExactEngine::new(&exec).analyze_with_threads(3) {
            AnalysisOutcome::Exact(s) => s.state_count(),
            AnalysisOutcome::Degraded(d) => panic!("degraded: {}", d.reason()),
        }
    };
    let run = eo_obs::finish();
    assert_eq!(plain, recorded);
    // Scoped pool workers flush their buffers before results return, so an
    // armed run sees the worker gauge.
    let report = eo_obs::report::aggregate(&run);
    if !run.threads.is_empty() {
        assert!(
            report.gauges.contains_key("pool.workers"),
            "armed parallel run missing pool.workers"
        );
    }
}
