//! Binary-level tests for `eo-server`: boot the real binary, speak the
//! frame protocol over real TCP, and pin the two contracts the network
//! layer exists for — byte-identity with `eo serve` on a replayed batch,
//! and graceful drain on SIGTERM (exit 0, every accepted request
//! answered).

#![cfg(unix)]

use eo_obs::json::Value;
use eo_serve::NetClient;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

#[path = "support/mod.rs"]
mod support;
use support::slow_trace_json;

/// A running `eo-server` process, killed on drop if the test didn't
/// already shut it down.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    /// Spawns the binary with `--port-file` discovery and waits for it to
    /// listen.
    fn start(name: &str, extra_args: &[&str]) -> ServerProc {
        let port_file = std::env::temp_dir().join(format!(
            "eo-server-test-{}-{}.port",
            std::process::id(),
            name
        ));
        let _ = std::fs::remove_file(&port_file);
        // Capture the server's stderr to a temp file instead of nulling
        // it: when an assertion below trips, the server's own drain
        // summary (or panic) is the difference between a diagnosis and a
        // mystery.
        let stderr_file = std::fs::File::create(std::env::temp_dir().join(format!(
            "eo-server-stderr-{}-{}.log",
            std::process::id(),
            name
        )))
        .expect("stderr capture file");
        let child = Command::new(env!("CARGO_BIN_EXE_eo-server"))
            .arg("--port-file")
            .arg(&port_file)
            .args(extra_args)
            .env("RUST_BACKTRACE", "1")
            .stdout(Stdio::null())
            .stderr(stderr_file)
            .spawn()
            .expect("spawning eo-server");
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    break addr;
                }
            }
            assert!(
                Instant::now() < deadline,
                "eo-server never wrote its port file"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&port_file);
        ServerProc { child, addr }
    }

    fn signal(&self, sig: &str) {
        let status = Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("running kill");
        assert!(status.success(), "kill {sig} failed");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn status_of(doc: &str) -> String {
    eo_obs::json::parse(doc)
        .ok()
        .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_owned))
        .unwrap_or_else(|| format!("unparseable: {doc}"))
}

#[test]
fn tcp_replay_of_the_committed_batch_matches_the_stdin_golden() {
    let server = ServerProc::start("replay", &[]);
    let trace = std::fs::read_to_string("testdata/figure1.trace.json").expect("trace fixture");
    let batch = std::fs::read_to_string("testdata/serve_batch_50.json").expect("batch fixture");
    let golden =
        std::fs::read_to_string("testdata/serve_batch_50.golden.ndjson").expect("golden fixture");

    let mut client = NetClient::connect(server.addr).expect("connect");
    let opened = client.open(&trace).expect("open response");
    assert_eq!(status_of(&opened), "ok", "open failed: {opened}");

    // Replay the committed batch, pipelined, exactly as CI replays it on
    // stdin — the responses must be the same bytes in the same order.
    let Value::Arr(requests) = eo_obs::json::parse(&batch).expect("batch parses") else {
        panic!("batch fixture is not a JSON array");
    };
    let n = requests.len();
    for request in &requests {
        client.send(&request.to_json()).expect("send request");
    }
    let responses: Vec<String> = (0..n).map(|_| client.recv().expect("response")).collect();

    for (i, (got, want)) in responses.iter().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "response {} over TCP diverges from the stdin golden",
            i + 1
        );
    }
    assert_eq!(responses.len(), golden.lines().count());

    // Shut down gracefully and insist on the exit-0 contract even for
    // the happy path.
    server.signal("-TERM");
    let mut server = server;
    let status = server.child.wait().expect("waiting for eo-server");
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
}

#[test]
fn sigterm_mid_batch_drains_gracefully_and_answers_every_accepted_request() {
    // A roomy drain deadline: the test asserts the *clean* path where all
    // in-flight work finishes.
    let server = ServerProc::start("drain", &["--drain-deadline-ms", "20000"]);
    let trace = std::fs::read_to_string("testdata/figure1.trace.json").expect("trace fixture");

    let mut client =
        NetClient::connect_with_timeout(server.addr, Duration::from_secs(30)).expect("connect");
    let opened = client.open(&trace).expect("open response");
    assert_eq!(status_of(&opened), "ok", "open failed: {opened}");

    // Pipeline a burst of queries, then a ping barrier: pings are
    // answered inline at read time in frame order, so the pong proves
    // every query before it was read and routed — i.e. *accepted*.
    let queries = 32usize;
    for i in 0..queries {
        let (a, b) = (i % 7, (i * 3 + 1) % 7);
        client
            .send(&format!(r#"{{"id":{i},"op":"mhb","a":{a},"b":{b}}}"#))
            .expect("send query");
    }
    client
        .send(r#"{"id":"sync","op":"ping"}"#)
        .expect("send barrier ping");
    let mut answered = 0usize;
    loop {
        let doc = client.recv().expect("response before barrier");
        let v = eo_obs::json::parse(&doc).expect("response parses");
        if v.get("op").and_then(Value::as_str) == Some("ping") {
            break;
        }
        answered += 1;
    }

    // Mid-batch: some of the 32 queries are typically still in flight
    // when the signal lands. The drain contract: exit 0, and every
    // accepted query still gets exactly one response before EOF.
    server.signal("-TERM");
    loop {
        match client.recv() {
            Ok(doc) => {
                let v = eo_obs::json::parse(&doc).expect("response parses");
                assert_ne!(v.get("op").and_then(Value::as_str), Some("ping"));
                answered += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => panic!("reading drain responses: {e}"),
        }
    }
    assert_eq!(
        answered, queries,
        "drain must answer every accepted request exactly once"
    );

    let mut server = server;
    let status = server.child.wait().expect("waiting for eo-server");
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
}

#[test]
fn a_second_signal_exits_immediately_with_130() {
    // Park a genuinely slow query in flight (the shared slow trace under
    // `--ignore-deps` runs for minutes in a debug build), with a drain
    // deadline and a query deadline both far beyond the test: the first
    // signal starts a drain that cannot finish, the second must hard-exit
    // with 130 instead of waiting it out.
    let server = ServerProc::start(
        "second-signal",
        &[
            "--ignore-deps",
            "--no-prefilter",
            "--no-cache",
            "--drain-deadline-ms",
            "600000",
            "--timeout",
            "600000",
        ],
    );
    let mut client = NetClient::connect(server.addr).expect("connect");
    let opened = client.open(&slow_trace_json()).expect("open response");
    assert_eq!(status_of(&opened), "ok", "open failed: {opened}");
    // `summary` forces full schedule enumeration — many seconds of work
    // on this trace even in a release build.
    client
        .send(r#"{"id":1,"op":"summary"}"#)
        .expect("send slow query");
    // The ping barrier proves the slow query was read and routed before
    // the signals land.
    client
        .send(r#"{"id":"sync","op":"ping"}"#)
        .expect("send barrier ping");
    let pong = client.recv().expect("pong");
    assert_eq!(status_of(&pong), "ok");

    server.signal("-TERM");
    std::thread::sleep(Duration::from_millis(300));
    server.signal("-TERM");
    let mut server = server;
    let status = server.child.wait().expect("waiting for eo-server");
    assert_eq!(
        status.code(),
        Some(130),
        "an impatient second signal must hard-exit with 130"
    );
}
