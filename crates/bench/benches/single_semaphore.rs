//! E8 — the single-counting-semaphore corollary: ordering queries on the
//! sequencing reduction vs the subset-DP oracle.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eo_reductions::single_semaphore::SingleSemaphoreReduction;
use eo_reductions::SequencingInstance;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_single_semaphore");
    for jobs in [3usize, 4, 5] {
        let inst = SequencingInstance::random(jobs, 2, 0.3, 2, 5);
        let red = SingleSemaphoreReduction::build(&inst);
        g.bench_with_input(BenchmarkId::new("engine_chb", jobs), &red, |b, red| {
            b.iter(|| black_box(red.witness_b_before_a().is_some()))
        });
        g.bench_with_input(BenchmarkId::new("subset_dp", jobs), &inst, |b, inst| {
            b.iter(|| black_box(inst.feasible()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::fast_criterion();
    targets = bench
}
criterion_main!(benches);
