//! The user-facing engine facade.

use crate::api::{Answer, EngineOptions, Query, Response};
use crate::budget::Budget;
use crate::ctx::{FeasibilityMode, SearchCtx};
use crate::degraded::DegradedSummary;
use crate::enumerate::{
    enumerate_classes_budgeted_with, enumerate_classes_with, EnumerationResult,
};
use crate::equiv::EquivStrategy;
use crate::queries::QuerySession;
use crate::statespace::{self, explore_statespace};
use crate::summary::OrderingSummary;
use eo_model::{EventId, ProgramExecution};

/// Resource bounds for the exact analyses. The problems are NP-/co-NP-hard
/// (that is the paper's theorem), so honest engines carry explicit budgets
/// instead of silently running forever.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum distinct machine states the cut-lattice pass may visit.
    pub max_states: usize,
    /// Maximum complete schedules the class enumeration may record.
    pub max_schedules: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1 << 22,
            max_schedules: 1 << 20,
        }
    }
}

/// Why an exact analysis could not finish within its budget.
///
/// Non-exhaustive: supervisors grow failure modes; downstream matches
/// need a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The cut lattice outgrew [`Limits::max_states`] (or the
    /// [`Budget`] state cap).
    StateSpaceExceeded {
        /// The configured bound.
        limit: usize,
    },
    /// The class enumeration outgrew [`Limits::max_schedules`] (or the
    /// [`Budget`] schedule cap).
    ScheduleBudgetExceeded {
        /// The configured bound.
        limit: usize,
    },
    /// The wall-clock deadline of the [`Budget`] passed.
    DeadlineExceeded {
        /// The configured deadline in milliseconds.
        ms: u64,
    },
    /// The analysis state storage outgrew the
    /// [`Budget`] heap-bytes cap.
    MemoryExceeded {
        /// The configured bound in bytes.
        limit: usize,
    },
    /// The analysis was cancelled through a
    /// [`CancelHandle`](crate::CancelHandle).
    Cancelled,
    /// A pool worker thread panicked; the parallel exploration was
    /// abandoned (after every thread was joined — see
    /// [`crate::parallel`]).
    WorkerFailed,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StateSpaceExceeded { limit } => {
                write!(f, "state space exceeded the {limit}-state budget")
            }
            EngineError::ScheduleBudgetExceeded { limit } => {
                write!(
                    f,
                    "schedule enumeration exceeded the {limit}-schedule budget"
                )
            }
            EngineError::DeadlineExceeded { ms } => {
                write!(f, "analysis exceeded its {ms} ms wall-clock deadline")
            }
            EngineError::MemoryExceeded { limit } => {
                write!(f, "analysis storage exceeded the {limit}-byte budget")
            }
            EngineError::Cancelled => write!(f, "analysis cancelled"),
            EngineError::WorkerFailed => {
                write!(
                    f,
                    "a worker thread panicked; the parallel pass was abandoned"
                )
            }
        }
    }
}

impl EngineError {
    /// A short machine-readable label for the exhausted resource, used as
    /// the `degradation.cause` metric and in CLI output (`"none"` is
    /// reserved for runs that did not degrade).
    pub fn cause_label(&self) -> &'static str {
        match self {
            EngineError::StateSpaceExceeded { .. } => "state-cap",
            EngineError::ScheduleBudgetExceeded { .. } => "schedule-cap",
            EngineError::DeadlineExceeded { .. } => "deadline",
            EngineError::MemoryExceeded { .. } => "memory",
            EngineError::Cancelled => "cancelled",
            EngineError::WorkerFailed => "worker-failed",
        }
    }
}

impl std::error::Error for EngineError {}

/// Exact computation of the six Table-1 ordering relations for one
/// program execution.
///
/// ```
/// use eo_engine::ExactEngine;
/// use eo_model::fixtures;
///
/// let (trace, ids) = fixtures::sem_handshake();
/// let exec = trace.to_execution().unwrap();
/// let engine = ExactEngine::new(&exec);
/// assert!(engine.mhb(ids.v, ids.p));          // V must precede P
/// assert!(!engine.chb(ids.p, ids.v));         // P can never precede V
/// assert!(engine.ccw(ids.after_v, ids.after_p)); // the tails can overlap
/// ```
pub struct ExactEngine<'a> {
    ctx: SearchCtx<'a>,
    opts: EngineOptions,
}

/// What [`ExactEngine::analyze`] produced: the full exact summary, or the
/// supervisor's sound partial answer when a budget ran out mid-flight.
#[derive(Clone, Debug)]
pub enum AnalysisOutcome {
    /// Every budget held; the summary is the complete exact answer.
    Exact(OrderingSummary),
    /// A budget was exhausted (or a worker failed); the facts proved by
    /// the partial pass, sandwiched between the sound polynomial bounds.
    Degraded(DegradedSummary),
}

impl<'a> ExactEngine<'a> {
    /// Engine over the paper's F(P) (dependence-preserving feasibility).
    pub fn new(exec: &'a ProgramExecution) -> Self {
        Self::with_options(exec, EngineOptions::default())
    }

    /// Engine configured by one [`EngineOptions`] bag — the primary
    /// constructor; every other builder delegates here.
    pub fn with_options(exec: &'a ProgramExecution, opts: EngineOptions) -> Self {
        ExactEngine {
            ctx: SearchCtx::new(exec, opts.mode),
            opts,
        }
    }

    /// Engine with an explicit feasibility mode (Section 5.3's
    /// dependence-ignoring variant is [`FeasibilityMode::IgnoreDependences`]).
    pub fn with_mode(exec: &'a ProgramExecution, mode: FeasibilityMode) -> Self {
        Self::with_options(exec, EngineOptions::with_mode(mode))
    }

    /// Replaces the resource budget.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.opts.limits = limits;
        self
    }

    /// Attaches a supervisor [`Budget`] (deadline, caps, cancellation).
    /// Caps the budget leaves unset fall back to the engine's [`Limits`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.opts.budget = Some(budget);
        self
    }

    /// Selects the trace-equivalence strategy the F(P) enumeration
    /// quotients by (see [`EquivStrategy`]). All strategies produce
    /// bit-identical summaries; the coarser ones visit fewer schedules.
    pub fn with_equiv(mut self, equiv: EquivStrategy) -> Self {
        self.opts.equiv = equiv;
        self
    }

    /// The options this engine was built with.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The budget every pass runs under: the attached one (with `Limits`
    /// filling unset caps) or a cap-only budget from `Limits`.
    fn effective_budget(&self) -> Budget {
        self.opts.effective_budget()
    }

    /// The underlying search context (for direct use of the lower-level
    /// APIs).
    pub fn ctx(&self) -> &SearchCtx<'a> {
        &self.ctx
    }

    /// Computes the full six-relation summary, or reports the exceeded
    /// budget (the first exhausted resource — state/schedule caps,
    /// deadline, memory, or cancellation when a [`Budget`] is attached).
    pub fn try_summary(&self) -> Result<OrderingSummary, EngineError> {
        eo_obs::span!("engine.try_summary");
        if self.opts.budget.is_none() {
            // Cap-only fast path: no checkpoint calls in the hot loops.
            let space = explore_statespace(&self.ctx, self.opts.limits.max_states)?;
            let classes =
                enumerate_classes_with(&self.ctx, self.opts.limits.max_schedules, self.opts.equiv);
            if classes.truncated {
                return Err(EngineError::ScheduleBudgetExceeded {
                    limit: self.opts.limits.max_schedules,
                });
            }
            let summary = OrderingSummary::from_parts(&space, &classes);
            debug_assert_eq!(summary.check_identities(), Ok(()));
            return Ok(summary);
        }
        let budget = self.effective_budget();
        let space = statespace::explore_statespace_budgeted(&self.ctx, &budget)?;
        let (classes, stopped) =
            enumerate_classes_budgeted_with(&self.ctx, &budget, self.opts.equiv);
        if let Some(e) = stopped {
            return Err(e);
        }
        let summary = OrderingSummary::from_parts(&space, &classes);
        debug_assert_eq!(summary.check_identities(), Ok(()));
        Ok(summary)
    }

    /// The supervised analysis: runs the exact passes under the attached
    /// [`Budget`] and, instead of failing when a resource runs out,
    /// returns a [`DegradedSummary`] — every pairwise fact the partial
    /// pass *proved*, sandwiched between the sound polynomial bounds of
    /// `eo_approx` (see [`crate::degraded`]).
    ///
    /// Degraded answers never contradict the exact oracle; the
    /// differential suite asserts this on every fixture.
    pub fn analyze(&self) -> AnalysisOutcome {
        self.analyze_with_threads(1)
    }

    /// [`analyze`](Self::analyze) with the cut-lattice pass fanned out to
    /// `threads` pool workers (`0` = available parallelism, `1` =
    /// sequential). A worker panic degrades (reason
    /// [`EngineError::WorkerFailed`]) instead of aborting; the pool is
    /// always drained and joined.
    pub fn analyze_with_threads(&self, threads: usize) -> AnalysisOutcome {
        eo_obs::span!("engine.analyze");
        let budget = self.effective_budget();
        let (mut graph, stopped) = if threads == 1 {
            let b = statespace::build_graph_budgeted(&self.ctx, &budget);
            (b.graph, b.stopped)
        } else {
            crate::parallel::explore_parallel_partial(&self.ctx, &budget, threads)
        };
        let space_complete = stopped.is_none();
        let space = if space_complete {
            statespace::finalize(&self.ctx, &mut graph)
        } else {
            statespace::finalize_partial(&self.ctx, &mut graph)
        };
        // Enumeration still runs after a truncated space pass: its orders
        // are complete feasible executions in their own right, and every
        // one sharpens the degraded facts. The budget is already
        // exhausted in the deadline/cancel cases, so the first checkpoint
        // stops it immediately; cap-based cases keep their own caps.
        let (classes, enum_stopped) =
            enumerate_classes_budgeted_with(&self.ctx, &budget, self.opts.equiv);
        // Headroom at completion: how much of each budgeted resource was
        // left over (-1 = that resource was uncapped). Gated so the
        // bookkeeping costs nothing outside a recording run.
        if eo_obs::recording() {
            eo_obs::gauge!(
                "budget.headroom_ms",
                budget.headroom_ms().map_or(-1, |ms| ms as i64)
            );
            eo_obs::gauge!(
                "budget.headroom_states",
                budget
                    .max_states()
                    .map_or(-1, |cap| cap.saturating_sub(space.states) as i64)
            );
            eo_obs::gauge!(
                "budget.headroom_bytes",
                budget
                    .max_heap_bytes()
                    .map_or(-1, |cap| cap.saturating_sub(space.approx_heap_bytes) as i64)
            );
        }
        match stopped.or(enum_stopped) {
            None => {
                let summary = OrderingSummary::from_parts(&space, &classes);
                debug_assert_eq!(summary.check_identities(), Ok(()));
                AnalysisOutcome::Exact(summary)
            }
            Some(reason) => AnalysisOutcome::Degraded(DegradedSummary::build(
                &self.ctx,
                &space,
                space_complete,
                &classes.orders,
                reason,
            )),
        }
    }

    /// Computes the full summary.
    ///
    /// # Panics
    /// Panics if the budget is exceeded; use
    /// [`try_summary`](Self::try_summary) when the input may be
    /// adversarial.
    pub fn summary(&self) -> OrderingSummary {
        match self.try_summary() {
            Ok(s) => s,
            Err(e) => panic!("exact summary did not fit the budget: {e}"),
        }
    }

    /// Enumerates F(P) (the distinct induced partial orders).
    pub fn feasible_set(&self) -> Result<EnumerationResult, EngineError> {
        if self.opts.budget.is_none() {
            let r =
                enumerate_classes_with(&self.ctx, self.opts.limits.max_schedules, self.opts.equiv);
            if r.truncated {
                return Err(EngineError::ScheduleBudgetExceeded {
                    limit: self.opts.limits.max_schedules,
                });
            }
            return Ok(r);
        }
        let (r, stopped) =
            enumerate_classes_budgeted_with(&self.ctx, &self.effective_budget(), self.opts.equiv);
        match stopped {
            Some(e) => Err(e),
            None => Ok(r),
        }
    }

    /// Answers one [`Query`] under the engine's effective budget: the
    /// attached [`Budget`] (with `Limits` filling unset caps) or a
    /// cap-only budget from `Limits`. This is the single entry point the
    /// per-relation methods below and the serving layer route through.
    ///
    /// Point queries run an early-exit witness search in a fresh
    /// [`QuerySession`]; [`Query::Summary`] runs the full
    /// [`try_summary`](Self::try_summary) passes. Errors at the first
    /// exhausted budget resource.
    pub fn query(&self, query: Query) -> Result<Response, EngineError> {
        self.query_with_budget(query, self.effective_budget())
    }

    /// [`query`](Self::query) against an explicit budget (the infallible
    /// legacy wrappers pass [`Budget::unlimited`], preserving their
    /// never-fails contract even on a budgeted engine).
    fn query_with_budget(&self, query: Query, budget: Budget) -> Result<Response, EngineError> {
        let mut session = QuerySession::with_budget(&self.ctx, budget);
        let answer = match query {
            Query::Mhb { a, b } => Answer::Decided(session.try_must_happen_before(a, b)?),
            Query::Chb { a, b } => Answer::Decided(session.try_could_happen_before(a, b)?),
            Query::Ccw { a, b } => Answer::Decided(session.try_could_be_concurrent(a, b)?),
            Query::WitnessBefore { first, second } => {
                Answer::Witness(session.try_witness_before(first, second)?)
            }
            Query::WitnessOverlap { a, b } => Answer::Witness(session.try_witness_overlap(a, b)?),
            Query::Summary => Answer::Summary(Box::new(self.try_summary()?)),
        };
        Ok(Response { query, answer })
    }

    /// Unwraps a query that cannot fail (unlimited budget, non-summary).
    fn query_infallible(&self, query: Query) -> Response {
        self.query_with_budget(query, Budget::unlimited())
            .unwrap_or_else(|e| panic!("unbudgeted {} query failed: {e}", query.op_name()))
    }

    /// Decides `a MHB b` by early-exit witness search (no full summary).
    #[doc(alias = "query")]
    pub fn mhb(&self, a: EventId, b: EventId) -> bool {
        self.query_infallible(Query::Mhb { a, b })
            .answer
            .as_bool()
            .expect("mhb answers are booleans")
    }

    /// Decides `a CHB b` by early-exit witness search.
    #[doc(alias = "query")]
    pub fn chb(&self, a: EventId, b: EventId) -> bool {
        self.query_infallible(Query::Chb { a, b })
            .answer
            .as_bool()
            .expect("chb answers are booleans")
    }

    /// Decides operational `a CCW b` by early-exit witness search.
    #[doc(alias = "query")]
    pub fn ccw(&self, a: EventId, b: EventId) -> bool {
        self.query_infallible(Query::Ccw { a, b })
            .answer
            .as_bool()
            .expect("ccw answers are booleans")
    }

    /// A feasible schedule running `first` strictly before `second`, if
    /// one exists (the NP witness of Theorem 2).
    #[doc(alias = "query")]
    pub fn witness_before(&self, first: EventId, second: EventId) -> Option<Vec<EventId>> {
        match self
            .query_infallible(Query::WitnessBefore { first, second })
            .answer
        {
            Answer::Witness(w) => w,
            _ => unreachable!("witness queries answer with witnesses"),
        }
    }

    /// A feasible schedule prefix reaching a state where both events are
    /// ready, if one exists.
    #[doc(alias = "query")]
    pub fn witness_overlap(&self, a: EventId, b: EventId) -> Option<Vec<EventId>> {
        match self.query_infallible(Query::WitnessOverlap { a, b }).answer {
            Answer::Witness(w) => w,
            _ => unreachable!("witness queries answer with witnesses"),
        }
    }

    /// Budgeted twin of [`mhb`](Self::mhb): decides under the engine's
    /// effective budget, erroring at the first exhausted resource.
    #[doc(alias = "query")]
    pub fn try_mhb(&self, a: EventId, b: EventId) -> Result<bool, EngineError> {
        Ok(self
            .query(Query::Mhb { a, b })?
            .answer
            .as_bool()
            .expect("mhb answers are booleans"))
    }

    /// Budgeted twin of [`chb`](Self::chb).
    #[doc(alias = "query")]
    pub fn try_chb(&self, a: EventId, b: EventId) -> Result<bool, EngineError> {
        Ok(self
            .query(Query::Chb { a, b })?
            .answer
            .as_bool()
            .expect("chb answers are booleans"))
    }

    /// Budgeted twin of [`ccw`](Self::ccw).
    #[doc(alias = "query")]
    pub fn try_ccw(&self, a: EventId, b: EventId) -> Result<bool, EngineError> {
        Ok(self
            .query(Query::Ccw { a, b })?
            .answer
            .as_bool()
            .expect("ccw answers are booleans"))
    }

    /// Budgeted twin of [`witness_before`](Self::witness_before).
    #[doc(alias = "query")]
    pub fn try_witness_before(
        &self,
        first: EventId,
        second: EventId,
    ) -> Result<Option<Vec<EventId>>, EngineError> {
        match self.query(Query::WitnessBefore { first, second })?.answer {
            Answer::Witness(w) => Ok(w),
            _ => unreachable!("witness queries answer with witnesses"),
        }
    }

    /// Budgeted twin of [`witness_overlap`](Self::witness_overlap).
    #[doc(alias = "query")]
    pub fn try_witness_overlap(
        &self,
        a: EventId,
        b: EventId,
    ) -> Result<Option<Vec<EventId>>, EngineError> {
        match self.query(Query::WitnessOverlap { a, b })?.answer {
            Answer::Witness(w) => Ok(w),
            _ => unreachable!("witness queries answer with witnesses"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::fixtures;

    #[test]
    fn facade_summary_matches_point_queries() {
        let (trace, _ids) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let engine = ExactEngine::new(&exec);
        let summary = engine.summary();
        for a in 0..exec.n_events() {
            for b in 0..exec.n_events() {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                assert_eq!(engine.mhb(ea, eb), summary.mhb(ea, eb), "mhb({a},{b})");
                assert_eq!(engine.chb(ea, eb), summary.chb(ea, eb), "chb({a},{b})");
                assert_eq!(engine.ccw(ea, eb), summary.ccw(ea, eb), "ccw({a},{b})");
            }
        }
    }

    #[test]
    fn budget_errors_are_reported() {
        let (trace, _ids) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let tiny = ExactEngine::new(&exec).with_limits(Limits {
            max_states: 2,
            max_schedules: 1 << 20,
        });
        assert!(matches!(
            tiny.try_summary(),
            Err(EngineError::StateSpaceExceeded { limit: 2 })
        ));

        // The clear chain has many schedule classes; a budget of 1 truncates.
        let (trace2, _ids) = fixtures::post_wait_clear_chain();
        let exec2 = trace2.to_execution().unwrap();
        let tiny2 = ExactEngine::new(&exec2).with_limits(Limits {
            max_states: 1 << 20,
            max_schedules: 1,
        });
        assert!(matches!(
            tiny2.try_summary(),
            Err(EngineError::ScheduleBudgetExceeded { limit: 1 })
        ));
    }

    #[test]
    fn query_path_matches_legacy_wrappers() {
        let (trace, _ids) = fixtures::figure1();
        let exec = trace.to_execution().unwrap();
        let engine = ExactEngine::new(&exec);
        for a in 0..exec.n_events() {
            for b in 0..exec.n_events() {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                let q = Query::Mhb { a: ea, b: eb };
                let r = engine.query(q).unwrap();
                assert_eq!(r.query, q, "responses echo their query");
                assert_eq!(r.answer.as_bool(), Some(engine.mhb(ea, eb)));
                assert_eq!(engine.try_chb(ea, eb).unwrap(), engine.chb(ea, eb));
                assert_eq!(engine.try_ccw(ea, eb).unwrap(), engine.ccw(ea, eb));
                assert_eq!(
                    engine.try_witness_before(ea, eb).unwrap(),
                    engine.witness_before(ea, eb)
                );
                assert_eq!(
                    engine.try_witness_overlap(ea, eb).unwrap(),
                    engine.witness_overlap(ea, eb)
                );
            }
        }
        let s = engine.query(Query::Summary).unwrap();
        let direct = engine.summary();
        let via = s.answer.as_summary().expect("summary answer");
        assert_eq!(via.class_count(), direct.class_count());
        assert_eq!(via.state_count(), direct.state_count());
    }

    #[test]
    fn budgeted_twins_honor_the_attached_budget() {
        let (trace, _ids) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let engine = ExactEngine::new(&exec).with_budget(Budget::unlimited().with_max_states(1));
        let (a, b) = (EventId::new(0), EventId::new(1));
        assert!(matches!(
            engine.try_mhb(a, b),
            Err(EngineError::StateSpaceExceeded { limit: 1 })
        ));
        // The infallible wrappers keep their never-fails contract even on
        // a budgeted engine: they run unbudgeted, as they always have.
        let _ = engine.mhb(a, b);
        let _ = engine.witness_overlap(a, b);
    }

    #[test]
    fn with_options_equals_builder_chain() {
        let (trace, inc0, inc1) = fixtures::shared_counter_race();
        let exec = trace.to_execution().unwrap();
        let opts = EngineOptions {
            mode: FeasibilityMode::IgnoreDependences,
            limits: Limits::default(),
            budget: None,
            equiv: EquivStrategy::default(),
        };
        let via_options = ExactEngine::with_options(&exec, opts);
        let via_builders = ExactEngine::with_mode(&exec, FeasibilityMode::IgnoreDependences);
        assert_eq!(via_options.mhb(inc0, inc1), via_builders.mhb(inc0, inc1));
        assert_eq!(via_options.ccw(inc0, inc1), via_builders.ccw(inc0, inc1));
        assert_eq!(
            via_options.options().mode,
            FeasibilityMode::IgnoreDependences
        );
    }

    #[test]
    fn ignore_mode_changes_answers() {
        let (trace, inc0, inc1) = fixtures::shared_counter_race();
        let exec = trace.to_execution().unwrap();
        let strict = ExactEngine::new(&exec);
        assert!(strict.mhb(inc0, inc1));
        assert!(!strict.ccw(inc0, inc1));
        let relaxed = ExactEngine::with_mode(&exec, FeasibilityMode::IgnoreDependences);
        assert!(!relaxed.mhb(inc0, inc1));
        assert!(relaxed.ccw(inc0, inc1));
    }
}
