//! Typed, dense identifiers for the model's objects.
//!
//! Every id is a newtype over `u32` whose value is a dense index into the
//! owning [`crate::Trace`]'s declaration table, so ids double as array
//! indices throughout the workspace (the relation matrices in
//! `eo-relations` are indexed by `EventId::index()` directly).

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs the id from a dense index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn new(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflows u32"))
            }

            /// The dense index this id stands for.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// Identifies an [`crate::Event`]; the value is the event's position in
    /// the observed total order of its [`crate::Trace`].
    EventId,
    "e"
);

dense_id!(
    /// Identifies a process (a sequential thread of control).
    ProcessId,
    "proc"
);

dense_id!(
    /// Identifies a counting semaphore.
    SemId,
    "sem"
);

dense_id!(
    /// Identifies an event variable (Post/Wait/Clear style).
    EvVarId,
    "ev"
);

dense_id!(
    /// Identifies a shared variable.
    VarId,
    "var"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let e = EventId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e, EventId(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(EventId::new(3).to_string(), "e3");
        assert_eq!(ProcessId::new(0).to_string(), "proc0");
        assert_eq!(SemId::new(1).to_string(), "sem1");
        assert_eq!(EvVarId::new(2).to_string(), "ev2");
        assert_eq!(VarId::new(4).to_string(), "var4");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(EventId::new(1) < EventId::new(2));
    }

    #[test]
    fn json_form_is_transparent() {
        // Ids serialize as bare numbers in the trace format (see
        // `crate::json` and `Trace::to_json`).
        use crate::json::Value;
        assert_eq!(Value::Int(i64::from(EventId::new(5).0)).compact(), "5");
        assert_eq!(Value::Int(5).as_u32().unwrap(), EventId::new(5).0);
    }
}
