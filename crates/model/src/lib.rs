//! The formal model of a shared-memory parallel program execution
//! (Netzer & Miller 1990, Section 2).
//!
//! A *program execution* is a triple **P = ⟨E, →T, →D⟩**:
//!
//! * **E** — a finite set of [`Event`]s, each an execution instance of a
//!   group of consecutively executed statements of one process. An event is
//!   either a *synchronization event* (an instance of a synchronization
//!   operation: `P`/`V` on a counting semaphore, `Post`/`Wait`/`Clear` on
//!   an event variable, or `fork`/`join`) or a *computation event*;
//! * **→T** — the *temporal ordering* relation: `a →T b` means `a`
//!   completes before `b` begins; `a ∥T b` means they execute concurrently;
//! * **→D** — the *shared-data dependence* relation: `a →D b` means `a`
//!   accesses a shared variable that `b` later accesses, at least one of
//!   the accesses being a write. (The paper folds flow-, anti- and
//!   output-dependence into this single relation.)
//!
//! This crate provides the concrete data types:
//!
//! * [`Trace`] — one *observed* execution: the events in the total order a
//!   sequentially consistent machine interleaved them, plus declarations of
//!   the processes, semaphores, event variables and shared variables
//!   involved. [`Trace::validate`] replays the observed order through the
//!   synchronization [`machine`] and rejects logs that no sequentially
//!   consistent execution could have produced.
//! * [`ProgramExecution`] — the triple ⟨E, →T, →D⟩ derived from a valid
//!   trace: →D is computed from the per-variable conflicting-access order,
//!   and →T is the partial order *induced* by the observed schedule (see
//!   [`induce`] for exactly which orderings a schedule forces).
//! * [`machine::Machine`] — the sequentially consistent synchronization
//!   state machine (semaphore counters, event-variable flags, fork/join
//!   bookkeeping). Both trace validation and the exact feasibility engine
//!   in `eo-engine` drive this machine; it is the single source of truth
//!   for what "a valid schedule" means.
//! * [`fixtures`] — small hand-built executions (including the paper's
//!   Figure 1 fragment) shared by test suites across the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depend;
pub mod event;
pub mod execution;
pub mod fixtures;
pub mod ids;
pub mod induce;
pub mod json;
pub mod machine;
pub mod render;
pub mod trace;

pub use depend::Dependence;
pub use event::{Event, Op};
pub use execution::ProgramExecution;
pub use ids::{EvVarId, EventId, ProcessId, SemId, VarId};
pub use machine::{BlockReason, MachState, Machine, ReplayError};
pub use trace::{Trace, TraceBuilder, TraceError};
