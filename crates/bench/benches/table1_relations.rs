//! E2 — Table 1: full six-relation summaries over the fixture gallery.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use eo_engine::ExactEngine;
use eo_model::fixtures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let gallery = vec![
        ("independent_pair", fixtures::independent_pair().0),
        ("sem_handshake", fixtures::sem_handshake().0),
        ("fork_join_diamond", fixtures::fork_join_diamond().0),
        ("crossing", fixtures::crossing().0),
        ("figure1", fixtures::figure1().0),
        ("post_wait_clear", fixtures::post_wait_clear_chain().0),
    ];
    let mut g = c.benchmark_group("e2_table1_summary");
    for (name, trace) in gallery {
        let exec = trace.to_execution().unwrap();
        g.bench_function(name, |b| {
            b.iter(|| ExactEngine::new(black_box(&exec)).summary())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::fast_criterion();
    targets = bench
}
criterion_main!(benches);
