//! An n×n bit-matrix binary relation.
//!
//! [`Relation`] represents a binary relation R ⊆ {0..n}² as one [`BitSet`]
//! row per source index: `rel.contains(a, b)` means `a R b`. In the
//! event-ordering library this is the concrete form of the paper's →T
//! (temporal ordering) and →D (shared-data dependence) relations, of every
//! induced partial order the feasibility engine produces, and of every
//! baseline's output — so the six ordering relations of Table 1 all come
//! out of relation algebra on this type.

use crate::bitset::BitSet;
use crate::closure;

/// A binary relation over the index set `0..len`, stored as a dense bit
/// matrix (row-major; row `a` holds the successors of `a`).
///
/// `Relation` implements `Hash`/`Eq`, which the feasibility engine uses to
/// deduplicate induced partial orders: two feasible program executions are
/// the same element of F(P) exactly when their induced →T′ matrices are
/// equal.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    len: usize,
    rows: Vec<BitSet>,
}

impl Relation {
    /// Creates the empty relation over `0..len`.
    pub fn new(len: usize) -> Self {
        Relation {
            len,
            rows: (0..len).map(|_| BitSet::new(len)).collect(),
        }
    }

    /// Creates the identity relation { (i,i) } over `0..len`.
    pub fn identity(len: usize) -> Self {
        let mut r = Relation::new(len);
        for i in 0..len {
            r.insert(i, i);
        }
        r
    }

    /// Creates a relation from an edge list.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= len`.
    pub fn from_edges(len: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut r = Relation::new(len);
        for (a, b) in edges {
            r.insert(a, b);
        }
        r
    }

    /// The number of indices the relation ranges over.
    ///
    /// (`is_empty` would be ambiguous here — empty *domain* vs. empty
    /// *pair set* — so the sibling predicates are the explicit
    /// [`Relation::is_empty_domain`] and `pair_count() == 0`.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the index set is empty (a relation over zero indices).
    #[inline]
    pub fn is_empty_domain(&self) -> bool {
        self.len == 0
    }

    /// Adds the pair `(a, b)`, returning `true` if it was newly added.
    ///
    /// # Panics
    /// Panics if `a >= len` or `b >= len`.
    #[inline]
    pub fn insert(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.len,
            "Relation source {a} out of range {}",
            self.len
        );
        self.rows[a].insert(b)
    }

    /// Removes the pair `(a, b)`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, a: usize, b: usize) -> bool {
        assert!(
            a < self.len,
            "Relation source {a} out of range {}",
            self.len
        );
        self.rows[a].remove(b)
    }

    /// Tests whether `a R b`.
    #[inline]
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.len && self.rows[a].contains(b)
    }

    /// True iff `a` and `b` are unordered by this relation in both
    /// directions — the "concurrent" test when the relation is a temporal
    /// partial order (the paper's `a ∥T b`).
    #[inline]
    pub fn unordered(&self, a: usize, b: usize) -> bool {
        !self.contains(a, b) && !self.contains(b, a)
    }

    /// The successor row of `a` (all `b` with `a R b`).
    #[inline]
    pub fn row(&self, a: usize) -> &BitSet {
        &self.rows[a]
    }

    /// Mutable successor row of `a` (for word-parallel row updates).
    #[inline]
    pub fn row_mut(&mut self, a: usize) -> &mut BitSet {
        &mut self.rows[a]
    }

    /// Number of pairs in the relation.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(BitSet::count).sum()
    }

    /// A 128-bit fingerprint of the full bit matrix.
    ///
    /// Equal relations always fingerprint equally; the converse holds
    /// modulo a 2⁻¹²⁸-scale collision chance, which is what lets the
    /// enumeration engine deduplicate induced orders by fingerprint
    /// instead of retaining every closed matrix (the `debug_assertions`
    /// builds keep the matrices too and assert the two dedup decisions
    /// agree). Two independent lanes: an XOR lane over position-salted
    /// word mixes (order-free, so zero words cost nothing) and a
    /// sequentially-chained lane, so single-word and transposition-style
    /// differences perturb both halves.
    pub fn fingerprint128(&self) -> u128 {
        let mut h1: u64 = 0x9E37_79B9_7F4A_7C15 ^ (self.len as u64);
        let mut h2: u64 = 0xC2B2_AE3D_27D4_EB4F ^ ((self.len as u64) << 32);
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &w) in row.words().iter().enumerate() {
                if w != 0 {
                    let m = mix64(w ^ ((i as u64) << 32) ^ ((j as u64) << 8));
                    h1 ^= m;
                    h2 = mix64(h2 ^ m);
                }
            }
        }
        ((h1 as u128) << 64) | h2 as u128
    }

    /// Iterates over all pairs `(a, b)` in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(a, row)| row.iter().map(move |b| (a, b)))
    }

    /// In-place union: `self ← self ∪ other`. Returns `true` if `self`
    /// changed.
    ///
    /// # Panics
    /// Panics if domain sizes differ.
    pub fn union_with(&mut self, other: &Relation) -> bool {
        assert_eq!(self.len, other.len, "Relation domain mismatch");
        let mut changed = false;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            changed |= a.union_with(b);
        }
        changed
    }

    /// In-place intersection: `self ← self ∩ other`. Returns `true` if
    /// `self` changed.
    ///
    /// # Panics
    /// Panics if domain sizes differ.
    pub fn intersect_with(&mut self, other: &Relation) -> bool {
        assert_eq!(self.len, other.len, "Relation domain mismatch");
        let mut changed = false;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            changed |= a.intersect_with(b);
        }
        changed
    }

    /// The transpose (inverse) relation { (b,a) : a R b }.
    pub fn transpose(&self) -> Relation {
        let mut t = Relation::new(self.len);
        for (a, b) in self.pairs() {
            t.insert(b, a);
        }
        t
    }

    /// Relational composition `self ; other` = { (a,c) : ∃b. a R b ∧ b S c }.
    ///
    /// Implemented row-wise and word-parallel: row `a` of the result is the
    /// union of `other`'s rows selected by row `a` of `self`.
    ///
    /// # Panics
    /// Panics if domain sizes differ.
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.len, other.len, "Relation domain mismatch");
        let mut out = Relation::new(self.len);
        for a in 0..self.len {
            // Split borrow: build the row separately, then store it.
            let mut acc = BitSet::new(self.len);
            for b in self.rows[a].iter() {
                acc.union_with(&other.rows[b]);
            }
            out.rows[a] = acc;
        }
        out
    }

    /// Returns the transitive closure of this relation (Warshall's
    /// algorithm, word-parallel rows; O(n³/64)).
    pub fn transitive_closure(&self) -> Relation {
        let mut c = self.clone();
        closure::warshall_in_place(&mut c);
        c
    }

    /// Closes this relation transitively in place.
    pub fn close_transitively(&mut self) {
        closure::warshall_in_place(self);
    }

    /// True iff no index is related to itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.len).all(|i| !self.contains(i, i))
    }

    /// True iff the relation, viewed as a digraph, has no directed cycle.
    /// (Self-loops count as cycles.)
    pub fn is_acyclic(&self) -> bool {
        closure::topological_order(self).is_some()
    }

    /// True iff this relation is a strict partial order: irreflexive and
    /// transitive (antisymmetry follows).
    pub fn is_strict_partial_order(&self) -> bool {
        if !self.is_irreflexive() {
            return false;
        }
        // Transitive: R;R ⊆ R.
        let comp = self.compose(self);
        for a in 0..self.len {
            if !comp.rows[a].is_subset(&self.rows[a]) {
                return false;
            }
        }
        true
    }

    /// True iff the relation is a strict *total* order on its domain.
    pub fn is_strict_total_order(&self) -> bool {
        self.is_strict_partial_order()
            && (0..self.len).all(|a| (0..a).all(|b| !self.unordered(a, b)))
    }

    /// The set of pairs `(a, b)` with `a < b` that are unordered — i.e. the
    /// "concurrency" pairs when the relation is a temporal partial order.
    pub fn unordered_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.len {
            for b in (a + 1)..self.len {
                if self.unordered(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Restricts the relation to pairs whose endpoints are both in `keep`,
    /// re-indexing densely in the order of `keep`'s iteration (increasing).
    ///
    /// Returns the restricted relation and the mapping from new index to
    /// old index.
    pub fn restrict(&self, keep: &BitSet) -> (Relation, Vec<usize>) {
        let old_of_new: Vec<usize> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.len];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut out = Relation::new(old_of_new.len());
        for (a, b) in self.pairs() {
            if keep.contains(a) && keep.contains(b) {
                out.insert(new_of_old[a], new_of_old[b]);
            }
        }
        (out, old_of_new)
    }
}

/// Finalizer of `splitmix64`: cheap bijective mixing with full avalanche,
/// used to salt matrix words by position in [`Relation::fingerprint128`].
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Relation({} indices) {{", self.len)?;
        let mut first = true;
        for (a, b) in self.pairs() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {a}->{b}")?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains() {
        let mut r = Relation::new(4);
        assert!(r.insert(0, 1));
        assert!(!r.insert(0, 1));
        assert!(r.contains(0, 1));
        assert!(!r.contains(1, 0));
        assert!(r.unordered(2, 3));
        assert!(!r.unordered(0, 1));
        assert_eq!(r.pair_count(), 1);
    }

    #[test]
    fn from_edges_and_pairs_round_trip() {
        let edges = vec![(0, 1), (1, 2), (3, 0)];
        let r = Relation::from_edges(4, edges.clone());
        let mut got: Vec<_> = r.pairs().collect();
        got.sort_unstable();
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn transitive_closure_of_chain() {
        let r = Relation::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let c = r.transitive_closure();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(c.contains(a, b), a < b, "pair ({a},{b})");
            }
        }
        assert!(c.is_strict_total_order());
    }

    #[test]
    fn closure_is_idempotent() {
        let r = Relation::from_edges(5, [(0, 2), (2, 4), (1, 3)]);
        let c1 = r.transitive_closure();
        let c2 = c1.transitive_closure();
        assert_eq!(c1, c2);
    }

    #[test]
    fn compose_matches_definition() {
        let r = Relation::from_edges(3, [(0, 1), (1, 2)]);
        let s = Relation::from_edges(3, [(1, 0), (2, 1)]);
        let rs = r.compose(&s);
        // (0,1);(1,0) -> (0,0); (1,2);(2,1) -> (1,1)
        assert!(rs.contains(0, 0));
        assert!(rs.contains(1, 1));
        assert_eq!(rs.pair_count(), 2);
    }

    #[test]
    fn transpose_involution() {
        let r = Relation::from_edges(6, [(0, 5), (2, 3), (4, 1), (1, 4)]);
        assert_eq!(r.transpose().transpose(), r);
        assert!(r.transpose().contains(5, 0));
    }

    #[test]
    fn partial_and_total_order_checks() {
        let chain = Relation::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert!(chain.is_strict_partial_order());
        assert!(chain.is_strict_total_order());

        let v = Relation::from_edges(3, [(0, 1), (0, 2)]);
        assert!(v.is_strict_partial_order());
        assert!(!v.is_strict_total_order());

        let not_transitive = Relation::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!not_transitive.is_strict_partial_order());

        let reflexive = Relation::identity(2);
        assert!(!reflexive.is_strict_partial_order());
    }

    #[test]
    fn acyclicity() {
        assert!(Relation::from_edges(3, [(0, 1), (1, 2)]).is_acyclic());
        assert!(!Relation::from_edges(3, [(0, 1), (1, 0)]).is_acyclic());
        assert!(!Relation::from_edges(1, [(0, 0)]).is_acyclic());
        assert!(Relation::new(0).is_acyclic(), "empty domain is acyclic");
    }

    #[test]
    fn unordered_pairs_of_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, closed.
        let r = Relation::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).transitive_closure();
        assert_eq!(r.unordered_pairs(), vec![(1, 2)]);
    }

    #[test]
    fn union_intersection() {
        let a = Relation::from_edges(3, [(0, 1), (1, 2)]);
        let b = Relation::from_edges(3, [(1, 2), (2, 0)]);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.pair_count(), 3);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.pairs().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn restrict_reindexes_densely() {
        let r = Relation::from_edges(5, [(0, 2), (2, 4), (1, 3)]);
        let keep: BitSet = [0usize, 2, 4].into_iter().collect();
        // capacity of `keep` is 5 already (max index 4 + 1)
        let (sub, old_of_new) = r.restrict(&keep);
        assert_eq!(old_of_new, vec![0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert!(sub.contains(0, 1), "0->2 survives as 0->1");
        assert!(sub.contains(1, 2), "2->4 survives as 1->2");
        assert_eq!(sub.pair_count(), 2, "1->3 is dropped");
    }

    #[test]
    fn relations_dedupe_in_hash_set() {
        use std::collections::HashSet;
        let a = Relation::from_edges(3, [(0, 1)]);
        let b = Relation::from_edges(3, [(0, 1)]);
        let c = Relation::from_edges(3, [(1, 0)]);
        let mut set = HashSet::new();
        assert!(set.insert(a));
        assert!(!set.insert(b));
        assert!(set.insert(c));
    }

    #[test]
    fn clone_preserves_edges() {
        let r = Relation::from_edges(4, [(0, 3), (2, 1)]);
        let back = r.clone();
        assert_eq!(r, back);
        assert!(back.contains(0, 3) && back.contains(2, 1));
    }
}
