//! Property tests tying the three pillars of the model together: the
//! synchronization machine (what can run), trace validation (what ran),
//! and induced orders (what was forced).

use eo_model::{induce, EventId, Machine, Op, Trace, TraceBuilder};
use eo_relations::{closure, Relation};
use proptest::prelude::*;

/// Builds a random but *valid-by-construction* trace: a pool of
/// processes, matched V/P and Post/Wait pairs placed so the observed
/// order (which is the insertion order) replays. The trick: keep a
/// running machine state and only append operations that are enabled.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    (
        2usize..=4, // processes
        2usize..=3, // sync objects of each kind
        prop::collection::vec((0u8..6, 0usize..4, 0usize..3), 4..20),
        prop::bool::ANY, // include shared variable accesses
    )
        .prop_map(|(n_procs, n_sync, script, with_vars)| {
            let mut tb = TraceBuilder::new();
            let procs: Vec<_> = (0..n_procs).map(|i| tb.process(&format!("p{i}"))).collect();
            let sems: Vec<_> = (0..n_sync)
                .map(|i| tb.semaphore(&format!("s{i}"), 0))
                .collect();
            let evs: Vec<_> = (0..n_sync)
                .map(|i| tb.event_var(&format!("v{i}"), false))
                .collect();
            let var = with_vars.then(|| tb.variable("x"));

            // Shadow synchronization state so we only emit enabled ops.
            let mut sem_count = vec![0u32; n_sync];
            let mut flag = vec![false; n_sync];

            for (op_kind, pi, oi) in script {
                let p = procs[pi % n_procs];
                let o = oi % n_sync;
                match op_kind {
                    0 => {
                        tb.push(p, Op::SemV(sems[o]));
                        sem_count[o] += 1;
                    }
                    1 if sem_count[o] > 0 => {
                        tb.push(p, Op::SemP(sems[o]));
                        sem_count[o] -= 1;
                    }
                    2 => {
                        tb.push(p, Op::Post(evs[o]));
                        flag[o] = true;
                    }
                    3 if flag[o] => {
                        tb.push(p, Op::Wait(evs[o]));
                    }
                    4 => {
                        tb.push(p, Op::Clear(evs[o]));
                        flag[o] = false;
                    }
                    _ => {
                        if let Some(x) = var {
                            if op_kind % 2 == 0 {
                                tb.write(p, x, "w");
                            } else {
                                tb.read(p, x, "r");
                            }
                        } else {
                            tb.compute(p, "c");
                        }
                    }
                }
            }
            tb.build().expect("construction keeps the trace valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator's output always validates (sanity of the strategy
    /// itself).
    #[test]
    fn generated_traces_validate(trace in arbitrary_trace()) {
        prop_assert!(trace.validate().is_ok());
    }

    /// The observed schedule replays, and every *linear extension of the
    /// induced order* replays too — the key soundness property of
    /// `induce`: the forcing edges are sufficient to keep any reordering
    /// legal.
    #[test]
    fn linear_extensions_of_induced_order_replay(trace in arbitrary_trace()) {
        prop_assume!(trace.n_events() <= 9); // extensions grow factorially
        let exec = trace.to_execution().unwrap();
        let machine = Machine::new(&trace);
        let order = exec.t();
        prop_assume!(order.is_acyclic());
        for ext in closure::linear_extensions(order).into_iter().take(40) {
            let schedule: Vec<EventId> = ext.into_iter().map(EventId::new).collect();
            prop_assert!(
                machine.replay(&schedule).is_ok(),
                "extension of the induced order must be a valid schedule"
            );
        }
    }

    /// The induced order is a strict partial order containing the base
    /// constraints.
    #[test]
    fn induced_order_is_partial_order_over_base(trace in arbitrary_trace()) {
        let exec = trace.to_execution().unwrap();
        let t = exec.t();
        prop_assert!(t.is_strict_partial_order());
        let base = exec.base_edges().transitive_closure();
        for (a, b) in base.pairs() {
            prop_assert!(t.contains(a, b), "base edge {a}->{b} must be induced");
        }
    }

    /// →D is consistent with the observed order and only relates
    /// conflicting events.
    #[test]
    fn dependences_follow_observation(trace in arbitrary_trace()) {
        let exec = trace.to_execution().unwrap();
        for (a, b) in exec.d().pairs() {
            prop_assert!(a < b, "→D must follow the observed total order");
            let (ea, eb) = (&exec.events()[a], &exec.events()[b]);
            prop_assert!(ea.conflicts_with(eb));
        }
    }

    /// Machine state is exactly reproducible: replaying the observed
    /// order step by step reaches completion with every event executed
    /// once.
    #[test]
    fn replay_executes_each_event_once(trace in arbitrary_trace()) {
        let machine = Machine::new(&trace);
        let mut st = machine.initial_state();
        for e in &trace.events {
            prop_assert!(!machine.executed(&st, e.id));
            machine.step(&mut st, e.process);
            prop_assert!(machine.executed(&st, e.id));
        }
        prop_assert!(machine.is_complete(&st));
    }

    /// JSON round trip preserves everything.
    #[test]
    fn json_round_trip(trace in arbitrary_trace()) {
        let back = Trace::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Induced edges are a subset of their own closure, and closing is
    /// stable (guards against edge families escaping the closure).
    #[test]
    fn induced_edges_close_cleanly(trace in arbitrary_trace()) {
        let exec = trace.to_execution().unwrap();
        let edges = induce::induced_edges(&trace, exec.d(), &trace.observed_order());
        let closed = induce::induced_order(&trace, exec.d(), &trace.observed_order());
        for (a, b) in edges.pairs() {
            prop_assert!(closed.contains(a, b));
        }
        prop_assert_eq!(&closed, exec.t());
    }
}

/// Deterministic cross-check: for a trace whose events all commute, the
/// induced order is empty and *every* permutation replays.
#[test]
fn fully_commuting_trace_has_empty_induced_order() {
    let mut tb = TraceBuilder::new();
    let p0 = tb.process("p0");
    let p1 = tb.process("p1");
    let p2 = tb.process("p2");
    let a = tb.compute(p0, "a");
    let b = tb.compute(p1, "b");
    let c = tb.compute(p2, "c");
    let trace = tb.build().unwrap();
    let exec = trace.to_execution().unwrap();
    assert_eq!(exec.t().pair_count(), 0);

    let machine = Machine::new(&trace);
    let perms: [[EventId; 3]; 6] = [
        [a, b, c],
        [a, c, b],
        [b, a, c],
        [b, c, a],
        [c, a, b],
        [c, b, a],
    ];
    for perm in perms {
        assert!(machine.replay(&perm).is_ok());
    }
}

/// A relation-closure sanity anchor: the handshake's induced order is
/// precisely program order plus the V→P pairing plus transitivity.
#[test]
fn handshake_induced_order_is_exactly_expected() {
    let (trace, ids) = eo_model::fixtures::sem_handshake();
    let exec = trace.to_execution().unwrap();
    let mut expected = Relation::new(4);
    expected.insert(ids.v.index(), ids.after_v.index()); // program order p0
    expected.insert(ids.p.index(), ids.after_p.index()); // program order p1
    expected.insert(ids.v.index(), ids.p.index()); // pairing
    let expected = expected.transitive_closure();
    assert_eq!(exec.t(), &expected);
}
