//! The multi-tenant session store: one worker thread per open program.
//!
//! An [`AnalysisSession`] borrows its `ProgramExecution`, which is exactly
//! right for batch serving (the caller owns the program) and exactly wrong
//! for a long-lived server that opens programs over the wire. The store
//! resolves this without a scrap of unsafe: each entry is a dedicated
//! worker *thread* whose closure owns the execution, builds the session
//! borrowing from its own stack, and serves jobs from an mpsc queue. The
//! reactor never touches a session — it only routes jobs by program
//! fingerprint and counts what comes back.
//!
//! This shape buys three robustness properties at once:
//!
//! * **Panic isolation**: each request runs under `catch_unwind`; a panic
//!   poisons only that worker's session, which is rebuilt in place from
//!   the owned execution (caches are lost, correctness is not — a fresh
//!   session answers every query identically). The request that tripped
//!   the panic gets an error response, the connection lives on.
//! * **Bounded admission**: the store holds at most `capacity` programs.
//!   Opening a new one evicts the least-recently-used entry that has no
//!   attached connections and no in-flight work; when every entry is
//!   busy, the open is *rejected* (the caller answers `overloaded` with
//!   `retry_after_ms`) rather than queued — so store memory is provably
//!   bounded no matter how many tenants knock.
//! * **Ordered responses**: one FIFO queue per program means a
//!   connection's queries come back in submission order, which is what
//!   makes a network replay byte-comparable to a batch run.

use crate::protocol::{parse_one, render_error};
use crate::server::{answer_one, Disposition};
use crate::session::{fingerprint, AnalysisSession, SessionConfig};
use eo_engine::Budget;
use eo_model::Trace;
use eo_obs::json::Value;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

/// One unit of work routed to a session worker.
pub(crate) struct Job {
    /// The connection awaiting the response.
    pub conn_id: u64,
    /// The connection's frame sequence number (1-based), doubling as the
    /// protocol's `line` position in error responses.
    pub seq: usize,
    /// The decoded request document.
    pub request: Value,
    /// The budget this request runs under — constructed fresh per request
    /// by the reactor, which keeps the cancel handle for drain.
    pub budget: Budget,
}

/// What a worker sends back to the reactor.
pub(crate) struct Completion {
    pub conn_id: u64,
    pub seq: usize,
    /// The program whose in-flight counter this completion releases.
    pub fingerprint: u64,
    /// The rendered response document (the same bytes `eo serve` emits).
    pub rendered: String,
    pub disposition: Disposition,
    /// The worker panicked on this request and rebuilt its session.
    pub rebuilt: bool,
}

/// Outcome of an `open` request.
pub(crate) enum OpenOutcome {
    /// The program is resident (now or already); the connection is
    /// attached.
    Opened {
        fingerprint: u64,
        events: usize,
        /// False when the open reattached to an already-resident session
        /// (its caches warm from earlier traffic).
        fresh: bool,
    },
    /// The store is at capacity and every resident program is busy:
    /// admission control rejects rather than queues.
    Rejected,
    /// The submitted program text does not parse or validate.
    Invalid(String),
}

struct Entry {
    jobs: Sender<Job>,
    join: Option<JoinHandle<()>>,
    /// Connections currently attached to this program.
    refcount: usize,
    /// Requests submitted but not yet completed.
    inflight: usize,
    /// Logical clock of the last submit/attach, for LRU eviction.
    last_used: u64,
}

/// The store itself. Owned by the reactor thread; all methods are
/// reactor-side (the workers only see their job queue and the completion
/// sender).
pub(crate) struct SessionStore {
    entries: HashMap<u64, Entry>,
    capacity: usize,
    config: SessionConfig,
    completions: Sender<Completion>,
    clock: u64,
    /// Idle sessions evicted to make room (monotonic).
    pub evictions: u64,
}

impl SessionStore {
    pub fn new(capacity: usize, config: SessionConfig, completions: Sender<Completion>) -> Self {
        SessionStore {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            config,
            completions,
            clock: 0,
            evictions: 0,
        }
    }

    /// Resident programs right now (bounded by `capacity` always).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Parses `trace_text`, admits (or rejects) the program, and attaches
    /// the calling connection to it.
    pub fn open(&mut self, trace_text: &str) -> OpenOutcome {
        let trace = match Trace::from_json(trace_text) {
            Ok(trace) => trace,
            Err(e) => return OpenOutcome::Invalid(format!("invalid program: {e}")),
        };
        let exec = match trace.to_execution() {
            Ok(exec) => exec,
            Err(e) => return OpenOutcome::Invalid(format!("invalid program: {e}")),
        };
        let fp = fingerprint(&exec);
        let events = exec.n_events();
        let tick = self.tick();
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.refcount += 1;
            entry.last_used = tick;
            return OpenOutcome::Opened {
                fingerprint: fp,
                events,
                fresh: false,
            };
        }
        if self.entries.len() >= self.capacity && !self.evict_one_idle() {
            return OpenOutcome::Rejected;
        }
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let completions = self.completions.clone();
        let config = self.config.clone();
        let join = std::thread::Builder::new()
            .name(format!("eo-session-{fp:016x}"))
            .spawn(move || worker_loop(exec, fp, config, rx, completions))
            .expect("spawning a session worker");
        self.entries.insert(
            fp,
            Entry {
                jobs: tx,
                join: Some(join),
                refcount: 1,
                inflight: 0,
                last_used: tick,
            },
        );
        OpenOutcome::Opened {
            fingerprint: fp,
            events,
            fresh: true,
        }
    }

    /// Detaches a connection (on close or re-open). The session stays
    /// resident — warm caches are the point — until LRU pressure evicts
    /// it.
    pub fn detach(&mut self, fp: u64) {
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.refcount = entry.refcount.saturating_sub(1);
        }
    }

    /// In-flight requests for one program (the per-tenant quota measure).
    pub fn inflight(&self, fp: u64) -> usize {
        self.entries.get(&fp).map_or(0, |e| e.inflight)
    }

    /// Routes a job to its program's worker. `false` means the worker is
    /// gone (it died outside the per-request panic guard, or the program
    /// was never opened) and the caller owes the client an error itself.
    pub fn submit(&mut self, fp: u64, job: Job) -> bool {
        let tick = self.tick();
        match self.entries.get_mut(&fp) {
            None => false,
            Some(entry) => {
                if entry.jobs.send(job).is_err() {
                    return false;
                }
                entry.inflight += 1;
                entry.last_used = tick;
                true
            }
        }
    }

    /// Releases one in-flight slot (called per completion, whether or not
    /// the destination connection still exists).
    pub fn complete(&mut self, fp: u64) {
        if let Some(entry) = self.entries.get_mut(&fp) {
            entry.inflight = entry.inflight.saturating_sub(1);
        }
    }

    /// Evicts the least-recently-used entry with no attachments and no
    /// in-flight work. Returns whether anything could be evicted.
    fn evict_one_idle(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.refcount == 0 && e.inflight == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&fp, _)| fp);
        match victim {
            None => false,
            Some(fp) => {
                if let Some(mut entry) = self.entries.remove(&fp) {
                    // Dropping the sender ends the worker's recv loop; it
                    // is idle (inflight == 0), so the join is prompt.
                    drop(entry.jobs);
                    if let Some(join) = entry.join.take() {
                        let _ = join.join();
                    }
                }
                self.evictions += 1;
                true
            }
        }
    }

    /// Shuts every worker down and joins them. Called once at the end of
    /// drain; outstanding jobs still produce completions first (the
    /// channel is drained before the sender drops).
    pub fn shutdown(&mut self) {
        let entries: Vec<Entry> = self.entries.drain().map(|(_, e)| e).collect();
        // Drop all senders first so every worker sees the hangup...
        let joins: Vec<JoinHandle<()>> = entries
            .into_iter()
            .filter_map(|mut e| {
                drop(e.jobs);
                e.join.take()
            })
            .collect();
        // ...then join them (any in-flight request finishes under its
        // budget, whose cancel flag drain has already raised if the
        // deadline passed).
        for join in joins {
            let _ = join.join();
        }
    }
}

/// The worker body: owns the execution, serves jobs until hangup.
fn worker_loop(
    exec: eo_model::ProgramExecution,
    fp: u64,
    config: SessionConfig,
    jobs: Receiver<Job>,
    completions: Sender<Completion>,
) {
    let mut session = AnalysisSession::with_config(&exec, config.clone());
    while let Ok(job) = jobs.recv() {
        let parsed = parse_one(&exec, &job.request, Some(job.seq));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Deterministic worker-panic hook for the robustness tests:
            // only compiled under the test-only feature, and it panics
            // *inside* the guard so the rebuild path is what recovers.
            #[cfg(feature = "fault-injection")]
            if job.request.get("op").and_then(Value::as_str) == Some("__fault_panic") {
                panic!("fault injection: __fault_panic op");
            }
            session.set_budget(job.budget.clone());
            answer_one(&mut session, &parsed)
        }));
        let (rendered, disposition, rebuilt) = match outcome {
            Ok((rendered, disposition)) => (rendered, disposition, false),
            Err(_) => {
                // The session's internal state is suspect after a panic:
                // rebuild it from the owned execution. Everything cached
                // was derived and is re-derivable; no other tenant shared
                // this session, so nobody else observes the reset.
                session = AnalysisSession::with_config(&exec, config.clone());
                (
                    render_error(
                        &parsed.id,
                        "internal error: analysis worker panicked; session rebuilt",
                    ),
                    Disposition::Error,
                    true,
                )
            }
        };
        let sent = completions.send(Completion {
            conn_id: job.conn_id,
            seq: job.seq,
            fingerprint: fp,
            rendered,
            disposition,
            rebuilt,
        });
        if sent.is_err() {
            return; // reactor is gone; nothing left to serve
        }
    }
}
