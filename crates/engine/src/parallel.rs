//! Parallel cut-lattice exploration.
//!
//! The sequential explorer in [`crate::statespace`] interleaves three
//! kinds of work: stepping the machine out of each state (CPU-bound,
//! embarrassingly parallel), hash-consing successor states into the global
//! arena (memory-bound, hard to parallelize without sharded tables), and
//! the pairwise-fact accumulation over completable states (CPU-bound,
//! parallel by node range). This module parallelizes the first and third
//! on a **persistent worker pool** — workers are spawned once for the
//! whole exploration and fed per-level tasks through a shared
//! condvar-backed queue, so no thread is created per BFS level — while the
//! hash-consing merge stays sequential on the coordinating thread.
//!
//! The storage is the same [`StateGraph`](crate::statespace) the
//! sequential explorer uses: states interned once in the
//! [`StateTable`](crate::statetable::StateTable) arena, executed sets
//! threaded incrementally (each successor adds one bit to its parent's
//! row), overlap checks done by successor-table walks in
//! `accumulate_range` — so the two explorers differ only in who does the
//! stepping, never in what is stored.
//!
//! The result is bit-for-bit identical to the sequential explorer's
//! (tests assert this). Whether it is *faster* depends on how much of the
//! input's cost is machine-stepping versus hashing: the ablation bench
//! (DESIGN.md §5) reports both sides honestly, and on small executions the
//! sequential explorer wins — parallelism only pays once the per-level
//! frontiers are thousands of states wide.

use crate::ctx::SearchCtx;
use crate::engine::EngineError;
use crate::statespace::{
    accumulate_range, propagate_completability, Node, StateGraph, StateSpaceResult,
};
use eo_model::{EventId, MachState, ProcessId};
use eo_relations::Relation;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One state to expand: its node index, the state cloned out of the
/// arena, and its enabled list.
type ExpandItem = (usize, MachState, Vec<(ProcessId, EventId)>);

/// Work items sent to the pool.
enum Task {
    /// Expand these states (cloned out of the arena): step every enabled
    /// process once, reporting the event each step fired.
    Expand {
        /// Position of this chunk in the level's task list.
        slot: usize,
        items: Vec<ExpandItem>,
    },
    /// Compute `co_enabled` for these fresh states.
    Enable { slot: usize, items: Vec<MachState> },
}

/// Worker results, tagged by slot so the coordinator can reassemble
/// deterministically.
enum TaskResult {
    Expanded {
        slot: usize,
        succs: Vec<(usize, EventId, MachState)>,
    },
    Enabled {
        slot: usize,
        enabled: Vec<Vec<(ProcessId, EventId)>>,
    },
}

/// A minimal MPMC queue (`Mutex<VecDeque>` + `Condvar`): the workspace
/// builds offline, so the crossbeam channels this module once used are
/// replaced by the std primitives they wrap.
struct Queue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    ready: Condvar,
}

impl<T> Queue<T> {
    fn new() -> Self {
        Queue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: T) {
        let mut guard = self.state.lock().expect("queue poisoned");
        guard.0.push_back(item);
        self.ready.notify_one();
    }

    /// Blocks for the next item; `None` once closed and drained.
    fn pop(&self) -> Option<T> {
        let mut guard = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = guard.0.pop_front() {
                return Some(item);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("queue poisoned");
        }
    }

    /// Wakes all blocked consumers; subsequent `pop`s drain then end.
    fn close(&self) {
        let mut guard = self.state.lock().expect("queue poisoned");
        guard.1 = true;
        self.ready.notify_all();
    }
}

/// Parallel variant of [`crate::explore_statespace`]. `threads = 0` means
/// "use the available parallelism".
pub fn explore_statespace_parallel(
    ctx: &SearchCtx<'_>,
    max_states: usize,
    threads: usize,
) -> Result<StateSpaceResult, EngineError> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads.max(1)
    };

    let tasks: Queue<Task> = Queue::new();
    let results: Queue<TaskResult> = Queue::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut enabled_buf: Vec<(ProcessId, EventId)> = Vec::new();
                while let Some(task) = tasks.pop() {
                    match task {
                        Task::Expand { slot, items } => {
                            let mut succs = Vec::new();
                            for (parent, state, fires) in items {
                                for (p, e) in fires {
                                    let mut st2 = state.clone();
                                    ctx.step(&mut st2, p);
                                    succs.push((parent, e, st2));
                                }
                            }
                            results.push(TaskResult::Expanded { slot, succs });
                        }
                        Task::Enable { slot, items } => {
                            let enabled = items
                                .iter()
                                .map(|st| {
                                    ctx.co_enabled_into(st, &mut enabled_buf);
                                    enabled_buf.clone()
                                })
                                .collect();
                            results.push(TaskResult::Enabled { slot, enabled });
                        }
                    }
                }
            });
        }

        let out = drive(ctx, max_states, threads, &tasks, &results);
        tasks.close(); // hang up so workers exit
        out
    })
}

/// The coordinating thread: level-synchronous BFS with the heavy phases
/// fanned out to the pool.
fn drive(
    ctx: &SearchCtx<'_>,
    max_states: usize,
    threads: usize,
    tasks: &Queue<Task>,
    results: &Queue<TaskResult>,
) -> Result<StateSpaceResult, EngineError> {
    let mut graph = StateGraph::seeded(ctx);

    let mut frontier: Vec<usize> = vec![0];
    while !frontier.is_empty() {
        // Phase 1 (pool): successors of every frontier node. Task items
        // carry owned state clones so workers never borrow the arena.
        let chunk = frontier.len().div_ceil(threads).max(1);
        let mut slots = 0;
        for (slot, ids) in frontier.chunks(chunk).enumerate() {
            let items = ids
                .iter()
                .map(|&i| {
                    let state = graph.table.get(crate::statetable::StateId::new(i)).clone();
                    (i, state, graph.nodes[i].enabled.clone())
                })
                .collect();
            tasks.push(Task::Expand { slot, items });
            slots += 1;
        }
        let mut batches: Vec<Vec<(usize, EventId, MachState)>> =
            (0..slots).map(|_| Vec::new()).collect();
        for _ in 0..slots {
            match results.pop().expect("pool alive") {
                TaskResult::Expanded { slot, succs } => batches[slot] = succs,
                TaskResult::Enabled { .. } => unreachable!("no enable tasks in flight"),
            }
        }

        // Phase 2 (sequential): hash-cons successor states into the arena.
        let new_start = graph.nodes.len();
        let mut next_frontier: Vec<usize> = Vec::new();
        for batch in batches {
            for (parent, e, st) in batch {
                let (id, fresh) = graph.table.intern(st);
                if fresh {
                    if graph.nodes.len() >= max_states {
                        return Err(EngineError::StateSpaceExceeded { limit: max_states });
                    }
                    debug_assert_eq!(id.index(), graph.nodes.len());
                    graph.nodes.push(Node {
                        enabled: Vec::new(), // filled in phase 3
                        succs: Vec::new(),
                        completable: false,
                    });
                    let row = graph.executed.push_row_copy(parent);
                    debug_assert_eq!(row, id.index());
                    graph.executed.set(row, e.index());
                    next_frontier.push(id.index());
                }
                graph.nodes[parent].succs.push(id.index() as u32);
            }
        }

        // Phase 3 (pool): enabledness of the fresh nodes.
        let fresh = graph.nodes.len() - new_start;
        if fresh > 0 {
            let chunk = fresh.div_ceil(threads).max(1);
            let mut slots = 0;
            let mut cursor = new_start;
            while cursor < graph.nodes.len() {
                let hi = (cursor + chunk).min(graph.nodes.len());
                let items = (cursor..hi)
                    .map(|i| graph.table.get(crate::statetable::StateId::new(i)).clone())
                    .collect();
                tasks.push(Task::Enable { slot: slots, items });
                slots += 1;
                cursor = hi;
            }
            let mut per_slot: Vec<Vec<Vec<(ProcessId, EventId)>>> =
                (0..slots).map(|_| Vec::new()).collect();
            for _ in 0..slots {
                match results.pop().expect("pool alive") {
                    TaskResult::Enabled { slot, enabled } => per_slot[slot] = enabled,
                    TaskResult::Expanded { .. } => unreachable!("no expand tasks in flight"),
                }
            }
            let mut write = new_start;
            for slot in per_slot {
                for enabled in slot {
                    graph.nodes[write].enabled = enabled;
                    write += 1;
                }
            }
            debug_assert_eq!(write, graph.nodes.len());
        }

        frontier = next_frontier;
    }

    // Phase 4: completability (sequential linear pass), then pairwise
    // accumulation fanned out by node range and merged by relation union.
    let deadlock_reachable = propagate_completability(ctx, &mut graph);
    let (chb, overlap, completable_states) = if graph.nodes.len() < 4 * threads {
        accumulate_range(ctx, &graph, 0, graph.nodes.len())
    } else {
        let chunk = graph.nodes.len().div_ceil(threads);
        let graph_ref = &graph;
        let partials: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(graph_ref.nodes.len());
                    s.spawn(move || accumulate_range(ctx, graph_ref, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let n = ctx.n_events();
        let mut chb = Relation::new(n);
        let mut overlap = Relation::new(n);
        let mut completable = 0;
        for (c, o, k) in partials {
            chb.union_with(&c);
            overlap.union_with(&o);
            completable += k;
        }
        (chb, overlap, completable)
    };

    Ok(StateSpaceResult {
        chb,
        overlap,
        states: graph.nodes.len(),
        completable_states,
        deadlock_reachable,
        approx_heap_bytes: graph.approx_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FeasibilityMode;
    use crate::statespace::explore_statespace;
    use eo_model::fixtures;

    fn both(trace: &eo_model::Trace) -> (StateSpaceResult, StateSpaceResult) {
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let seq = explore_statespace(&ctx, 1 << 20).unwrap();
        let par = explore_statespace_parallel(&ctx, 1 << 20, 4).unwrap();
        (seq, par)
    }

    fn assert_same(seq: &StateSpaceResult, par: &StateSpaceResult) {
        assert_eq!(seq.chb, par.chb);
        assert_eq!(seq.overlap, par.overlap);
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.completable_states, par.completable_states);
        assert_eq!(seq.deadlock_reachable, par.deadlock_reachable);
    }

    #[test]
    fn parallel_matches_sequential_on_fixtures() {
        for trace in [
            fixtures::independent_pair().0,
            fixtures::sem_handshake().0,
            fixtures::fork_join_diamond().0,
            fixtures::figure1().0,
            fixtures::post_wait_clear_chain().0,
            fixtures::crossing().0,
        ] {
            let (seq, par) = both(&trace);
            assert_same(&seq, &par);
        }
    }

    #[test]
    fn parallel_matches_on_a_generated_workload() {
        use eo_lang::generator::{generate_trace, WorkloadSpec};
        let mut spec = WorkloadSpec::small_semaphore(5);
        spec.processes = 4;
        spec.events_per_process = 4;
        let exec = generate_trace(&spec, 50).to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let seq = explore_statespace(&ctx, 1 << 22).unwrap();
        let par = explore_statespace_parallel(&ctx, 1 << 22, 3).unwrap();
        assert_same(&seq, &par);
    }

    #[test]
    fn zero_threads_means_auto() {
        let (trace, _) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let auto = explore_statespace_parallel(&ctx, 1 << 20, 0).unwrap();
        let seq = explore_statespace(&ctx, 1 << 20).unwrap();
        assert_eq!(auto.chb, seq.chb);
    }

    #[test]
    fn state_budget_is_enforced() {
        let (trace, _) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        assert!(matches!(
            explore_statespace_parallel(&ctx, 3, 2),
            Err(EngineError::StateSpaceExceeded { limit: 3 })
        ));
    }
}
