//! The `span!` / `counter!` / `gauge!` convenience macros.
//!
//! These expand to plain calls into [`crate`]'s always-present API, so they
//! are valid in downstream crates regardless of whether the `enabled`
//! feature is on — the feature decision lives entirely inside `eo-obs`,
//! never in the invoking crate's `cfg` context.

/// Opens a span covering the rest of the enclosing scope.
///
/// ```
/// fn work() {
///     eo_obs::span!("engine.example");
///     // ... the span closes when `work` returns ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _eo_obs_span_guard = $crate::span($name);
    };
}

/// Adds a `u64` delta to a named counter.
///
/// ```
/// eo_obs::counter!("engine.states_interned", 42u64);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta)
    };
}

/// Records a named integer gauge (last write wins).
///
/// ```
/// eo_obs::gauge!("pool.workers", 8i64);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge($name, $value)
    };
}
