//! Exact computation of the paper's six ordering relations.
//!
//! Given a program execution **P = ⟨E, →T, →D⟩**, the set **F(P)** of
//! *feasible program executions* contains every execution that performs
//! the same events and preserves the shared-data dependences (conditions
//! F1–F3 of the paper). Table 1 defines six relations quantifying over
//! F(P); this crate computes all of them **exactly** — which Theorems 1–4
//! prove must take exponential time in the worst case, and it does.
//!
//! ## How F(P) is represented
//!
//! Operationally, a feasible execution is a complete *schedule* of E that
//! respects program order, the synchronization semantics (driven by
//! `eo-model`'s [`Machine`](eo_model::Machine)), and →D. Each schedule
//! *induces* a partial order →T′ (see [`eo_model::induce`]); schedules
//! inducing the same →T′ are the same element of F(P).
//!
//! ## The two engines inside
//!
//! * [`statespace`] — a memoized exploration of the *cut lattice* (states
//!   = per-process progress + event-variable flags). One pass yields, for
//!   every pair, whether some feasible schedule runs `a` before `b`
//!   (→ CHB and, by complementation, MHB) and whether `a` and `b` can be
//!   *simultaneously enabled* in a completable state (→ the operational
//!   "could execute concurrently", the relation race detection needs).
//!   The cut lattice is exponentially smaller than the schedule space but
//!   still exponential in the number of processes — as it must be.
//! * [`enumerate`] — enumeration of the distinct induced orders of F(P),
//!   quotienting schedules by a pluggable trace equivalence ([`equiv`]):
//!   sleep-set pruned Mazurkiewicz classes (the default), or the coarser
//!   canonical-representative searches (normal-form pairing histories,
//!   closed-relation grains) that visit one schedule per element of F(P).
//!   The class-quantified relations (MCW, MOW, COW, and the induced
//!   variant of CCW) are computed from this set.
//!
//! ## Semantics note
//!
//! The paper leaves the fine structure of →T to its model axioms; we make
//! the choices explicit. `a CHB b` is read *temporally*: some feasible
//! execution has `a` completing before `b` begins — equivalently some
//! feasible schedule orders `a` first. `a CCW b` is read *operationally*:
//! some feasible execution reaches a state where both are ready to run
//! (and can still finish), so a parallel machine could overlap them. The
//! `∀`-quantified relations (MHB, MCW, MOW) quantify over the induced
//! orders of F(P): "ordered" there means *forced* by synchronization and
//! dependences, which is the only reading under which the paper's
//! must-relations are non-trivial (under a purely temporal reading, any
//! pair can be serialized by chance, making MCW empty). The summary
//! exposes both CCW readings ([`OrderingSummary::ccw`] operational,
//! [`OrderingSummary::ccw_induced`] class-based); the operational one
//! always contains the induced one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod budget;
pub mod config;
pub mod ctx;
pub mod degraded;
pub mod engine;
pub mod enumerate;
pub mod equiv;
#[cfg(feature = "fault-injection")]
pub mod faultpoint;
pub mod parallel;
pub mod pool;
pub mod queries;
pub mod sat_backend;
pub mod statespace;
pub mod statetable;
pub mod summary;

pub use api::{Answer, EngineOptions, Query, QueryBackend, Response};
pub use budget::{Budget, CancelHandle};
pub use config::EngineConfig;
pub use ctx::{FeasibilityMode, SearchCtx};
pub use degraded::{DegradedSummary, Fact};
pub use engine::{AnalysisOutcome, EngineError, ExactEngine, Limits};
pub use enumerate::{
    enumerate_classes, enumerate_classes_with, enumerate_naive, EnumerationResult,
};
pub use equiv::{EquivStrategy, Equivalence};
#[cfg(feature = "fault-injection")]
pub use faultpoint::{Fault, FaultPlan};
pub use parallel::{explore_statespace_parallel, explore_statespace_parallel_budgeted};
pub use pool::run_tasks;
pub use queries::{QueryMemo, QuerySession};
pub use sat_backend::{
    chb_via_sat, chb_via_sat_budgeted, mhb_via_sat, mhb_via_sat_budgeted, SatSession,
};
pub use statespace::{
    explore_statespace, explore_statespace_baseline, explore_statespace_budgeted, StateSpaceResult,
};
pub use statetable::{StateId, StateTable};
pub use summary::OrderingSummary;
