//! The surface-primitive fixture gallery (`eo_lang::gallery`) is pinned
//! end to end: for every fixture the `eo analyze --fixture`,
//! `eo mhp --fixture`, and `eo lint --fixture` JSON output must match
//! the committed goldens under `testdata/gallery/` byte-for-byte.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo build --release
//! for f in barrier-pipeline monitor-handoff channel-pipeline; do
//!   target/release/eo analyze --fixture $f --json \
//!     > testdata/gallery/$f.analyze.golden.json
//! done
//! for f in barrier-pipeline monitor-handoff channel-pipeline channel-starved; do
//!   target/release/eo mhp --fixture $f --json \
//!     > testdata/gallery/$f.mhp.golden.json
//!   target/release/eo lint --fixture $f --json \
//!     > testdata/gallery/$f.lint.golden.json || true
//! done
//! ```

use std::process::Command;

fn eo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_eo"))
        .args(args)
        .output()
        .expect("spawning eo")
}

fn assert_golden(out: &std::process::Output, name: &str, kind: &str) {
    let golden_path = format!("testdata/gallery/{name}.{kind}.golden.json");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("committed golden {golden_path} must exist: {e}"));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "{name}: eo {kind} --fixture diverges from {golden_path}"
    );
}

/// `channel-starved` wedges by design, so it has no analyze golden; the
/// other three fixtures complete deterministically.
const COMPLETING: [&str; 3] = ["barrier-pipeline", "monitor-handoff", "channel-pipeline"];
const ALL: [&str; 4] = [
    "barrier-pipeline",
    "monitor-handoff",
    "channel-pipeline",
    "channel-starved",
];

#[test]
fn analyze_matches_the_committed_goldens() {
    for name in COMPLETING {
        let out = eo(&["analyze", "--fixture", name, "--json"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_golden(&out, name, "analyze");
    }
}

#[test]
fn mhp_matches_the_committed_goldens() {
    for name in ALL {
        let out = eo(&["mhp", "--fixture", name, "--json"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_golden(&out, name, "mhp");
    }
}

#[test]
fn lint_matches_the_committed_goldens() {
    for name in ALL {
        let out = eo(&["lint", "--fixture", name, "--json"]);
        // The misuse fixture carries an error-severity EO-L013, which
        // the default deny level turns into exit 1; the clean fixtures
        // lint clean.
        let want = if name == "channel-starved" { 1 } else { 0 };
        assert_eq!(
            out.status.code(),
            Some(want),
            "{name} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_golden(&out, name, "lint");
    }
}

#[test]
fn barrier_separation_shows_up_in_mhp() {
    // The gallery's point in one assertion: barrier-pipeline's produce/
    // consume statements conflict on the same variables, yet the static
    // races list is empty because the barrier separates the phases.
    let out = eo(&["mhp", "--fixture", "barrier-pipeline", "--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#""may_races": []"#),
        "barrier must make the pipeline race-free: {stdout}"
    );
}

#[test]
fn unknown_fixture_is_a_usage_error() {
    for cmd in ["analyze", "mhp", "lint"] {
        let out = eo(&[cmd, "--fixture", "no-such"]);
        assert_eq!(out.status.code(), Some(1), "{cmd}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown fixture") && stderr.contains("barrier-pipeline"),
            "{cmd} must list the gallery: {stderr}"
        );
    }
}
