//! E1 — Figure 1: cost of each analysis on the paper's example, and the
//! headline query (exact MHB between the two Posts).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use eo_engine::ExactEngine;
use eo_model::fixtures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (trace, ids) = fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    let mut g = c.benchmark_group("e1_figure1");

    g.bench_function("egp_task_graph_build", |b| {
        b.iter(|| eo_approx::TaskGraph::build(black_box(&exec)))
    });
    g.bench_function("vector_clocks", |b| {
        b.iter(|| eo_approx::VectorClockHb::compute(black_box(&exec)))
    });
    g.bench_function("exact_mhb_posts", |b| {
        b.iter(|| {
            let engine = ExactEngine::new(black_box(&exec));
            engine.mhb(ids.post_left, ids.post_right)
        })
    });
    g.bench_function("exact_full_summary", |b| {
        b.iter(|| ExactEngine::new(black_box(&exec)).summary())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = common::fast_criterion();
    targets = bench
}
criterion_main!(benches);
