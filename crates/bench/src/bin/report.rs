//! Regenerates every experiment table (E1–E11 + ablations) and prints them
//! in the form recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p eo-bench --bin report            # all experiments
//! cargo run --release -p eo-bench --bin report -- e3 e7   # a subset
//! cargo run --release -p eo-bench --features obs --bin report -- e14
//! cargo run --release -p eo-bench --bin report -- check-regression \
//!     [--baseline BENCH_engine.json]                      # the CI perf gate
//! ```
//!
//! `check-regression` re-measures the fixed E12 workloads and fails
//! (exit 1) if any workload's wall time regressed more than 25% relative
//! to the committed baseline — compared as baseline/interned speedup
//! ratios, so the verdict is machine-independent — or its peak bytes grew
//! more than 15%. When a committed `BENCH_equiv.json` is present (or
//! `--equiv-baseline <file>` is given), it also re-measures the E17
//! equivalence-strategy ablation and gates its class-count and time
//! ratios the same way. When a committed `BENCH_server.json` is present
//! (or `--server-baseline <file>` is given), it re-runs the E18 server
//! load/fault harness at smoke scale and gates its robustness
//! *invariants* — zero lost answers, byte parity with `eo serve`, total
//! rejection under zero quota, sound degradation, clean drain. When a
//! committed `BENCH_sat.json` is present (or `--sat-baseline <file>` is
//! given), it re-measures the E19 enumeration-vs-symbolic study and
//! gates its crossover (a workload the SAT backend won must stay won)
//! and its incremental-vs-fresh speedup (>25% loss fails).

use eo_bench::table::render;
use eo_bench::*;
use eo_lang::generator::SyncStyle;
use eo_model::fixtures;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The perf-regression gate (CI's `perf-gate` job; also runnable locally).
/// Exits the process: 0 when every workload passes, 1 otherwise.
fn check_regression(args: &[String]) -> ! {
    let baseline_path = match args.iter().position(|a| a == "--baseline") {
        None => "BENCH_engine.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("check-regression: --baseline takes a file path");
                std::process::exit(1);
            }
        },
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-regression: reading {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    println!("== perf-regression gate: re-measuring E12 against {baseline_path} ==");
    let current: Vec<_> = e12_workloads()
        .iter()
        .map(|(label, exec, mode)| e12_engine_point(label, exec, *mode))
        .collect();
    let checks = match check_regression_against(&baseline, &current) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check-regression: {e}");
            std::process::exit(1);
        }
    };
    let mut rows = Vec::new();
    let mut failed = false;
    for c in &checks {
        rows.push(vec![
            c.workload.clone(),
            format!("{:.2}x", c.committed_speedup),
            format!("{:.2}x", c.current_speedup),
            c.committed_peak_bytes.to_string(),
            c.current_peak_bytes.to_string(),
            if c.failures.is_empty() {
                "ok".into()
            } else {
                "FAIL".into()
            },
        ]);
        for f in &c.failures {
            eprintln!("FAIL {}: {f}", c.workload);
            failed = true;
        }
    }
    println!(
        "{}",
        render(
            &[
                "workload",
                "committed",
                "measured",
                "committed_B",
                "measured_B",
                "verdict"
            ],
            &rows
        )
    );
    let equiv_baseline_path = match args.iter().position(|a| a == "--equiv-baseline") {
        None => "BENCH_equiv.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("check-regression: --equiv-baseline takes a file path");
                std::process::exit(1);
            }
        },
    };
    let mut gated = checks.len();
    match std::fs::read_to_string(&equiv_baseline_path) {
        Err(e) => {
            // The engine gate can run without the equivalence ablation
            // committed, but an explicitly named baseline must exist.
            if args.iter().any(|a| a == "--equiv-baseline") {
                eprintln!("check-regression: reading {equiv_baseline_path}: {e}");
                std::process::exit(1);
            }
            println!("(no {equiv_baseline_path}; skipping the equivalence-strategy gate)");
        }
        Ok(baseline) => {
            println!(
                "== equivalence-strategy gate: re-measuring E17 against {equiv_baseline_path} =="
            );
            let current = e17_rows();
            let echecks = match check_equiv_against(&baseline, &current) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("check-regression: {e}");
                    std::process::exit(1);
                }
            };
            let mut erows = Vec::new();
            for c in &echecks {
                erows.push(vec![
                    c.workload.clone(),
                    c.strategy.clone(),
                    format!("{:.2}", c.committed_redundancy),
                    format!("{:.2}", c.current_redundancy),
                    format!("{:.2}x", c.committed_speedup),
                    format!("{:.2}x", c.current_speedup),
                    if c.failures.is_empty() {
                        "ok".into()
                    } else {
                        "FAIL".into()
                    },
                ]);
                for f in &c.failures {
                    eprintln!("FAIL {} [{}]: {f}", c.workload, c.strategy);
                    failed = true;
                }
            }
            println!(
                "{}",
                render(
                    &[
                        "workload",
                        "strategy",
                        "committed_s/o",
                        "measured_s/o",
                        "committed",
                        "measured",
                        "verdict"
                    ],
                    &erows
                )
            );
            gated += echecks.len();
        }
    }
    let server_baseline_path = match args.iter().position(|a| a == "--server-baseline") {
        None => "BENCH_server.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("check-regression: --server-baseline takes a file path");
                std::process::exit(1);
            }
        },
    };
    match std::fs::read_to_string(&server_baseline_path) {
        Err(e) => {
            // Same contract as the equivalence gate: optional unless named.
            if args.iter().any(|a| a == "--server-baseline") {
                eprintln!("check-regression: reading {server_baseline_path}: {e}");
                std::process::exit(1);
            }
            println!("(no {server_baseline_path}; skipping the server-robustness gate)");
        }
        Ok(baseline) => {
            println!(
                "== server-robustness gate: smoke-scale E18 against {server_baseline_path} =="
            );
            // The gate re-runs the harness at smoke scale and checks
            // *invariants* (nothing lost, byte parity, total rejection
            // under zero quota, sound degradation, clean drain) — not
            // machine-dependent throughput numbers.
            let current = e18_server_load(&ServerLoadConfig::smoke());
            let schecks = match check_server_against(&baseline, &current) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("check-regression: {e}");
                    std::process::exit(1);
                }
            };
            let mut srows = Vec::new();
            for c in &schecks {
                srows.push(vec![
                    c.invariant.clone(),
                    c.committed.clone(),
                    c.current.clone(),
                    if c.failures.is_empty() {
                        "ok".into()
                    } else {
                        "FAIL".into()
                    },
                ]);
                for f in &c.failures {
                    eprintln!("FAIL {}: {f}", c.invariant);
                    failed = true;
                }
            }
            println!(
                "{}",
                render(&["invariant", "committed", "measured", "verdict"], &srows)
            );
            gated += schecks.len();
        }
    }
    let sat_baseline_path = match args.iter().position(|a| a == "--sat-baseline") {
        None => "BENCH_sat.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("check-regression: --sat-baseline takes a file path");
                std::process::exit(1);
            }
        },
    };
    match std::fs::read_to_string(&sat_baseline_path) {
        Err(e) => {
            // Same contract as the equivalence gate: optional unless named.
            if args.iter().any(|a| a == "--sat-baseline") {
                eprintln!("check-regression: reading {sat_baseline_path}: {e}");
                std::process::exit(1);
            }
            println!("(no {sat_baseline_path}; skipping the symbolic-backend gate)");
        }
        Ok(baseline) => {
            println!("== symbolic-backend gate: re-measuring E19 against {sat_baseline_path} ==");
            let current: Vec<_> = e19_workloads()
                .iter()
                .map(|(label, exec, mode)| e19_sat_point(label, exec, *mode))
                .collect();
            let satchecks = match check_sat_against(&baseline, &current) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("check-regression: {e}");
                    std::process::exit(1);
                }
            };
            let mut satrows = Vec::new();
            for c in &satchecks {
                satrows.push(vec![
                    c.workload.clone(),
                    c.committed_sat_wins.to_string(),
                    c.current_sat_wins.to_string(),
                    format!("{:.2}x", c.committed_incremental_speedup),
                    format!("{:.2}x", c.current_incremental_speedup),
                    if c.failures.is_empty() {
                        "ok".into()
                    } else {
                        "FAIL".into()
                    },
                ]);
                for f in &c.failures {
                    eprintln!("FAIL {}: {f}", c.workload);
                    failed = true;
                }
            }
            println!(
                "{}",
                render(
                    &[
                        "workload",
                        "sat_won",
                        "sat_wins",
                        "committed",
                        "measured",
                        "verdict"
                    ],
                    &satrows
                )
            );
            gated += satchecks.len();
        }
    }
    let prim_baseline_path = match args.iter().position(|a| a == "--primitives-baseline") {
        None => "BENCH_primitives.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("check-regression: --primitives-baseline takes a file path");
                std::process::exit(1);
            }
        },
    };
    match std::fs::read_to_string(&prim_baseline_path) {
        Err(e) => {
            // Same contract as the other optional gates.
            if args.iter().any(|a| a == "--primitives-baseline") {
                eprintln!("check-regression: reading {prim_baseline_path}: {e}");
                std::process::exit(1);
            }
            println!("(no {prim_baseline_path}; skipping the surface-primitive gate)");
        }
        Ok(baseline) => {
            println!("== surface-primitive gate: re-measuring E20 against {prim_baseline_path} ==");
            let current: Vec<_> = e20_workloads()
                .iter()
                .map(|(label, spec)| e20_point(label, spec))
                .collect();
            let pchecks = match check_primitives_against(&baseline, &current) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("check-regression: {e}");
                    std::process::exit(1);
                }
            };
            let mut prows = Vec::new();
            for c in &pchecks {
                prows.push(vec![
                    c.workload.clone(),
                    c.committed_shape.clone(),
                    c.current_shape.clone(),
                    if c.failures.is_empty() {
                        "ok".into()
                    } else {
                        "FAIL".into()
                    },
                ]);
                for f in &c.failures {
                    eprintln!("FAIL {}: {f}", c.workload);
                    failed = true;
                }
            }
            println!(
                "{}",
                render(&["workload", "committed", "measured", "verdict"], &prows)
            );
            gated += pchecks.len();
        }
    }
    if failed {
        eprintln!("perf-regression gate FAILED");
        std::process::exit(1);
    }
    println!("perf-regression gate passed ({gated} rows)");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-regression") {
        check_regression(&args[1..]);
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("e1") {
        let r = e1_figure1();
        println!("== E1: Figure 1 — who sees the forced ordering between the two Posts? ==");
        let rows = vec![
            vec!["EGP task graph".into(), r.egp_orders_posts.to_string()],
            vec!["HMW safe orderings".into(), r.hmw_orders_posts.to_string()],
            vec!["vector clocks".into(), r.vc_orders_posts.to_string()],
            vec![
                "exact MHB (preserve →D)".into(),
                r.exact_mhb_posts.to_string(),
            ],
            vec![
                "exact MHB (ignore →D, §5.3)".into(),
                r.exact_mhb_posts_ignoring_d.to_string(),
            ],
            vec![
                "EGP fork→Wait (solid line)".into(),
                r.egp_fork_before_wait.to_string(),
            ],
            vec![
                "C&S static (on the program)".into(),
                r.cs_orders_posts.to_string(),
            ],
        ];
        println!("{}", render(&["analysis", "orders the Posts?"], &rows));
    }

    if want("e2") {
        println!(
            "== E2: Table 1 relations materialized on the fixture gallery (ordered-pair counts) =="
        );
        let rows: Vec<Vec<String>> = e2_table1()
            .into_iter()
            .map(|r| {
                vec![
                    r.fixture.into(),
                    r.events.to_string(),
                    r.classes.to_string(),
                    r.mhb.to_string(),
                    r.chb.to_string(),
                    r.mcw.to_string(),
                    r.ccw.to_string(),
                    r.mow.to_string(),
                    r.cow.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                &["fixture", "|E|", "|F|", "MHB", "CHB", "MCW", "CCW", "MOW", "COW"],
                &rows
            )
        );
    }

    for (tag, kind, title) in [
        (
            "e3",
            ReductionKind::Semaphore,
            "E3/E4: Theorems 1–2 (semaphores) — a MHB b ⇔ unsat, b CHB a ⇔ sat",
        ),
        (
            "e5",
            ReductionKind::EventStyle,
            "E5: Theorems 3–4 (Post/Wait/Clear) — same claims",
        ),
    ] {
        if want(tag) {
            println!("== {title} ==");
            let rows: Vec<Vec<String>> = theorem_sweep(kind, &[(3, 2), (3, 3), (4, 4)], 3)
                .into_iter()
                .map(|r| {
                    vec![
                        format!("{}v/{}c", r.n_vars, r.n_clauses),
                        r.seed.to_string(),
                        r.events.to_string(),
                        r.sat.to_string(),
                        r.mhb_ab.to_string(),
                        r.chb_ba.to_string(),
                        r.consistent.to_string(),
                        ms(r.mhb_time),
                        ms(r.chb_time),
                        ms(r.dpll_time),
                    ]
                })
                .collect();
            println!(
                "{}",
                render(
                    &[
                        "size", "seed", "|E|", "sat", "aMHBb", "bCHBa", "ok", "mhb_ms", "chb_ms",
                        "dpll_ms"
                    ],
                    &rows
                )
            );
        }
    }

    if want("e6") {
        println!("== E6: exact (exponential) vs polynomial analyses, semaphore workloads ==");
        let mut rows = Vec::new();
        for (procs, epp) in [(2usize, 4usize), (3, 4), (4, 4), (5, 4), (6, 4), (7, 4)] {
            let r = e6_point(procs, epp, 7);
            rows.push(vec![
                r.processes.to_string(),
                r.events.to_string(),
                r.states.to_string(),
                r.classes.map_or("> budget".into(), |c| c.to_string()),
                ms(r.space_time),
                r.classes_time.map_or("—".into(), ms),
                ms(r.hmw_time),
                ms(r.vc_time),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "procs",
                    "|E|",
                    "states",
                    "|F|",
                    "space_ms",
                    "classes_ms",
                    "hmw_ms",
                    "vc_ms"
                ],
                &rows
            )
        );
    }

    if want("e7") {
        println!("== E7: baseline precision vs exact MHB (dependence-ignoring ground truth) ==");
        let mut rows = Vec::new();
        for style in [SyncStyle::Semaphores, SyncStyle::Events] {
            for r in e7_quality(style, 8) {
                let completeness = if r.exact_mhb_pairs == 0 {
                    "n/a".to_string()
                } else {
                    format!(
                        "{:.1}%",
                        100.0 * r.baseline_found as f64 / r.exact_mhb_pairs as f64
                    )
                };
                rows.push(vec![
                    r.style.into(),
                    r.baseline.into(),
                    r.traces.to_string(),
                    r.exact_mhb_pairs.to_string(),
                    r.baseline_found.to_string(),
                    completeness,
                    r.baseline_unsound.to_string(),
                ]);
            }
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "baseline",
                    "traces",
                    "exact_pairs",
                    "found",
                    "completeness",
                    "unsound"
                ],
                &rows
            )
        );
    }

    if want("e8") {
        println!("== E8: single counting semaphore — sequencing feasibility ⇔ b CHB a ==");
        let mut rows = Vec::new();
        for jobs in [3usize, 4, 5] {
            for seed in 0..3u64 {
                let r = e8_point(jobs, seed);
                rows.push(vec![
                    r.jobs.to_string(),
                    r.seed.to_string(),
                    r.feasible.to_string(),
                    r.consistent.to_string(),
                    ms(r.engine_time),
                    ms(r.dp_time),
                ]);
            }
        }
        println!(
            "{}",
            render(
                &["jobs", "seed", "feasible", "ok", "engine_ms", "dp_ms"],
                &rows
            )
        );
    }

    if want("e9") {
        println!("== E9: exhaustive vs vector-clock race detection ==");
        println!("(rows 'pitfall-k': k decoy V's hide the feasible race from the clocks)");
        let mut rows = Vec::new();
        for decoys in [1usize, 2, 4] {
            let r = e9_pitfall(decoys);
            rows.push(vec![
                format!("pitfall-{decoys}"),
                r.events.to_string(),
                r.candidates.to_string(),
                r.exact_races.to_string(),
                r.vc_races.to_string(),
                r.missed_by_vc.to_string(),
                r.spurious_in_vc.to_string(),
                ms(r.exact_time),
                ms(r.vc_time),
            ]);
        }
        for seed in 0..8u64 {
            let r = e9_point(seed);
            rows.push(vec![
                format!("random-{}", r.seed),
                r.events.to_string(),
                r.candidates.to_string(),
                r.exact_races.to_string(),
                r.vc_races.to_string(),
                r.missed_by_vc.to_string(),
                r.spurious_in_vc.to_string(),
                ms(r.exact_time),
                ms(r.vc_time),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "workload", "|E|", "cands", "exact", "vc", "missed", "spurious", "exact_ms",
                    "vc_ms"
                ],
                &rows
            )
        );
    }

    if want("e10") {
        println!("== E10: the open problem probed — event workloads with vs without Clear ==");
        let mut rows = Vec::new();
        for clears in [false, true] {
            let r = e10_no_clear(clears, 8);
            let completeness = if r.exact_mhb_pairs == 0 {
                "n/a".to_string()
            } else {
                format!(
                    "{:.1}%",
                    100.0 * r.egp_found as f64 / r.exact_mhb_pairs as f64
                )
            };
            rows.push(vec![
                if clears { "with Clear" } else { "no Clear" }.into(),
                r.traces.to_string(),
                r.exact_mhb_pairs.to_string(),
                r.egp_found.to_string(),
                completeness,
                r.total_classes.to_string(),
                r.deadlockable.to_string(),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "family",
                    "traces",
                    "exact_pairs",
                    "egp_found",
                    "egp_compl",
                    "Σ|F|",
                    "deadlockable"
                ],
                &rows
            )
        );
        let adv = e10_adversarial();
        println!(
            "adversarial instance (Theorem 3 program, unsat formula): \
             exact a MHB b = {}, EGP = {}, clocks = {}\n",
            adv.exact_mhb, adv.egp_mhb, adv.vc_mhb
        );
    }

    if want("e11") {
        println!("== E11: race detection with vs without static candidate pruning ==");
        println!("(both sides return the identical race set — asserted per row)");
        let mut rows = Vec::new();
        for (label, program) in e11_workloads() {
            let r = e11_point(&label, &program);
            rows.push(vec![
                r.label,
                r.events.to_string(),
                r.candidates.to_string(),
                r.pruned.to_string(),
                r.engine_queries.to_string(),
                r.races.to_string(),
                ms(r.unpruned_time),
                ms(r.pruned_time),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "cands",
                    "pruned",
                    "queries",
                    "races",
                    "unpruned_ms",
                    "pruned_ms"
                ],
                &rows
            )
        );
    }

    if want("ablation") {
        println!("== Ablation: sleep-set pruning, and parallel cut-lattice exploration ==");
        let gallery = vec![
            ("diamond", fixtures::fork_join_diamond().0),
            ("crossing", fixtures::crossing().0),
            ("figure1", fixtures::figure1().0),
        ];
        let mut prows = Vec::new();
        for (label, trace) in gallery {
            let exec = trace.to_execution().unwrap();
            let p = ablation_pruning(label, &exec);
            prows.push(vec![
                p.label.clone(),
                p.classes.to_string(),
                p.pruned_schedules.to_string(),
                p.naive_schedules.to_string(),
                ms(p.pruned_time),
                ms(p.naive_time),
            ]);
        }
        // Pruning also on a generated workload (bigger gap).
        {
            let mut spec = eo_lang::generator::WorkloadSpec::small_semaphore(3);
            spec.processes = 4;
            spec.events_per_process = 3;
            let exec = eo_lang::generator::generate_trace(&spec, 100)
                .to_execution()
                .unwrap();
            let p = ablation_pruning("workload-4x3", &exec);
            prows.push(vec![
                p.label.clone(),
                p.classes.to_string(),
                p.pruned_schedules.to_string(),
                p.naive_schedules.to_string(),
                ms(p.pruned_time),
                ms(p.naive_time),
            ]);
        }
        // Parallel exploration needs real frontiers: generated workloads.
        let mut qrows = Vec::new();
        for procs in [7usize, 8, 9] {
            let mut spec = eo_lang::generator::WorkloadSpec::small_semaphore(7);
            spec.processes = procs;
            spec.events_per_process = 5;
            spec.semaphores = (procs / 2).max(1);
            let exec = eo_lang::generator::generate_trace(&spec, 100)
                .to_execution()
                .unwrap();
            let q = ablation_parallel(&format!("workload-{procs}x5"), &exec);
            qrows.push(vec![
                q.label.clone(),
                q.states.to_string(),
                ms(q.seq_time),
                ms(q.par_time),
            ]);
        }
        println!(
            "{}",
            render(
                &[
                    "input",
                    "|F|",
                    "pruned_scheds",
                    "naive_scheds",
                    "pruned_ms",
                    "naive_ms"
                ],
                &prows
            )
        );
        println!(
            "{}",
            render(&["input", "states", "seq_ms", "par_ms"], &qrows)
        );
    }

    if want("e12") {
        println!(
            "== E12: engine hot-path overhaul — interned explorer vs pre-overhaul baseline =="
        );
        println!("(results asserted bit-identical per row; best-of-5 timings)");
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for (label, exec, mode) in e12_workloads() {
            let r = e12_engine_point(&label, &exec, mode);
            rows.push(vec![
                r.label.clone(),
                r.events.to_string(),
                r.states.to_string(),
                ms(r.baseline_time),
                ms(r.interned_time),
                format!("{:.2}x", r.speedup()),
                (r.baseline_bytes / 1024).to_string(),
                (r.interned_bytes / 1024).to_string(),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"states\": {}, ",
                    "\"baseline_ms\": {:.3}, \"interned_ms\": {:.3}, \"speedup\": {:.2}, ",
                    "\"baseline_events_per_sec\": {:.0}, \"interned_events_per_sec\": {:.0}, ",
                    "\"baseline_states_per_sec\": {:.0}, \"interned_states_per_sec\": {:.0}, ",
                    "\"baseline_peak_bytes\": {}, \"interned_peak_bytes\": {}}}"
                ),
                r.label,
                r.events,
                r.states,
                r.baseline_time.as_secs_f64() * 1e3,
                r.interned_time.as_secs_f64() * 1e3,
                r.speedup(),
                r.events_per_sec(r.baseline_time),
                r.events_per_sec(r.interned_time),
                r.states_per_sec(r.baseline_time),
                r.states_per_sec(r.interned_time),
                r.baseline_bytes,
                r.interned_bytes,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "states",
                    "baseline_ms",
                    "interned_ms",
                    "speedup",
                    "base_KiB",
                    "int_KiB"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e12_engine_hot_path\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
        println!("wrote BENCH_engine.json ({} workloads)\n", rows.len());
    }

    if want("e17") {
        println!("== E17: trace-equivalence ablation — schedules explored per strategy ==");
        println!("(order sets asserted identical across finishing strategies per workload)");
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for r in e17_rows() {
            rows.push(vec![
                r.workload.clone(),
                r.strategy.to_string(),
                r.events.to_string(),
                r.orders.to_string(),
                r.schedules.to_string(),
                format!("{:.2}", r.redundancy()),
                if r.truncated {
                    "TRUNC".into()
                } else {
                    "exact".into()
                },
                ms(r.time),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"strategy\": \"{}\", \"events\": {}, ",
                    "\"orders\": {}, \"schedules\": {}, \"redundancy\": {:.4}, ",
                    "\"truncated\": {}, \"time_ms\": {:.3}}}"
                ),
                r.workload,
                r.strategy.label(),
                r.events,
                r.orders,
                r.schedules,
                r.redundancy(),
                r.truncated,
                r.time.as_secs_f64() * 1e3,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "strategy",
                    "|E|",
                    "orders",
                    "schedules",
                    "sched/order",
                    "status",
                    "time_ms"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e17_trace_equivalence\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_equiv.json", &json).expect("write BENCH_equiv.json");
        println!("wrote BENCH_equiv.json ({} rows)\n", rows.len());
    }

    if want("e13") {
        println!(
            "== E13: graceful degradation — pairwise facts decided under 10% / 50% deadlines =="
        );
        println!("(every degraded answer is consistency-checked against the unbudgeted oracle)");
        let pct = |p: &DegradedPoint| {
            if p.exact {
                "exact".to_string()
            } else {
                format!("{:.1}%", p.decided_fraction * 100.0)
            }
        };
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for r in e13_degradation() {
            rows.push(vec![
                r.label.clone(),
                r.events.to_string(),
                r.full_states.to_string(),
                ms(r.full_time),
                pct(&r.at_10pct),
                r.at_10pct.states_explored.to_string(),
                pct(&r.at_50pct),
                r.at_50pct.states_explored.to_string(),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"full_states\": {}, ",
                    "\"full_ms\": {:.3}, ",
                    "\"at_10pct\": {{\"exact\": {}, \"decided_fraction\": {:.4}, ",
                    "\"states_explored\": {}}}, ",
                    "\"at_50pct\": {{\"exact\": {}, \"decided_fraction\": {:.4}, ",
                    "\"states_explored\": {}}}}}"
                ),
                r.label,
                r.events,
                r.full_states,
                r.full_time.as_secs_f64() * 1e3,
                r.at_10pct.exact,
                r.at_10pct.decided_fraction,
                r.at_10pct.states_explored,
                r.at_50pct.exact,
                r.at_50pct.decided_fraction,
                r.at_50pct.states_explored,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "states",
                    "full_ms",
                    "decided@10%",
                    "st@10%",
                    "decided@50%",
                    "st@50%"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e13_degradation\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_degradation.json", &json).expect("write BENCH_degradation.json");
        println!("wrote BENCH_degradation.json ({} workloads)\n", rows.len());
    }

    if want("e14") {
        println!("== E14: observability overhead — interned explorer, recording off vs on ==");
        println!("(results asserted bit-identical per row; best-of-7 timings)");
        let results = e14_obs_overhead();
        let armed = results.iter().any(|r| r.recording_armed);
        if !armed {
            println!("(binary built without the `obs` feature: both legs are identical code)");
        }
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let (mut total_off, mut total_on) = (0.0f64, 0.0f64);
        for r in &results {
            total_off += r.off_time.as_secs_f64();
            total_on += r.on_time.as_secs_f64();
            rows.push(vec![
                r.label.clone(),
                r.events.to_string(),
                r.states.to_string(),
                ms(r.off_time),
                ms(r.on_time),
                format!("{:+.2}%", r.overhead_pct()),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"states\": {}, ",
                    "\"off_ms\": {:.3}, \"on_ms\": {:.3}, \"overhead_pct\": {:.2}}}"
                ),
                r.label,
                r.events,
                r.states,
                r.off_time.as_secs_f64() * 1e3,
                r.on_time.as_secs_f64() * 1e3,
                r.overhead_pct(),
            ));
        }
        println!(
            "{}",
            render(
                &["workload", "|E|", "states", "off_ms", "on_ms", "overhead"],
                &rows
            )
        );
        let total_pct = (total_on / total_off - 1.0) * 100.0;
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e14_obs_overhead\",\n  \"recording_armed\": {},\n  \
             \"total_off_ms\": {:.3},\n  \"total_on_ms\": {:.3},\n  \
             \"total_overhead_pct\": {:.2},\n  \"rows\": [\n{}\n  ]\n}}\n",
            armed,
            total_off * 1e3,
            total_on * 1e3,
            total_pct,
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
        println!(
            "wrote BENCH_obs.json ({} workloads); aggregate overhead {total_pct:+.2}%",
            results.len()
        );
        // The DESIGN.md §9 contract: ≤2% aggregate overhead with the
        // feature on (and noise-level with it off). Aggregate, not
        // per-row — sub-millisecond rows are pure jitter.
        assert!(
            total_pct <= 2.0,
            "observability overhead {total_pct:.2}% exceeds the 2% budget"
        );
    }

    if want("e15") {
        println!("== E15: eo-serve — batch of 100 queries, one session vs 100 cold engine runs ==");
        println!("(answers asserted bit-identical per query; best-of-3 timings)");
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let mut e6_5x4_speedup = None;
        for (label, exec, mode) in e12_workloads() {
            let r = e15_serve_point(&label, &exec, mode);
            if r.label == "e6-5x4" {
                e6_5x4_speedup = Some(r.speedup());
            }
            rows.push(vec![
                r.label.clone(),
                r.events.to_string(),
                r.queries.to_string(),
                ms(r.cold_time),
                ms(r.batch_time),
                format!("{:.2}x", r.speedup()),
                r.cache_hits.to_string(),
                r.prefilter_hits.to_string(),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"queries\": {}, ",
                    "\"cold_ms\": {:.3}, \"batch_ms\": {:.3}, \"speedup\": {:.2}, ",
                    "\"cache_hits\": {}, \"prefilter_hits\": {}}}"
                ),
                r.label,
                r.events,
                r.queries,
                r.cold_time.as_secs_f64() * 1e3,
                r.batch_time.as_secs_f64() * 1e3,
                r.speedup(),
                r.cache_hits,
                r.prefilter_hits,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "queries",
                    "cold_ms",
                    "batch_ms",
                    "speedup",
                    "hits",
                    "prefilter"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e15_serve_batching\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json ({} workloads)", rows.len());
        // The tentpole's acceptance bar: batching must amortize at least
        // 10x on the e6-5x4 workload.
        let speedup = e6_5x4_speedup.expect("e12_workloads always includes e6-5x4");
        assert!(
            speedup >= 10.0,
            "serve batching speedup {speedup:.2}x on e6-5x4 is below the 10x bar"
        );
    }

    if want("e16") {
        println!("== E16: static MHP prefilter — zero-exploration race refutation ==");
        println!(
            "(race sets asserted bit-identical per row; every static ordering \
             checked against the §5.3 dependence-ignoring oracle)"
        );
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let mut sem_static_refuted = 0usize;
        for (label, program) in e16_workloads() {
            let r = e16_point(&label, &program);
            if r.label != "figure1" {
                sem_static_refuted += r.static_refuted;
            }
            rows.push(vec![
                r.label.clone(),
                r.events.to_string(),
                r.stmts.to_string(),
                r.candidates.to_string(),
                r.cs_pruned.to_string(),
                r.mhp_pruned.to_string(),
                r.static_refuted.to_string(),
                r.engine_queries.to_string(),
                r.races.to_string(),
                ms(r.unpruned_time),
                ms(r.mhp_time),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"stmts\": {}, ",
                    "\"candidates\": {}, \"cs_pruned\": {}, \"mhp_pruned\": {}, ",
                    "\"static_refuted\": {}, \"engine_queries\": {}, \"races\": {}, ",
                    "\"static_ordered_pairs\": {}, \"exact_mhb_pairs\": {}, ",
                    "\"unpruned_ms\": {:.3}, \"cs_ms\": {:.3}, \"mhp_ms\": {:.3}}}"
                ),
                r.label,
                r.events,
                r.stmts,
                r.candidates,
                r.cs_pruned,
                r.mhp_pruned,
                r.static_refuted,
                r.engine_queries,
                r.races.to_string(),
                r.static_ordered_pairs,
                r.exact_mhb_pairs,
                r.unpruned_time.as_secs_f64() * 1e3,
                r.cs_time.as_secs_f64() * 1e3,
                r.mhp_time.as_secs_f64() * 1e3,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "stmts",
                    "cands",
                    "cs",
                    "mhp",
                    "static",
                    "queries",
                    "races",
                    "unpruned_ms",
                    "mhp_ms"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e16_static_mhp_prefilter\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_mhp.json", &json).expect("write BENCH_mhp.json");
        println!("wrote BENCH_mhp.json ({} workloads)", rows.len());
        // The tentpole's acceptance bar: the static tier must discharge
        // real work — candidates refuted with zero exploration — on the
        // E9-style semaphore workloads.
        assert!(
            sem_static_refuted > 0,
            "the static MHP tier refuted no candidates on the E9-style semaphore workloads"
        );
    }

    if want("e19") {
        println!("== E19: enumeration vs symbolic — exact session vs incremental SAT session ==");
        println!(
            "(decisions asserted bit-identical across all three runs per row; \
             best-of-3 timings; sweep ordered by state-space size)"
        );
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let mut best_incremental = 0.0f64;
        for (label, exec, mode) in e19_workloads() {
            let r = e19_sat_point(&label, &exec, mode);
            best_incremental = best_incremental.max(r.incremental_speedup());
            rows.push(vec![
                r.workload.clone(),
                r.events.to_string(),
                r.queries.to_string(),
                ms(r.exact_time),
                ms(r.sat_batch_time),
                ms(r.sat_fresh_time),
                format!("{:.2}x", r.incremental_speedup()),
                if r.sat_wins { "sat" } else { "exact" }.into(),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"queries\": {}, ",
                    "\"exact_ms\": {:.3}, \"sat_batch_ms\": {:.3}, \"sat_fresh_ms\": {:.3}, ",
                    "\"incremental_speedup\": {:.2}, \"sat_wins\": {}}}"
                ),
                r.workload,
                r.events,
                r.queries,
                r.exact_time.as_secs_f64() * 1e3,
                r.sat_batch_time.as_secs_f64() * 1e3,
                r.sat_fresh_time.as_secs_f64() * 1e3,
                r.incremental_speedup(),
                r.sat_wins,
            ));
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "|E|",
                    "queries",
                    "exact_ms",
                    "sat_batch_ms",
                    "sat_fresh_ms",
                    "incremental",
                    "winner"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e19_symbolic_backend\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_sat.json", &json).expect("write BENCH_sat.json");
        println!("wrote BENCH_sat.json ({} workloads)", rows.len());
        // The tentpole's acceptance bar: sharing one formula and its
        // learned clauses across a batch must amortize at least 2x over
        // re-encoding per query somewhere in the sweep.
        assert!(
            best_incremental >= 2.0,
            "best incremental speedup {best_incremental:.2}x is below the 2x bar"
        );
    }

    if want("e20") {
        println!("== E20: surface primitives — desugaring overhead and backend agreement ==");
        println!(
            "(deterministic specs; order counts are exact; SAT answers asserted \
             bit-identical to the exact session; best-of-3 timings)"
        );
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        for (label, spec) in e20_workloads() {
            let r = e20_point(&label, &spec);
            rows.push(vec![
                r.workload.clone(),
                format!("{}\u{2192}{}", r.surface_stmts, r.core_stmts),
                format!("{:.2}x", r.expansion()),
                r.events.to_string(),
                r.exact_orders.to_string(),
                r.relaxed_orders.to_string(),
                ms(r.exact_time),
                ms(r.sat_time),
            ]);
            json_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"surface_stmts\": {}, \"core_stmts\": {}, ",
                    "\"expansion\": {:.2}, \"events\": {}, \"exact_orders\": {}, ",
                    "\"relaxed_orders\": {}, \"exact_ms\": {:.3}, \"sat_ms\": {:.3}}}"
                ),
                r.workload,
                r.surface_stmts,
                r.core_stmts,
                r.expansion(),
                r.events,
                r.exact_orders,
                r.relaxed_orders,
                r.exact_time.as_secs_f64() * 1e3,
                r.sat_time.as_secs_f64() * 1e3,
            ));
            // The §5.3 relaxation can only grow the order space.
            assert!(
                r.relaxed_orders >= r.exact_orders,
                "{}: ignoring dependences shrank F(P)",
                r.workload
            );
        }
        println!(
            "{}",
            render(
                &[
                    "workload",
                    "stmts",
                    "expansion",
                    "|E|",
                    "orders",
                    "orders(no-D)",
                    "exact_ms",
                    "sat_ms"
                ],
                &rows
            )
        );
        let json = format!(
            "{{\n  \"schema_version\": 2,\n  \"experiment\": \"e20_surface_primitives\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write("BENCH_primitives.json", &json).expect("write BENCH_primitives.json");
        println!("wrote BENCH_primitives.json ({} workloads)", rows.len());
    }

    if want("e18") {
        println!("== E18: network server under load and fault injection ==");
        println!(
            "(a million pipelined queries, thousands of clients, a hostile cohort; \
             every well-formed query must be answered, a verification cohort \
             byte-identical to `eo serve`)"
        );
        let r = e18_server_load(&ServerLoadConfig::full());
        println!(
            "{}",
            render(
                &[
                    "clients", "faulty", "queries", "answered", "lost", "qps", "p50_us", "p99_us",
                    "p999_us", "parity"
                ],
                &[vec![
                    r.good_clients.to_string(),
                    r.fault_clients.to_string(),
                    r.queries.to_string(),
                    r.answered.to_string(),
                    r.lost.to_string(),
                    format!("{:.0}", r.qps),
                    r.p50_us.to_string(),
                    r.p99_us.to_string(),
                    r.p999_us.to_string(),
                    r.parity_ok.to_string(),
                ]]
            )
        );
        println!(
            "{}",
            render(
                &[
                    "bad_frames",
                    "shed",
                    "timeout_kills",
                    "rejected",
                    "degraded",
                    "evictions",
                    "orphaned",
                    "drained_clean"
                ],
                &[vec![
                    r.report.bad_frames.to_string(),
                    r.report.shed.to_string(),
                    r.report.timeout_kills.to_string(),
                    format!("{}/{}", r.admission_rejected, r.admission_queries),
                    format!("{}/{}", r.degradation_degraded, r.degradation_queries),
                    r.report.evictions.to_string(),
                    r.report.orphaned.to_string(),
                    r.report.drained_clean.to_string(),
                ]]
            )
        );
        let json = server_load_json(&r);
        std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
        println!("wrote BENCH_server.json");
        // The tentpole's acceptance bars: nothing lost, byte parity with
        // the one-shot path, hostility absorbed, drain clean.
        assert_eq!(r.lost, 0, "a well-formed query went unanswered");
        assert!(r.parity_ok, "network responses diverged from `eo serve`");
        assert!(r.report.bad_frames > 0 && r.report.shed > 0);
        assert!(
            r.report.drained_clean,
            "the load server did not drain cleanly"
        );
    }
}
