//! The shared static context every lint queries.
//!
//! Built once per lint run: the flattened statement table, the
//! Callahan–Subhlok guaranteed orderings (including *entry* sets — see
//! [`StaticOrderings::completes_before_reaching`]), per-resource
//! statement indexes, and the *definiteness* classification.
//!
//! A statement is **definite** when it executes in every complete
//! execution of the program: it sits outside every conditional branch and
//! its process is *definitely started* (a root, or forked by a definite
//! fork site of a definitely-started process). Definiteness is what lets
//! a lint count supply soundly — a `V(s)` inside an untaken branch
//! supplies nothing.

use eo_approx::cs::StaticOrderings;
use eo_lang::stmt::{StmtId, StmtMap};
use eo_lang::{ProcRef, Program, StmtKind};

/// Shared precomputation for one lint run over a validated program.
pub(crate) struct Ctx<'p> {
    pub program: &'p Program,
    pub map: StmtMap<'p>,
    pub so: StaticOrderings,
    /// Per process definition: starts in every complete execution.
    pub definite_started: Vec<bool>,
    /// Per statement: executes in every complete execution.
    pub definite_stmt: Vec<bool>,
    /// Per process definition: the unique fork statement targeting it.
    pub fork_site: Vec<Option<StmtId>>,
    /// Per event variable: `Post`/`Wait`/`Clear` statements.
    pub posts: Vec<Vec<StmtId>>,
    pub waits: Vec<Vec<StmtId>>,
    pub clears: Vec<Vec<StmtId>>,
    /// Per semaphore: `P`/`V` statements.
    pub sem_ps: Vec<Vec<StmtId>>,
    pub sem_vs: Vec<Vec<StmtId>>,
    /// All `join` statements.
    pub joins: Vec<StmtId>,
    /// Per process definition: its potentially blocking statements
    /// (`P`, `Wait`, `join`), anywhere in the body including branches.
    pub blocking_of: Vec<Vec<StmtId>>,
}

impl<'p> Ctx<'p> {
    /// Builds the context. The program must already be validated.
    pub fn build(program: &'p Program) -> Ctx<'p> {
        let map = StmtMap::build(program);
        let so = StaticOrderings::analyze(program);
        let n_proc = program.processes.len();

        let mut fork_site: Vec<Option<StmtId>> = vec![None; n_proc];
        let mut posts = vec![Vec::new(); program.event_vars.len()];
        let mut waits = vec![Vec::new(); program.event_vars.len()];
        let mut clears = vec![Vec::new(); program.event_vars.len()];
        let mut sem_ps = vec![Vec::new(); program.semaphores.len()];
        let mut sem_vs = vec![Vec::new(); program.semaphores.len()];
        let mut joins = Vec::new();
        let mut blocking_of: Vec<Vec<StmtId>> = vec![Vec::new(); n_proc];

        for id in map.ids() {
            match map.kind(id) {
                StmtKind::Post(v) => posts[v.index()].push(id),
                StmtKind::Wait(v) => {
                    waits[v.index()].push(id);
                    blocking_of[map.process(id).index()].push(id);
                }
                StmtKind::Clear(v) => clears[v.index()].push(id),
                StmtKind::SemP(s) => {
                    sem_ps[s.index()].push(id);
                    blocking_of[map.process(id).index()].push(id);
                }
                StmtKind::SemV(s) => sem_vs[s.index()].push(id),
                StmtKind::Fork(targets) => {
                    for t in targets {
                        fork_site[t.index()] = Some(id);
                    }
                }
                StmtKind::Join(_) => {
                    joins.push(id);
                    blocking_of[map.process(id).index()].push(id);
                }
                _ => {}
            }
        }

        // Definitely-started, with a visiting guard: fork relationships
        // among never-started definitions can be circular (A forks B, B
        // forks A — statically valid, dynamically dead), and circular
        // means "not definite".
        let mut definite_started = vec![None::<bool>; n_proc];
        fn started(
            p: usize,
            program: &Program,
            map: &StmtMap<'_>,
            fork_site: &[Option<StmtId>],
            memo: &mut [Option<bool>],
            visiting: &mut Vec<usize>,
        ) -> bool {
            if let Some(v) = memo[p] {
                return v;
            }
            if visiting.contains(&p) {
                return false; // circular fork chain: never starts
            }
            let v = if program.processes[p].root {
                true
            } else {
                match fork_site[p] {
                    None => false,
                    Some(fs) => {
                        visiting.push(p);
                        let parent_ok = started(
                            map.process(fs).index(),
                            program,
                            map,
                            fork_site,
                            memo,
                            visiting,
                        );
                        visiting.pop();
                        parent_ok && map.parent(fs).is_none()
                    }
                }
            };
            memo[p] = Some(v);
            v
        }
        let mut visiting = Vec::new();
        for p in 0..n_proc {
            started(
                p,
                program,
                &map,
                &fork_site,
                &mut definite_started,
                &mut visiting,
            );
        }
        let definite_started: Vec<bool> = definite_started
            .into_iter()
            .map(|v| v.unwrap_or(false))
            .collect();

        let definite_stmt: Vec<bool> = map
            .ids()
            .map(|id| map.parent(id).is_none() && definite_started[map.process(id).index()])
            .collect();

        Ctx {
            program,
            map,
            so,
            definite_started,
            definite_stmt,
            fork_site,
            posts,
            waits,
            clears,
            sem_ps,
            sem_vs,
            joins,
            blocking_of,
        }
    }

    /// The chain of fork sites that must execute before process `p` can
    /// start: `[(fork stmt, forking process), …]` from `p`'s own fork
    /// site upward toward a root. Guarded against circular fork chains.
    pub fn fork_chain(&self, p: ProcRef) -> Vec<(StmtId, ProcRef)> {
        let mut chain = Vec::new();
        let mut seen = vec![false; self.program.processes.len()];
        let mut cur = p;
        while !self.program.processes[cur.index()].root {
            if seen[cur.index()] {
                break;
            }
            seen[cur.index()] = true;
            match self.fork_site[cur.index()] {
                None => break,
                Some(fs) => {
                    let owner = self.map.process(fs);
                    chain.push((fs, owner));
                    cur = owner;
                }
            }
        }
        chain
    }

    /// A supplier statement is *pre-committed* when it is guaranteed to
    /// have completed before its own process can block anywhere: once the
    /// process starts, the supply arrives before any chance of getting
    /// stuck. Such suppliers need no wait-for edge to their process
    /// (vacuously true for processes with no blocking statements at all).
    pub fn pre_committed(&self, q: StmtId) -> bool {
        let qp = self.map.process(q);
        self.blocking_of[qp.index()]
            .iter()
            .all(|&b| b == q || self.so.completes_before_reaching(q, b))
    }

    /// Name of process `p`.
    pub fn proc_name(&self, p: ProcRef) -> &str {
        &self.program.processes[p.index()].name
    }
}
