//! Property tests for the interpreter: every emitted trace is valid,
//! deterministic per seed, and bounded by the program's static shape.

use eo_lang::generator::{random_program, WorkloadSpec};
use eo_lang::{run_to_trace, RunError, Scheduler};
use proptest::prelude::*;

fn spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        2usize..=4,
        2usize..=5,
        0u64..5000,
        prop::bool::ANY,
        0.0f64..=1.0,
    )
        .prop_map(|(procs, epp, seed, sem, density)| {
            let mut s = if sem {
                WorkloadSpec::small_semaphore(seed)
            } else {
                WorkloadSpec::small_events(seed)
            };
            s.processes = procs;
            s.events_per_process = epp;
            s.sync_density = density;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the interpreter emits validates as a sequentially
    /// consistent trace — for every scheduler.
    #[test]
    fn emitted_traces_validate(spec in spec(), sched_seed in 0u64..100) {
        let program = random_program(&spec);
        for mut sched in [
            Scheduler::deterministic(),
            Scheduler::round_robin(),
            Scheduler::random(sched_seed),
        ] {
            match run_to_trace(&program, &mut sched) {
                Ok(trace) => {
                    prop_assert!(trace.validate().is_ok());
                    prop_assert!(trace.n_events() <= program.max_events());
                }
                Err(RunError::Deadlock { .. }) => {} // legal outcome
                Err(e @ RunError::Invalid(_)) => {
                    prop_assert!(false, "generator built an invalid program: {e}");
                }
            }
        }
    }

    /// Reruns with the same scheduler seed are bit-identical.
    #[test]
    fn runs_are_deterministic_per_seed(spec in spec(), sched_seed in 0u64..100) {
        let program = random_program(&spec);
        let a = run_to_trace(&program, &mut Scheduler::random(sched_seed));
        let b = run_to_trace(&program, &mut Scheduler::random(sched_seed));
        prop_assert_eq!(a, b);
    }

    /// Every event's label/op comes from the program: the event count per
    /// process equals the statements executed, and no process exceeds its
    /// static statement count.
    #[test]
    fn per_process_counts_are_bounded(spec in spec()) {
        let program = random_program(&spec);
        if let Ok(trace) = run_to_trace(&program, &mut Scheduler::deterministic()) {
            for (pi, events) in trace.per_process().iter().enumerate() {
                let decl = &trace.processes[pi];
                let def = program
                    .processes
                    .iter()
                    .find(|d| d.name == decl.name)
                    .expect("every runtime process comes from a definition");
                // No conditionals in generated workloads: counts match
                // exactly.
                prop_assert_eq!(events.len(), def.body.len());
            }
        }
    }

    /// All schedulers execute the same multiset of operations when they
    /// complete (same program ⇒ same events, only order differs) — the
    /// paper's premise "the same events, different orderings".
    #[test]
    fn completed_runs_perform_identical_events(spec in spec(), s1 in 0u64..50, s2 in 50u64..100) {
        let program = random_program(&spec);
        let r1 = run_to_trace(&program, &mut Scheduler::random(s1));
        let r2 = run_to_trace(&program, &mut Scheduler::random(s2));
        if let (Ok(t1), Ok(t2)) = (r1, r2) {
            let key = |t: &eo_model::Trace| {
                let mut v: Vec<String> = t
                    .events
                    .iter()
                    .map(|e| {
                        format!(
                            "{}|{:?}|{:?}|{:?}|{:?}",
                            t.processes[e.process.index()].name, e.op, e.reads, e.writes, e.label
                        )
                    })
                    .collect();
                v.sort();
                v
            };
            prop_assert_eq!(key(&t1), key(&t2));
        }
    }
}

/// Conditionals make event sets *observation-dependent* — the
/// counterexample to the property above when shared data steers control
/// flow, i.e. precisely the situation the paper's feasibility condition
/// F3 (preserve →D) exists to handle.
#[test]
fn branching_programs_can_perform_different_events() {
    use eo_lang::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    let x = b.variable("x");
    let writer = b.process("writer");
    b.assign(writer, x, 1);
    let reader = b.process("reader");
    b.if_eq(
        reader,
        x,
        1,
        |then| {
            then.compute_here("saw_one");
        },
        |els| {
            els.compute_here("saw_zero");
        },
    );
    let program = b.build();

    // Deterministic: writer (pid 0) first → reader sees 1.
    let t1 = run_to_trace(&program, &mut Scheduler::deterministic()).unwrap();
    assert!(t1.event_labeled("saw_one").is_some());

    // Priority the reader first → it sees 0: different events entirely.
    let t2 = run_to_trace(&program, &mut Scheduler::priority(vec![1, 0])).unwrap();
    assert!(t2.event_labeled("saw_zero").is_some());
    assert!(t2.event_labeled("saw_one").is_none());
}
