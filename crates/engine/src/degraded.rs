//! Sound degraded answers for analyses the supervisor stopped early.
//!
//! Theorems 1–4 make the exact relations intractable in the worst case,
//! so a budgeted run can end with the state space or the class
//! enumeration only partially explored. This module squeezes every drop
//! of *sound* information out of such a partial run by sandwiching it
//! between two one-sided approximations:
//!
//! * **Existential facts from the partial exact pass.** The truncated
//!   cut-lattice pass only marks a state completable when a fully
//!   explored complete state is reachable from it through recorded
//!   edges, so every CHB/overlap bit it sets is witnessed by a genuinely
//!   feasible execution — a partial graph under-approximates but never
//!   fabricates. Likewise every induced order the truncated enumeration
//!   recorded came from a complete feasible schedule. Facts proved this
//!   way are tagged [`Fact::Exact`].
//! * **Universal facts from the polynomial guarantee baselines.** The
//!   happened-before closure of `eo_approx`'s HMW safe orderings
//!   ([`SafeOrderings`](eo_approx::SafeOrderings)) and EGP task graph
//!   ([`TaskGraph`](eo_approx::TaskGraph)) hold in *every* execution of
//!   the same events — they are sound under-approximations of MHB in
//!   both feasibility modes. `G(a,b)` therefore proves `a MHB b`,
//!   refutes `b CHB a`, and refutes `CCW(a,b)`, all without any search.
//!   Facts proved this way are tagged [`Fact::Bounded`].
//!
//!   (The vector-clock baseline is deliberately **not** used here: as
//!   DESIGN.md and experiment E7 show, its Lamport-style V→P matching
//!   can order events that a different feasible token matching leaves
//!   concurrent, so it is not a sound bound on MHB.)
//!
//! Pairs neither side decides are [`Fact::Unknown`]. By construction a
//! decided fact never contradicts the unbudgeted oracle — the
//! differential test suite asserts exactly that on every fixture.

use crate::ctx::SearchCtx;
use crate::engine::EngineError;
use crate::statespace::StateSpaceResult;
use crate::summary::OrderingSummary;
use eo_model::EventId;
use eo_relations::Relation;

/// What a degraded run knows about one relation instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fact {
    /// Decided by the partial exact pass (a concrete witness, or a
    /// complete state space): the oracle's answer.
    Exact(bool),
    /// Decided by a sound polynomial bound (HMW ∪ EGP): guaranteed to
    /// match the oracle, but proved without search.
    Bounded(bool),
    /// The budget ran out before either side could decide.
    Unknown,
}

impl Fact {
    /// The decided value, if any.
    #[inline]
    pub fn decided(self) -> Option<bool> {
        match self {
            Fact::Exact(v) | Fact::Bounded(v) => Some(v),
            Fact::Unknown => None,
        }
    }

    /// Whether the fact is decided at all.
    #[inline]
    pub fn is_decided(self) -> bool {
        !matches!(self, Fact::Unknown)
    }
}

/// The structured result of an analysis the supervisor stopped early:
/// per-pair MHB/CHB/CCW facts, each tagged with how it was decided, plus
/// the stop reason and partial-progress counters.
///
/// Built by [`ExactEngine::analyze`](crate::ExactEngine::analyze) when
/// the budget runs out; every decided fact is consistent with what the
/// unbudgeted engine would answer (see the module docs for why).
#[derive(Clone, Debug)]
pub struct DegradedSummary {
    n: usize,
    reason: EngineError,
    /// Row-major n×n fact matrices (diagonal entries are `Exact(false)`).
    mhb: Vec<Fact>,
    chb: Vec<Fact>,
    ccw: Vec<Fact>,
    states_explored: usize,
    completable_states: usize,
    orders_found: usize,
    space_complete: bool,
}

impl DegradedSummary {
    /// Derives the fact matrices from a (possibly partial) cut-lattice
    /// pass and the induced orders a (possibly truncated) enumeration
    /// recorded. `space_complete` says the lattice pass finished — its
    /// relations are then exact even though the enumeration was cut.
    pub(crate) fn build(
        ctx: &SearchCtx<'_>,
        space: &StateSpaceResult,
        space_complete: bool,
        orders: &[Relation],
        reason: EngineError,
    ) -> DegradedSummary {
        let n = ctx.n_events();
        let exec = ctx.exec();
        eo_obs::gauge_str(eo_obs::report::DEGRADATION_CAUSE, reason.cause_label());

        // The guarantee relation G: sound MHB under-approximation.
        let mut g = eo_approx::SafeOrderings::compute(exec).relation().clone();
        g.union_with(eo_approx::TaskGraph::build(exec).relation());

        // Witnesses from the recorded complete schedules.
        let mut ord_some = Relation::new(n);
        let mut unord_some = Relation::new(n);
        for order in orders {
            ord_some.union_with(order);
            for a in 0..n {
                for b in (a + 1)..n {
                    if order.unordered(a, b) {
                        unord_some.insert(a, b);
                        unord_some.insert(b, a);
                    }
                }
            }
        }

        let mut mhb = vec![Fact::Unknown; n * n];
        let mut chb = vec![Fact::Unknown; n * n];
        let mut ccw = vec![Fact::Unknown; n * n];
        for a in 0..n {
            for b in 0..n {
                let i = a * n + b;
                if a == b {
                    mhb[i] = Fact::Exact(false);
                    chb[i] = Fact::Exact(false);
                    ccw[i] = Fact::Exact(false);
                    continue;
                }
                if space_complete {
                    // A finished lattice pass answers all three exactly,
                    // independent of how far the enumeration got.
                    mhb[i] = Fact::Exact(!space.chb.contains(b, a));
                    chb[i] = Fact::Exact(space.chb.contains(a, b));
                    ccw[i] = Fact::Exact(space.overlap.contains(a, b));
                    continue;
                }
                // A recorded order leaving the pair unordered witnesses
                // both temporal orders (and an operational overlap, since
                // induced concurrency implies operational concurrency).
                let chb_ab_true = space.chb.contains(a, b)
                    || ord_some.contains(a, b)
                    || unord_some.contains(a, b);
                let chb_ba_true = space.chb.contains(b, a)
                    || ord_some.contains(b, a)
                    || unord_some.contains(a, b);

                chb[i] = if chb_ab_true {
                    Fact::Exact(true)
                } else if g.contains(b, a) {
                    // b before a in every execution: a never precedes b.
                    Fact::Bounded(false)
                } else {
                    Fact::Unknown
                };
                // a MHB b ⇔ ¬CHB(b,a); a CHB(b,a) witness refutes it
                // exactly, and G proves it outright.
                mhb[i] = if chb_ba_true {
                    Fact::Exact(false)
                } else if g.contains(a, b) {
                    Fact::Bounded(true)
                } else {
                    Fact::Unknown
                };
                ccw[i] = if space.overlap.contains(a, b) || unord_some.contains(a, b) {
                    Fact::Exact(true)
                } else if g.contains(a, b) || g.contains(b, a) {
                    // A guaranteed order in either direction rules out
                    // any overlap.
                    Fact::Bounded(false)
                } else {
                    Fact::Unknown
                };
            }
        }

        DegradedSummary {
            n,
            reason,
            mhb,
            chb,
            ccw,
            states_explored: space.states,
            completable_states: space.completable_states,
            orders_found: orders.len(),
            space_complete,
        }
    }

    /// Number of events.
    #[inline]
    pub fn n_events(&self) -> usize {
        self.n
    }

    /// Why the supervisor stopped the exact analysis.
    pub fn reason(&self) -> &EngineError {
        &self.reason
    }

    /// What the run knows about `a MHB b`.
    pub fn mhb(&self, a: EventId, b: EventId) -> Fact {
        self.mhb[a.index() * self.n + b.index()]
    }

    /// What the run knows about `a CHB b`.
    pub fn chb(&self, a: EventId, b: EventId) -> Fact {
        self.chb[a.index() * self.n + b.index()]
    }

    /// What the run knows about operational `a CCW b`.
    pub fn ccw(&self, a: EventId, b: EventId) -> Fact {
        self.ccw[a.index() * self.n + b.index()]
    }

    /// Cut-lattice states explored before the stop.
    #[inline]
    pub fn states_explored(&self) -> usize {
        self.states_explored
    }

    /// States proved completable in the partial lattice.
    #[inline]
    pub fn completable_states(&self) -> usize {
        self.completable_states
    }

    /// Distinct induced orders recorded before the stop (a lower bound on
    /// |F(P)|).
    #[inline]
    pub fn orders_found(&self) -> usize {
        self.orders_found
    }

    /// Whether the cut-lattice pass ran to completion (only the class
    /// enumeration was cut).
    #[inline]
    pub fn space_complete(&self) -> bool {
        self.space_complete
    }

    /// `(exact, bounded, unknown)` tallies for one fact matrix over the
    /// off-diagonal pairs.
    fn tally(&self, facts: &[Fact]) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                match facts[a * self.n + b] {
                    Fact::Exact(_) => t.0 += 1,
                    Fact::Bounded(_) => t.1 += 1,
                    Fact::Unknown => t.2 += 1,
                }
            }
        }
        t
    }

    /// `(exact, bounded, unknown)` MHB tallies over ordered pairs.
    pub fn mhb_counts(&self) -> (usize, usize, usize) {
        self.tally(&self.mhb)
    }

    /// `(exact, bounded, unknown)` CHB tallies over ordered pairs.
    pub fn chb_counts(&self) -> (usize, usize, usize) {
        self.tally(&self.chb)
    }

    /// `(exact, bounded, unknown)` CCW tallies over ordered pairs.
    pub fn ccw_counts(&self) -> (usize, usize, usize) {
        self.tally(&self.ccw)
    }

    /// Total relation instances the summary covers: MHB, CHB and CCW over
    /// every ordered pair of distinct events.
    pub fn total_pairs(&self) -> usize {
        3 * self.n * self.n.saturating_sub(1)
    }

    /// How many of [`total_pairs`](Self::total_pairs) are decided
    /// (exactly or by a bound).
    pub fn decided_pairs(&self) -> usize {
        let (me, mb, _) = self.mhb_counts();
        let (ce, cb, _) = self.chb_counts();
        let (oe, ob, _) = self.ccw_counts();
        me + mb + ce + cb + oe + ob
    }

    /// Fraction of relation instances decided, in `[0, 1]` (1.0 for an
    /// empty event set).
    pub fn decided_fraction(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            1.0
        } else {
            self.decided_pairs() as f64 / total as f64
        }
    }

    /// Upgrades `Unknown` facts from an external guarantee-style ordering
    /// relation: `ordered(a, b)` must mean "`a` completes before `b`
    /// begins in every execution" (for example the event-level projection
    /// of the `eo-mhp` whole-program verdicts). The rules are exactly the
    /// ones the polynomial G bound uses — `ordered(a,b)` proves `a MHB b`,
    /// refutes `b CHB a`, and refutes `CCW(a,b)` — so upgraded facts are
    /// tagged [`Fact::Bounded`] and stay consistent with the oracle.
    /// Already-decided facts are never overwritten.
    ///
    /// # Panics
    /// Panics if the relation's dimension differs from the event count.
    pub fn apply_static_bounds(&mut self, ordered: &Relation) {
        assert_eq!(
            ordered.len(),
            self.n,
            "static ordering relation must be over this summary's events"
        );
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let i = a * self.n + b;
                let (ab, ba) = (ordered.contains(a, b), ordered.contains(b, a));
                if self.mhb[i] == Fact::Unknown && ab {
                    self.mhb[i] = Fact::Bounded(true);
                }
                if self.chb[i] == Fact::Unknown && ba {
                    self.chb[i] = Fact::Bounded(false);
                }
                if self.ccw[i] == Fact::Unknown && (ab || ba) {
                    self.ccw[i] = Fact::Bounded(false);
                }
            }
        }
    }

    /// Verifies every decided fact against an unbudgeted oracle summary,
    /// returning a description of the first contradiction. The
    /// differential suite runs this on every fixture; a failure means a
    /// soundness bug, not bad luck.
    pub fn check_consistency_against(&self, oracle: &OrderingSummary) -> Result<(), String> {
        if self.n != oracle.n_events() {
            return Err(format!(
                "event-count mismatch: degraded {} vs oracle {}",
                self.n,
                oracle.n_events()
            ));
        }
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                let checks = [
                    ("MHB", self.mhb(ea, eb), oracle.mhb(ea, eb)),
                    ("CHB", self.chb(ea, eb), oracle.chb(ea, eb)),
                    ("CCW", self.ccw(ea, eb), oracle.ccw(ea, eb)),
                ];
                for (name, fact, truth) in checks {
                    if let Some(claim) = fact.decided() {
                        if claim != truth {
                            return Err(format!(
                                "{name}({ea},{eb}): degraded claims {claim} ({fact:?}) \
                                 but the oracle says {truth}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_decided_projection() {
        assert_eq!(Fact::Exact(true).decided(), Some(true));
        assert_eq!(Fact::Bounded(false).decided(), Some(false));
        assert_eq!(Fact::Unknown.decided(), None);
        assert!(Fact::Exact(false).is_decided());
        assert!(!Fact::Unknown.is_decided());
    }
}
