//! Per-connection state: an incremental frame decoder on the read side,
//! a bounded frame queue with explicit load-shedding on the write side,
//! and the activity clocks the reactor's timeout sweep reads.
//!
//! The write queue distinguishes *owed* frames (responses to well-formed
//! requests — the exactly-one-response invariant lives or dies on these)
//! from *droppable* ones (overload rejections, malformed-frame errors:
//! best-effort courtesy to clients that are already misbehaving). When
//! the queue exceeds its watermark the shedder removes the oldest
//! droppable frame — never an owed frame, and never the head frame once
//! any of its bytes have reached the socket (a torn frame would desync
//! the client's decoder, turning our overload into their corruption). If
//! nothing is droppable the queue simply grows and the write timeout
//! eventually kills the stalled reader, which is the correct end for a
//! client that asks questions and never reads answers.

use super::frame::FrameDecoder;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

struct OutFrame {
    bytes: Vec<u8>,
    droppable: bool,
}

/// What one read attempt produced.
pub(crate) enum ReadOutcome {
    /// Bytes arrived and were pushed into the decoder.
    Data,
    /// The peer closed its write side (EOF).
    Closed,
    /// Nothing available right now.
    WouldBlock,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    pub decoder: FrameDecoder,
    outq: VecDeque<OutFrame>,
    /// Bytes of the head frame already written to the socket.
    head_written: usize,
    queued_bytes: usize,
    /// Fingerprint of the program this connection has opened, if any.
    pub attached: Option<u64>,
    /// Requests routed to a worker and not yet answered.
    pub inflight: usize,
    /// Frames received so far; the next frame's 1-based sequence number
    /// is `frames_seen + 1` (it doubles as the error-report `line`).
    pub frames_seen: usize,
    /// Last time any bytes arrived.
    pub last_read: Instant,
    /// Last time a *complete* frame was decoded — the slowloris clock: a
    /// partial frame older than the read timeout kills the connection
    /// however diligently its bytes trickle in.
    pub last_frame: Instant,
    /// Last time a write made progress (or the queue went non-empty).
    pub last_write: Instant,
    /// Peer sent EOF; the connection lingers only to flush owed frames.
    pub read_closed: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, max_frame: usize, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame),
            outq: VecDeque::new(),
            head_written: 0,
            queued_bytes: 0,
            attached: None,
            inflight: 0,
            frames_seen: 0,
            last_read: now,
            last_frame: now,
            last_write: now,
            read_closed: false,
        }
    }

    /// Queued frames not yet fully written.
    pub fn queue_len(&self) -> usize {
        self.outq.len()
    }

    /// Unwritten bytes across the queue (the backpressure measure: the
    /// reactor stops *reading* a connection whose queue is over the high
    /// watermark, which surfaces to the client as TCP backpressure).
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Nothing left to write.
    pub fn is_flushed(&self) -> bool {
        self.outq.is_empty()
    }

    /// Whether the reactor has stopped reading this connection: at the
    /// in-flight cap or over the write-queue high watermark. Shared by
    /// the read sweep (which skips such connections) and the timeout
    /// sweep (whose slowloris clock must not run while we are the ones
    /// refusing to read).
    pub fn backpressured(&self, per_conn_inflight: usize, write_high_watermark: usize) -> bool {
        self.inflight >= per_conn_inflight || self.queued_bytes() >= write_high_watermark
    }

    /// Enqueues one encoded frame; returns how many frames were shed to
    /// keep the queue at or under `max_queue` frames.
    pub fn enqueue(&mut self, bytes: Vec<u8>, droppable: bool, max_queue: usize) -> u64 {
        if self.outq.is_empty() {
            // The write clock measures stall-while-pending, so it starts
            // when the queue goes non-empty, not at the last old write.
            self.last_write = Instant::now();
        }
        self.queued_bytes += bytes.len();
        self.outq.push_back(OutFrame { bytes, droppable });
        let mut shed = 0;
        while self.queue_len() > max_queue {
            let Some(victim) = self
                .outq
                .iter()
                .enumerate()
                // The head is off-limits once partially written.
                .skip(if self.head_written > 0 { 1 } else { 0 })
                .find(|(_, f)| f.droppable)
                .map(|(i, _)| i)
            else {
                break; // everything is owed: let the queue grow
            };
            let f = self.outq.remove(victim).expect("index from enumerate");
            self.queued_bytes -= f.bytes.len();
            shed += 1;
        }
        shed
    }

    /// Writes as much queued data as the socket accepts. Returns whether
    /// any bytes moved. Frames leave the queue only when fully written.
    pub fn flush(&mut self, now: Instant) -> io::Result<bool> {
        let mut progressed = false;
        while let Some(head) = self.outq.front() {
            let remaining = &head.bytes[self.head_written..];
            match self.stream.write(remaining) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    progressed = true;
                    self.last_write = now;
                    self.queued_bytes -= n;
                    self.head_written += n;
                    if self.head_written == head.bytes.len() {
                        self.outq.pop_front();
                        self.head_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }

    /// Reads once into the decoder through `buf`.
    pub fn read_some(&mut self, buf: &mut [u8], now: Instant) -> io::Result<ReadOutcome> {
        match self.stream.read(buf) {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => {
                self.last_read = now;
                self.decoder.push(&buf[..n]);
                Ok(ReadOutcome::Data)
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn shedding_drops_oldest_droppable_and_never_owed_frames() {
        let (a, _b) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(a, 1024, now);
        // Queue: owed, droppable(1), owed, droppable(2) — cap 3 forces one
        // shed per overflow, oldest droppable first.
        assert_eq!(conn.enqueue(b"owed-1".to_vec(), false, 3), 0);
        assert_eq!(conn.enqueue(b"drop-1".to_vec(), true, 3), 0);
        assert_eq!(conn.enqueue(b"owed-2".to_vec(), false, 3), 0);
        assert_eq!(conn.enqueue(b"drop-2".to_vec(), true, 3), 1);
        assert_eq!(conn.queue_len(), 3);
        let kept: Vec<&[u8]> = conn.outq.iter().map(|f| f.bytes.as_slice()).collect();
        assert_eq!(kept, [b"owed-1".as_slice(), b"owed-2", b"drop-2"]);
        // All-owed overflow: nothing sheds, the queue grows past the cap.
        assert_eq!(conn.enqueue(b"owed-3".to_vec(), false, 3), 1); // drop-2 goes
        assert_eq!(conn.enqueue(b"owed-4".to_vec(), false, 3), 0);
        assert_eq!(conn.queue_len(), 4);
        assert!(conn.outq.iter().all(|f| !f.droppable));
    }

    #[test]
    fn flush_tracks_partial_writes_and_byte_counts() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).expect("nonblocking");
        let now = Instant::now();
        let mut conn = Conn::new(a, 1024, now);
        let payload = vec![7u8; 64 * 1024];
        let total = payload.len();
        conn.enqueue(payload, false, 8);
        assert_eq!(conn.queued_bytes(), total);
        // Drain in lockstep until everything lands on the peer.
        let mut received = 0usize;
        let mut sink = vec![0u8; 128 * 1024];
        for _ in 0..1000 {
            let _ = conn.flush(Instant::now()).expect("flush");
            if let Ok(n) = b.read(&mut sink) {
                received += n;
            }
            if conn.is_flushed() && received == total {
                break;
            }
        }
        assert!(conn.is_flushed());
        assert_eq!(received, total);
        assert_eq!(conn.queued_bytes(), 0);
    }
}
