//! Pins `"schema_version": 1` on every JSON document the toolchain emits:
//! `eo analyze --json`, `eo lint --json`, `eo serve` responses, the
//! metrics and Chrome-trace exports, and the committed BENCH files.
//! Consumers key parsers on this field; bumping it is an API change and
//! must be deliberate (this test is the tripwire).

use std::process::Command;

const FIGURE1: &str = "testdata/figure1.trace.json";

fn eo(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_eo"))
        .args(args)
        .output()
        .expect("spawning eo");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn assert_version_one(doc: &str, what: &str) {
    let v = eo_obs::json::parse(doc).unwrap_or_else(|e| panic!("{what}: invalid JSON: {e}"));
    assert_eq!(
        v.get("schema_version").and_then(|s| s.as_i64()),
        Some(1),
        "{what} must carry schema_version 1: {doc}"
    );
}

#[test]
fn cli_json_documents_carry_schema_version_one() {
    assert_version_one(&eo(&["analyze", FIGURE1, "--json"]), "analyze exact");
    assert_version_one(
        &eo(&["analyze", FIGURE1, "--json", "--timeout", "0"]),
        "analyze degraded",
    );
    assert_version_one(
        &eo(&[
            "analyze",
            FIGURE1,
            "--json",
            "--no-degrade",
            "--timeout",
            "0",
        ]),
        "analyze --no-degrade error",
    );
    assert_version_one(&eo(&["lint", FIGURE1, "--json"]), "lint report");
    assert_version_one(
        &eo(&["lint", FIGURE1, FIGURE1, "--json"]),
        "multi-file lint report",
    );
    assert_version_one(&eo(&["mhp", FIGURE1, "--json"]), "mhp report");
}

#[test]
fn serve_responses_carry_schema_version_one() {
    let (trace, _) = eo_model::fixtures::figure1();
    let exec = trace.to_execution().expect("fixture is valid");
    let input = "{\"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                 {\"op\": \"summary\"}\n\
                 {\"op\": \"races\"}\n\
                 {\"op\": \"nope\"}\n";
    let out = eo_serve::serve_batch(&exec, input, &eo_serve::ServeConfig::default());
    assert_eq!(out.responses.len(), 4);
    for (i, response) in out.responses.iter().enumerate() {
        assert_version_one(response, &format!("serve response {i}"));
    }
}

#[test]
fn observability_exports_carry_schema_version_one() {
    let run = eo_obs::finish();
    let report = eo_obs::report::aggregate(&run);
    assert_version_one(
        &eo_obs::report::metrics_to_json(&report.metrics_with_defaults()),
        "metrics export",
    );
    assert_version_one(&eo_obs::report::trace_to_json(&report), "trace export");
    // Round-tripping must not resurrect the version field as a metric.
    let text = eo_obs::report::metrics_to_json(&report.metrics_with_defaults());
    let parsed = eo_obs::report::metrics_from_json(&text).expect("metrics parse");
    assert!(
        !parsed.contains_key("schema_version"),
        "schema_version is framing, not a metric"
    );
}

#[test]
fn committed_bench_files_carry_schema_version_one() {
    for name in [
        "BENCH_engine.json",
        "BENCH_degradation.json",
        "BENCH_obs.json",
        "BENCH_serve.json",
        "BENCH_mhp.json",
        "BENCH_server.json",
        "BENCH_equiv.json",
        "BENCH_sat.json",
    ] {
        let text = std::fs::read_to_string(name)
            .unwrap_or_else(|e| panic!("{name} must be committed at the repo root: {e}"));
        assert_version_one(&text, name);
    }
}
