//! Protocol-hostility tests: a seeded corpus of malformed, truncated,
//! and oversized inputs thrown at both serving front ends — `serve_batch`
//! (the `eo serve --batch`/stdin path) and the TCP server. The invariants
//! under fire:
//!
//! * no panic, no hang, no killed connection or process;
//! * every malformed input costs exactly one structured error response
//!   (at the right `line` for the batch path);
//! * well-formed requests interleaved with the hostility are still
//!   answered, exactly and in order.
//!
//! Randomness is a seeded LCG so every run exercises the identical
//! corpus; bump `ROUNDS` locally for a longer soak.

use eo_model::fixtures;
use eo_obs::json::{self, Value};
use eo_serve::net::{NetClient, Server, ServerConfig, ServerHandle, ServerReport};
use eo_serve::{serve_batch, ServeConfig};
use std::net::SocketAddr;
use std::time::Duration;

/// Deterministic corpus driver (numerical-recipes LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn figure1_json() -> String {
    let (trace, _) = fixtures::figure1();
    trace.to_value().pretty()
}

fn status_of(doc: &str) -> String {
    json::parse(doc)
        .expect("response is valid JSON")
        .get("status")
        .and_then(Value::as_str)
        .expect("response carries status")
        .to_owned()
}

/// Hostile *line* payloads for the NDJSON batch path: each is one input
/// line that must produce exactly one `status: "error"` response.
fn hostile_line(rng: &mut Lcg) -> String {
    match rng.pick(7) {
        0 => "this is not json at all".to_owned(),
        1 => r#"{"id": 1, "op": "mhb""#.to_owned(), // truncated JSON
        2 => r#"{"id": [1,2], "op": 42}"#.to_owned(), // wrong types
        3 => format!(
            r#"{{"id": 1, "op": "mhb", "a": {}, "b": 0}}"#,
            "9".repeat(40)
        ),
        4 => format!("{{\"junk\": \"{}\"}}", "x".repeat(64 * 1024)), // huge but valid JSON, no op
        5 => r#"{"id": 7, "op": "frobnicate"}"#.to_owned(),          // unknown op
        6 => "\u{1}\u{2}\u{3}garbage\u{7f}".to_owned(),              // control chars
        _ => unreachable!(),
    }
}

#[test]
fn the_batch_path_answers_every_hostile_line_with_one_positioned_error() {
    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().expect("fixture is valid");
    let mut rng = Lcg(0x5eed_0001);

    const ROUNDS: usize = 60;
    let mut lines = Vec::new();
    let mut expect_error = Vec::new(); // 1-based line numbers owed an error
    for i in 0..ROUNDS {
        if i % 3 == 0 {
            lines.push(format!(r#"{{"id": {i}, "op": "mhb", "a": 0, "b": 1}}"#));
        } else {
            lines.push(hostile_line(&mut rng));
            expect_error.push(lines.len());
        }
    }
    let input = lines.join("\n");
    let outcome = serve_batch(
        &exec,
        &input,
        &ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );

    assert_eq!(
        outcome.responses.len(),
        lines.len(),
        "exactly one response per input line"
    );
    let mut errored_lines = Vec::new();
    for response in &outcome.responses {
        let v = json::parse(response).expect("every response is valid JSON");
        match v.get("status").and_then(Value::as_str) {
            Some("error") => {
                let line = v
                    .get("line")
                    .and_then(Value::as_i64)
                    .expect("batch errors carry the offending line");
                errored_lines.push(line as usize);
            }
            Some("exact") => {}
            other => panic!("unexpected status {other:?} in {response}"),
        }
    }
    assert_eq!(
        errored_lines, expect_error,
        "each hostile line errors at its own position, nothing else does"
    );
}

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Hostile *frame* byte sequences. Each is self-terminating (resyncs at
/// its trailing newline) and owes exactly one error response.
fn hostile_frame(rng: &mut Lcg, max_frame: usize) -> Vec<u8> {
    match rng.pick(8) {
        0 => b"complete garbage, no frame shape\n".to_vec(),
        1 => format!("{}:too big\n", max_frame + 1).into_bytes(), // oversized declared length
        2 => b"abc:not a number\n".to_vec(),                      // non-numeric prefix
        3 => b"123456789:way too many digits\n".to_vec(),
        4 => b"4:\xff\xfe\xfd\xfc\n".to_vec(), // right length, not UTF-8
        5 => b"7:not-jsonX\n".to_vec(),        // wrong terminator position
        6 => b"12:{\"truncated\"\n".to_vec(),  // valid frame, invalid JSON
        7 => b"0:\n".to_vec(),                 // empty payload
        _ => unreachable!(),
    }
}

#[test]
fn the_tcp_server_survives_a_hostile_frame_storm_and_still_answers() {
    let config = ServerConfig {
        max_frame: 16 * 1024,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        idle_timeout: Duration::from_secs(30),
        drain_deadline: Duration::from_secs(5),
        drain_grace: Duration::from_secs(5),
        ..Default::default()
    };
    let max_frame = config.max_frame;
    let (addr, handle, join) = start(config);
    let mut client = NetClient::connect(addr).expect("connect");
    let opened = client.open(&figure1_json()).expect("open");
    assert_eq!(status_of(&opened), "ok");

    let mut rng = Lcg(0x5eed_0002);
    const ROUNDS: usize = 100;
    let mut sent_hostile = 0usize;
    let mut sent_queries = 0usize;
    // Interleave: hostile bytes, then a well-formed request, pipelined.
    for i in 0..ROUNDS {
        client
            .send_raw(&hostile_frame(&mut rng, max_frame))
            .expect("send hostile bytes");
        sent_hostile += 1;
        if i % 4 == 0 {
            client
                .send(&format!(r#"{{"id": {i}, "op": "mhb", "a": 0, "b": 1}}"#))
                .expect("send query");
            sent_queries += 1;
        } else {
            client
                .send(&format!(r#"{{"id": "p{i}", "op": "ping"}}"#))
                .expect("send ping");
        }
    }

    // One response per input, hostile or not: collect them all and sort
    // by status. Errors are droppable under pressure, but a promptly
    // reading client applies no pressure, so nothing sheds here.
    let mut errors = 0usize;
    let mut exact = 0usize;
    let mut pongs = 0usize;
    for _ in 0..(2 * ROUNDS) {
        let doc = client.recv().expect("response");
        match status_of(&doc).as_str() {
            "error" => errors += 1,
            "exact" => exact += 1,
            "ok" => pongs += 1,
            other => panic!("unexpected status {other} in {doc}"),
        }
    }
    assert_eq!(
        errors, sent_hostile,
        "one structured error per hostile input"
    );
    assert_eq!(exact, sent_queries, "hostility never costs a real answer");
    assert_eq!(pongs, ROUNDS - sent_queries);

    // An oversized *program* is refused as an oversized frame, and the
    // connection (and everyone else's session) lives on.
    let huge_program = eo_serve::net::client::open_request(&"x".repeat(2 * max_frame), None);
    client.send(&huge_program).expect("send oversized open");
    let refused = client.recv().expect("refusal");
    assert_eq!(status_of(&refused), "error");
    let answer = client
        .request(r#"{"id": "after", "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query after oversized open");
    assert_eq!(status_of(&answer), "exact");

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert!(report.drained_clean, "drain stays clean under hostility");
    assert_eq!(report.shed, 0, "a reading client suffers no shedding");
}

#[test]
fn a_truncated_frame_followed_by_disconnect_is_harmless() {
    let config = ServerConfig {
        read_timeout: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let (addr, handle, join) = start(config);

    // A batch of clients that each send a *prefix* of a valid frame and
    // vanish mid-request: no response is owed, nothing may crash.
    let full = b"39:{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n".to_vec();
    let mut rng = Lcg(0x5eed_0003);
    for _ in 0..20 {
        let cut = 1 + rng.pick(full.len() - 1);
        let mut client = NetClient::connect(addr).expect("connect");
        client.send_raw(&full[..cut]).expect("send truncated frame");
        drop(client); // mid-request disconnect
    }

    // The server is still fully alive for a well-behaved client.
    let mut client = NetClient::connect(addr).expect("connect");
    let opened = client.open(&figure1_json()).expect("open");
    assert_eq!(status_of(&opened), "ok");
    let answer = client
        .request(r#"{"id": 1, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query");
    assert_eq!(status_of(&answer), "exact");

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert!(report.drained_clean);
    assert_eq!(report.accepted, 21);
}
