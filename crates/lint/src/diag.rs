//! Structured diagnostics: what a lint found, where, and how bad.

use eo_lang::StmtId;
use eo_model::json::Value;
use eo_model::EventId;

/// How serious a diagnostic is.
///
/// Ordering is by severity: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style or informational finding; never indicates a possible hang.
    Info,
    /// The program *may* misbehave (block forever, lose a signal) in some
    /// execution.
    Warning,
    /// The program *will* misbehave on every execution reaching the
    /// flagged statement.
    Error,
}

impl Severity {
    /// Lowercase name used in rendered output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// The whole program (aggregate findings, e.g. semaphore imbalance).
    Program,
    /// A static statement (AST-level lints).
    Stmt(StmtId),
    /// An observed event (trace-level lints).
    Event(EventId),
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code (`EO-L0xx`).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// What the finding points at.
    pub anchor: Anchor,
    /// Human-readable rendering of the anchor (process, index, kind).
    pub location: String,
    /// One-line description of the finding.
    pub message: String,
    /// Supporting detail (supplier sites, cycle edges, counts).
    pub notes: Vec<String>,
}

/// The outcome of a lint run: every finding, ordered most severe first
/// (ties broken by anchor position, then code).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Sorts diagnostics into report order: severity descending, then
    /// anchor position, then code.
    pub(crate) fn finish(mut self) -> LintReport {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| anchor_key(&a.anchor).cmp(&anchor_key(&b.anchor)))
                .then_with(|| a.code.cmp(b.code))
        });
        self
    }

    /// No findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Clean for synchronization purposes: nothing at `Warning` or above.
    /// (`Info`-level style findings do not count against cleanliness.)
    pub fn is_clean(&self) -> bool {
        !self.worst_at_least(Severity::Warning)
    }

    /// Any `Error`-level findings?
    pub fn has_errors(&self) -> bool {
        self.worst_at_least(Severity::Error)
    }

    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Is any finding at least `sev`?
    pub fn worst_at_least(&self, sev: Severity) -> bool {
        self.diagnostics.iter().any(|d| d.severity >= sev)
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// All findings carrying `code`.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the report as compiler-style text, one block per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            out.push_str(&format!("  --> {}\n", d.location));
            for note in &d.notes {
                out.push_str(&format!("  note: {note}\n"));
            }
        }
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if self.diagnostics.is_empty() {
            out.push_str("clean: no findings\n");
        } else {
            out.push_str(&format!(
                "{e} error(s), {w} warning(s), {i} info finding(s)\n"
            ));
        }
        out
    }

    /// Renders the report as a JSON value (the `--json` output of
    /// `eo lint`).
    pub fn to_json(&self) -> Value {
        let diags = self
            .diagnostics
            .iter()
            .map(|d| {
                let anchor = match d.anchor {
                    Anchor::Program => Value::Object(vec![(
                        "kind".to_string(),
                        Value::Str("program".to_string()),
                    )]),
                    Anchor::Stmt(s) => Value::Object(vec![
                        ("kind".to_string(), Value::Str("stmt".to_string())),
                        ("index".to_string(), Value::Int(s.index() as i64)),
                    ]),
                    Anchor::Event(e) => Value::Object(vec![
                        ("kind".to_string(), Value::Str("event".to_string())),
                        ("index".to_string(), Value::Int(e.index() as i64)),
                    ]),
                };
                Value::Object(vec![
                    ("code".to_string(), Value::Str(d.code.to_string())),
                    (
                        "severity".to_string(),
                        Value::Str(d.severity.name().to_string()),
                    ),
                    ("anchor".to_string(), anchor),
                    ("location".to_string(), Value::Str(d.location.clone())),
                    ("message".to_string(), Value::Str(d.message.clone())),
                    (
                        "notes".to_string(),
                        Value::Array(d.notes.iter().map(|n| Value::Str(n.clone())).collect()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "schema_version".to_string(),
                Value::Int(eo_obs::report::SCHEMA_VERSION),
            ),
            ("diagnostics".to_string(), Value::Array(diags)),
            (
                "errors".to_string(),
                Value::Int(self.count(Severity::Error) as i64),
            ),
            (
                "warnings".to_string(),
                Value::Int(self.count(Severity::Warning) as i64),
            ),
            (
                "infos".to_string(),
                Value::Int(self.count(Severity::Info) as i64),
            ),
        ])
    }
}

fn anchor_key(a: &Anchor) -> (u8, usize) {
    match a {
        Anchor::Program => (0, 0),
        Anchor::Stmt(s) => (1, s.index()),
        Anchor::Event(e) => (1, e.index()),
    }
}

/// Stable diagnostic codes, one per lint.
pub mod codes {
    /// `Wait(v)` where `v` is never posted anywhere and starts clear.
    pub const WAIT_NEVER_POSTED: &str = "EO-L001";
    /// `Wait(v)` where `v` also has `Clear`s that may race the posts.
    pub const WAIT_CLEAR_RACE: &str = "EO-L002";
    /// `P(s)` that no execution can ever supply.
    pub const SEM_NEVER_SUPPLIED: &str = "EO-L003";
    /// More possible `P(s)` than guaranteed supply — some execution may
    /// starve.
    pub const SEM_MAY_STARVE: &str = "EO-L004";
    /// `Post(v)` always erased by a `Clear(v)` before any `Wait` can
    /// observe it.
    pub const DEAD_POST: &str = "EO-L005";
    /// `join` on a process whose `fork` is not guaranteed to happen
    /// first.
    pub const JOIN_MAYBE_UNFORKED: &str = "EO-L006";
    /// A cycle in the static wait-for graph — potential deadlock.
    pub const DEADLOCK_CYCLE: &str = "EO-L007";
    /// A forked process no `join` ever awaits (style).
    pub const FORKED_NEVER_JOINED: &str = "EO-L008";
    /// `Wait(v)` whose posts are all conditional — some execution may
    /// never supply it.
    pub const WAIT_MAYBE_UNSUPPLIED: &str = "EO-L009";
    /// Two conflicting shared-variable accesses the MHP analysis cannot
    /// order: a potential data race (opt-in, `LintOptions::mhp`).
    pub const MHP_STATIC_RACE: &str = "EO-L010";
    /// A statement the MHP analysis proves can never execute in any
    /// execution (opt-in, `LintOptions::mhp`).
    pub const MHP_UNREACHABLE: &str = "EO-L011";
    /// A blocking `Wait`/`P` the MHP analysis proves can never fire — its
    /// process hangs forever (opt-in, `LintOptions::mhp`).
    pub const MHP_BLOCKED_FOREVER: &str = "EO-L012";
    /// Misuse of a surface primitive (barrier, mutex/condvar monitor,
    /// bounded channel): unlocking a mutex the process does not hold,
    /// `cond_wait` without the lock, relocking a held (non-reentrant)
    /// mutex, receiving on a never-sent channel, over-sending past
    /// capacity plus receives, or (style) signalling a condvar nothing
    /// awaits.
    pub const SURFACE_MISUSE: &str = "EO-L013";

    /// The codes that indicate a potential (or certain) permanent block —
    /// the "may deadlock" family used by the cross-checks against the
    /// interpreter's dynamic deadlock detection.
    pub const BLOCKING_FAMILY: &[&str] = &[
        WAIT_NEVER_POSTED,
        WAIT_CLEAR_RACE,
        SEM_NEVER_SUPPLIED,
        SEM_MAY_STARVE,
        JOIN_MAYBE_UNFORKED,
        DEADLOCK_CYCLE,
        WAIT_MAYBE_UNSUPPLIED,
    ];
}
