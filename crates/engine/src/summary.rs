//! The six Table-1 relations, materialized.

use crate::enumerate::EnumerationResult;
use crate::statespace::StateSpaceResult;
use eo_model::EventId;
use eo_relations::Relation;

/// All six ordering relations of the paper's Table 1, computed exactly
/// over F(P).
///
/// | relation | method | reading |
/// |---|---|---|
/// | must-have-happened-before  | [`mhb`](Self::mhb)  | `a` precedes `b` in **every** feasible execution |
/// | could-have-happened-before | [`chb`](Self::chb)  | `a` precedes `b` in **some** feasible execution |
/// | must-be-concurrent         | [`mcw`](Self::mcw)  | no feasible execution forces an order |
/// | could-be-concurrent        | [`ccw`](Self::ccw)  | some feasible execution can overlap them |
/// | must-be-ordered            | [`mow`](Self::mow)  | every feasible execution forces *some* order |
/// | could-be-ordered           | [`cow`](Self::cow)  | some feasible execution forces some order |
///
/// See the crate docs for the exact semantics of "forced" vs. "temporal";
/// [`ccw_induced`](Self::ccw_induced) exposes the class-based reading of
/// could-be-concurrent alongside the default operational one.
#[derive(Clone, Debug)]
pub struct OrderingSummary {
    n: usize,
    /// ∃ feasible schedule with `a` strictly before `b`.
    chb: Relation,
    /// Operational concurrency (symmetric).
    overlap: Relation,
    /// ∀ →T′ ∈ F : a →T′ b.
    all_ordered: Relation,
    /// ∃ →T′ ∈ F : a →T′ b.
    some_ordered: Relation,
    /// ∃ →T′ ∈ F with a ∥T′ b (symmetric).
    some_unordered: Relation,
    /// |F(P)| — the number of distinct induced orders.
    classes: usize,
    /// States in the cut lattice.
    states: usize,
}

impl OrderingSummary {
    /// Combines a cut-lattice pass and a (non-truncated) class enumeration
    /// into the full summary.
    ///
    /// # Panics
    /// Panics if the enumeration was truncated (a truncated F cannot
    /// answer `∀`-questions) or produced no orders (every execution has at
    /// least its observed schedule).
    pub fn from_parts(space: &StateSpaceResult, classes: &EnumerationResult) -> Self {
        assert!(
            !classes.truncated,
            "cannot summarize over a truncated feasible set"
        );
        assert!(
            !classes.orders.is_empty(),
            "F(P) is never empty: the observed execution is feasible"
        );
        let n = classes.orders[0].len();
        let mut all_ordered = classes.orders[0].clone();
        let mut some_ordered = classes.orders[0].clone();
        let mut some_unordered = Relation::new(n);
        for order in &classes.orders {
            all_ordered.intersect_with(order);
            some_ordered.union_with(order);
        }
        for order in &classes.orders {
            for a in 0..n {
                for b in (a + 1)..n {
                    if order.unordered(a, b) {
                        some_unordered.insert(a, b);
                        some_unordered.insert(b, a);
                    }
                }
            }
        }
        OrderingSummary {
            n,
            chb: space.chb.clone(),
            overlap: space.overlap.clone(),
            all_ordered,
            some_ordered,
            some_unordered,
            classes: classes.orders.len(),
            states: space.states,
        }
    }

    /// Number of events.
    #[inline]
    pub fn n_events(&self) -> usize {
        self.n
    }

    /// |F(P)|: how many distinct feasible executions (induced orders)
    /// exist.
    #[inline]
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Cut-lattice size explored for the schedule-quantified relations.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// `a MHB b`: every feasible execution runs `a` before `b`.
    pub fn mhb(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.chb.contains(b.index(), a.index())
    }

    /// `a CHB b`: some feasible execution runs `a` (completes) before `b`
    /// (begins).
    pub fn chb(&self, a: EventId, b: EventId) -> bool {
        self.chb.contains(a.index(), b.index())
    }

    /// Class-based variant of CHB: some induced order *forces* `a` before
    /// `b`. Implies [`chb`](Self::chb).
    pub fn chb_forced(&self, a: EventId, b: EventId) -> bool {
        self.some_ordered.contains(a.index(), b.index())
    }

    /// `a CCW b` (operational): some feasible execution reaches a
    /// completable state with both events ready — a parallel machine could
    /// overlap them.
    pub fn ccw(&self, a: EventId, b: EventId) -> bool {
        self.overlap.contains(a.index(), b.index())
    }

    /// `a CCW b` (class-based): some induced order leaves the pair
    /// unordered. Always a subset of [`ccw`](Self::ccw).
    pub fn ccw_induced(&self, a: EventId, b: EventId) -> bool {
        self.some_unordered.contains(a.index(), b.index())
    }

    /// `a MCW b`: every feasible execution leaves the pair unordered
    /// (concurrent).
    pub fn mcw(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.cow(a, b)
    }

    /// `a MOW b`: every feasible execution orders the pair (one way or the
    /// other) — they can never be concurrent.
    pub fn mow(&self, a: EventId, b: EventId) -> bool {
        a != b && !self.ccw_induced(a, b)
    }

    /// `a COW b`: some feasible execution orders the pair.
    pub fn cow(&self, a: EventId, b: EventId) -> bool {
        self.some_ordered.contains(a.index(), b.index())
            || self.some_ordered.contains(b.index(), a.index())
    }

    /// The full MHB relation as a matrix (for comparing against the
    /// polynomial baselines).
    pub fn mhb_relation(&self) -> Relation {
        let mut out = Relation::new(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b && !self.chb.contains(b, a) {
                    out.insert(a, b);
                }
            }
        }
        out
    }

    /// The full CHB relation as a matrix.
    pub fn chb_relation(&self) -> &Relation {
        &self.chb
    }

    /// The full operational CCW relation as a (symmetric) matrix.
    pub fn ccw_relation(&self) -> &Relation {
        &self.overlap
    }

    /// The full class-based CCW relation as a (symmetric) matrix.
    pub fn ccw_induced_relation(&self) -> &Relation {
        &self.some_unordered
    }

    /// The `∀`-ordered matrix (MHB computed class-side); equals
    /// [`mhb_relation`](Self::mhb_relation) — the test suites assert this
    /// identity, which cross-validates the two independent engines.
    pub fn all_ordered_relation(&self) -> &Relation {
        &self.all_ordered
    }

    /// Internal consistency checks relating the six relations; returns a
    /// description of the first violated identity, if any. Test suites run
    /// this on every summary they build.
    #[allow(clippy::nonminimal_bool)] // the identities read as stated in the docs
    pub fn check_identities(&self) -> Result<(), String> {
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                if self.mhb(ea, eb) != self.all_ordered.contains(a, b) {
                    return Err(format!(
                        "MHB({ea},{eb}) disagrees between schedule and class engines"
                    ));
                }
                if self.mhb(ea, eb) && !self.chb(ea, eb) {
                    return Err(format!("MHB({ea},{eb}) without CHB({ea},{eb})"));
                }
                if self.chb_forced(ea, eb) && !self.chb(ea, eb) {
                    return Err(format!("forced CHB({ea},{eb}) without temporal CHB"));
                }
                if self.ccw_induced(ea, eb) && !self.ccw(ea, eb) {
                    return Err(format!("induced CCW({ea},{eb}) without operational CCW"));
                }
                if self.mcw(ea, eb) && !self.ccw_induced(ea, eb) {
                    return Err(format!("MCW({ea},{eb}) without induced CCW"));
                }
                if self.mow(ea, eb) != !self.ccw_induced(ea, eb) {
                    return Err(format!("MOW({ea},{eb}) must equal ¬CCW_induced"));
                }
                if self.mcw(ea, eb) != !self.cow(ea, eb) {
                    return Err(format!("MCW({ea},{eb}) must equal ¬COW"));
                }
                if self.mhb(ea, eb) && !self.cow(ea, eb) {
                    return Err(format!("MHB({ea},{eb}) implies COW"));
                }
                if !self.chb(ea, eb) && !self.chb(eb, ea) {
                    return Err(format!(
                        "some schedule orders {ea},{eb} one way or the other"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{FeasibilityMode, SearchCtx};
    use crate::enumerate::enumerate_classes;
    use crate::statespace::explore_statespace;
    use eo_model::fixtures;

    fn summarize(trace: &eo_model::Trace) -> (OrderingSummary, eo_model::ProgramExecution) {
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let space = explore_statespace(&ctx, 1 << 20).unwrap();
        let classes = enumerate_classes(&ctx, 1 << 20);
        let s = OrderingSummary::from_parts(&space, &classes);
        s.check_identities().unwrap();
        (s, exec)
    }

    #[test]
    fn independent_pair_is_must_concurrent() {
        let (trace, a, b) = fixtures::independent_pair();
        let (s, _) = summarize(&trace);
        assert!(s.mcw(a, b), "never forced apart");
        assert!(s.ccw(a, b));
        assert!(
            s.chb(a, b) && s.chb(b, a),
            "either may happen first by timing"
        );
        assert!(!s.mhb(a, b) && !s.mhb(b, a));
        assert!(!s.mow(a, b) && !s.cow(a, b));
    }

    #[test]
    fn handshake_is_must_ordered() {
        let (trace, ids) = fixtures::sem_handshake();
        let (s, _) = summarize(&trace);
        assert!(s.mhb(ids.v, ids.p));
        assert!(!s.chb(ids.p, ids.v));
        assert!(s.mow(ids.v, ids.p));
        assert!(s.cow(ids.v, ids.p));
        assert!(!s.ccw(ids.v, ids.p));
        assert!(!s.mcw(ids.v, ids.p));
        // Tails: concurrent in every feasible execution.
        assert!(s.mcw(ids.after_v, ids.after_p));
    }

    #[test]
    fn figure1_summary_matches_the_paper() {
        let (trace, ids) = fixtures::figure1();
        let (s, _) = summarize(&trace);
        // The two Posts cannot execute in either order: the left one must
        // precede the right one (paper, Section 4 discussion of Fig. 1).
        assert!(s.mhb(ids.post_left, ids.post_right));
        assert!(!s.chb(ids.post_right, ids.post_left));
        assert!(!s.ccw(ids.post_left, ids.post_right));
    }

    #[test]
    fn mhb_relation_matrix_matches_pointwise() {
        let (trace, _) = fixtures::sem_handshake();
        let (s, _) = summarize(&trace);
        let m = s.mhb_relation();
        for a in 0..s.n_events() {
            for b in 0..s.n_events() {
                assert_eq!(
                    m.contains(a, b),
                    s.mhb(EventId::new(a), EventId::new(b)),
                    "({a},{b})"
                );
            }
        }
        assert_eq!(&m, s.all_ordered_relation());
    }

    #[test]
    fn diamond_identities_hold() {
        let (trace, ids) = fixtures::fork_join_diamond();
        let (s, _) = summarize(&trace);
        assert!(s.mcw(ids.left, ids.right));
        assert!(s.mhb(ids.fork, ids.join));
        assert!(s.mhb(ids.pre, ids.post));
    }

    #[test]
    fn clear_chain_identities_hold() {
        let (trace, _ids) = fixtures::post_wait_clear_chain();
        let (s, _) = summarize(&trace);
        assert!(s.class_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_enumeration_is_rejected() {
        // The Clear chain has many schedule classes, so a budget of 1
        // genuinely truncates (the diamond's single class would not).
        let (trace, _ids) = fixtures::post_wait_clear_chain();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let space = explore_statespace(&ctx, 1 << 20).unwrap();
        let classes = enumerate_classes(&ctx, 1);
        assert!(classes.truncated);
        let _ = OrderingSummary::from_parts(&space, &classes);
    }

    /// The truncation contract holds under *every* equivalence strategy:
    /// however coarse the quotient, a search stopped at the schedule cap
    /// must refuse to answer `∀`-questions.
    #[test]
    fn truncated_enumeration_is_rejected_under_every_strategy() {
        use crate::enumerate::enumerate_classes_with;
        use crate::equiv::EquivStrategy;
        let (trace, _ids) = fixtures::post_wait_clear_chain();
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let space = explore_statespace(&ctx, 1 << 20).unwrap();
        for strategy in EquivStrategy::ALL {
            // The chain has 10 induced orders, so a cap of 1 truncates
            // even the perfectly pruned canonical searches.
            let classes = enumerate_classes_with(&ctx, 1, strategy);
            assert!(classes.truncated, "{strategy}: cap 1 must truncate");
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                OrderingSummary::from_parts(&space, &classes)
            }));
            assert!(
                panicked.is_err(),
                "{strategy}: a truncated F(P) must refuse to summarize"
            );
        }
    }
}
