//! Symbolic ordering backend: partial-order CNF encodings over an
//! incremental CDCL solver.
//!
//! ROADMAP item 1 realized: instead of enumerating interleavings, encode
//! the feasibility constraints of ⟨E, →T, →D⟩ directly as CNF — in the
//! style of Alglave–Kroening–Tautschnig's partial-order BMC encoding —
//! and answer MHB/CHB/CCW and witness queries with one
//! `solve_assuming` call each against a single shared formula. Learned
//! clauses accumulate across a whole batch of queries, which is where the
//! symbolic backend earns its keep on the query-heavy serve workloads
//! (experiment E19 measures both the enumeration↔symbolic crossover and
//! the batched-incremental vs. per-query-fresh gap).
//!
//! The crate is deliberately small: [`encode::PoEncoding`] owns the
//! encoding and the embedded [`eo_sat::Solver`]; budget integration and
//! engine-facing plumbing live in `eo-engine`'s `sat_backend`, and the
//! serve-layer knob (`--backend sat`) lives in `eo-serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;

pub use encode::{PoEncoding, SymOutcome};
