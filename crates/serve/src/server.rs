//! The batch server: parse a request stream, shard it across worker
//! sessions, and render one response document per request, in order.
//!
//! Sharding is contiguous: with `threads` workers the request list is cut
//! into `threads` runs and each run is answered by its own
//! [`AnalysisSession`] on a [`run_tasks`] worker (panic-isolated; a dead
//! worker degrades only its own run to error responses). Contiguous runs
//! keep each session's cache locality — adjacent requests in real batches
//! tend to probe related pairs — and keep the output ordering trivial.
//! All workers share one cancellation-linked budget: cloning a
//! [`Budget`](eo_engine::Budget) shares its cancel flag, so `eo serve`'s
//! `--timeout` stops every worker, exactly like the one-shot CLI paths.

use crate::protocol::{
    parse_requests, render_degraded, render_error, render_error_at, render_races, render_reply,
    ParsedRequest, ServeOp,
};
use crate::session::{AnalysisSession, SessionConfig, SessionStats};
use eo_engine::run_tasks;
use eo_model::ProgramExecution;

/// Server configuration: session settings plus the worker count.
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// Per-worker session configuration.
    pub session: SessionConfig,
    /// Worker threads for batch sharding; `0` means auto (one per core),
    /// `1` (via `Default`) keeps the whole batch on one session, which
    /// maximizes cross-query cache reuse.
    pub threads: usize,
}

/// What a batch run produced.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// One rendered JSON response per request, in request order.
    pub responses: Vec<String>,
    /// Aggregated session counters (also published as `serve.*` metrics).
    pub stats: SessionStats,
    /// At least one query was stopped by a budget.
    pub any_degraded: bool,
    /// At least one request was malformed or lost to a worker failure.
    pub any_error: bool,
}

/// Parses and answers a whole request stream (NDJSON or a JSON array).
pub fn serve_batch(exec: &ProgramExecution, input: &str, config: &ServeConfig) -> ServeOutcome {
    serve_requests(exec, parse_requests(exec, input), config)
}

/// Answers already-parsed requests, sharding across workers when asked.
pub fn serve_requests(
    exec: &ProgramExecution,
    requests: Vec<ParsedRequest>,
    config: &ServeConfig,
) -> ServeOutcome {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let chunks = split_contiguous(requests, threads);
    let chunk_sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
    let results = run_tasks(threads, chunks, |chunk| {
        let mut session = AnalysisSession::with_config(exec, config.session.clone());
        let responses: Vec<(String, Disposition)> = chunk
            .iter()
            .map(|request| answer_one(&mut session, request))
            .collect();
        (responses, session.stats())
    });

    let mut outcome = ServeOutcome {
        responses: Vec::new(),
        stats: SessionStats::default(),
        any_degraded: false,
        any_error: false,
    };
    for (slot, size) in results.into_iter().zip(chunk_sizes) {
        match slot {
            Some((responses, stats)) => {
                outcome.stats.merge(&stats);
                for (rendered, disposition) in responses {
                    match disposition {
                        Disposition::Exact => {}
                        Disposition::Degraded => outcome.any_degraded = true,
                        Disposition::Error => outcome.any_error = true,
                    }
                    outcome.responses.push(rendered);
                }
            }
            None => {
                // The worker for this run panicked; each of its requests
                // still gets a response so the output stays aligned.
                outcome.any_error = true;
                for _ in 0..size {
                    outcome.responses.push(render_error(
                        &None,
                        "worker failed while serving this request",
                    ));
                }
            }
        }
    }
    eo_obs::counter!("serve.queries", outcome.stats.queries);
    eo_obs::counter!("serve.cache_hits", outcome.stats.cache_hits);
    eo_obs::counter!("serve.cache_misses", outcome.stats.cache_misses);
    eo_obs::counter!("serve.prefilter_hits", outcome.stats.prefilter_hits);
    eo_obs::counter!(
        "serve.static_prefilter_hits",
        outcome.stats.static_prefilter_hits
    );
    outcome
}

/// How a request was answered; the network layer counts these per class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Disposition {
    Exact,
    Degraded,
    Error,
}

/// Answers one parsed request against a session. This is the single
/// render path for both `eo serve` and the network server — sharing it is
/// what makes the network responses bit-identical to batch responses by
/// construction rather than by testing alone.
pub(crate) fn answer_one(
    session: &mut AnalysisSession<'_>,
    request: &ParsedRequest,
) -> (String, Disposition) {
    let op = match &request.op {
        Err(message) => {
            // A malformed line is a *parse* failure, not a degradation:
            // it gets its own status:"error" response pinpointing the
            // offending input line, and the batch keeps going.
            return (
                render_error_at(&request.id, message, request.line),
                Disposition::Error,
            );
        }
        Ok(op) => *op,
    };
    match op {
        ServeOp::Query(query) => match session.query(query) {
            Ok(reply) => (render_reply(&request.id, &reply), Disposition::Exact),
            Err(e) => (
                render_degraded(&request.id, query.op_name(), &e),
                Disposition::Degraded,
            ),
        },
        ServeOp::Races => match session.races() {
            Ok((races, cached)) => (
                render_races(&request.id, &races, cached),
                Disposition::Exact,
            ),
            Err(e) => (
                render_degraded(&request.id, "races", &e),
                Disposition::Degraded,
            ),
        },
    }
}

/// Cuts `items` into at most `parts` contiguous runs of near-equal size.
fn split_contiguous<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(parts);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(parts);
    let mut run: Vec<T> = Vec::with_capacity(chunk);
    for item in items {
        run.push(item);
        if run.len() == chunk {
            out.push(std::mem::take(&mut run));
        }
    }
    if !run.is_empty() {
        out.push(run);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::fixtures;
    use eo_obs::json::{self, Value};

    fn figure1() -> ProgramExecution {
        let (trace, _) = fixtures::figure1();
        ProgramExecution::from_trace(trace).expect("fixture is valid")
    }

    #[test]
    fn split_contiguous_preserves_order_and_covers_everything() {
        let runs = split_contiguous((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs.concat(), (0..10).collect::<Vec<_>>());
        assert!(split_contiguous(Vec::<u8>::new(), 4).is_empty());
        assert_eq!(split_contiguous(vec![1], 4), vec![vec![1]]);
    }

    #[test]
    fn a_small_batch_is_served_in_order_with_exact_answers() {
        let exec = figure1();
        let input = "{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                     {\"id\": 2, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                     {\"id\": 3, \"op\": \"nope\"}\n";
        let out = serve_batch(&exec, input, &ServeConfig::default());
        assert_eq!(out.responses.len(), 3);
        assert!(!out.any_degraded);
        assert!(out.any_error, "the unknown op is an error response");
        let parsed: Vec<Value> = out
            .responses
            .iter()
            .map(|r| json::parse(r).expect("responses are valid JSON"))
            .collect();
        for (i, v) in parsed.iter().enumerate() {
            assert_eq!(
                v.get("schema_version").and_then(Value::as_i64),
                Some(eo_obs::report::SCHEMA_VERSION)
            );
            assert_eq!(
                v.get("id").and_then(Value::as_i64),
                Some(i as i64 + 1),
                "responses come back in request order"
            );
        }
        assert_eq!(parsed[0].get("cached"), Some(&Value::Bool(false)));
        assert_eq!(
            parsed[1].get("cached"),
            Some(&Value::Bool(true)),
            "the repeated query is a cache hit"
        );
        assert_eq!(
            parsed[0].get("answer"),
            parsed[1].get("answer"),
            "cache hit and engine answer agree"
        );
        assert_eq!(
            parsed[2].get("status").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(out.stats.queries, 2);
        assert_eq!(out.stats.cache_hits, 1);
    }

    #[test]
    fn a_malformed_line_reports_its_position_and_later_lines_still_answer() {
        let exec = figure1();
        let input = "{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                     this is not json\n\
                     {\"id\": 3, \"op\": \"ccw\", \"a\": 0, \"b\": 1}\n";
        let out = serve_batch(&exec, input, &ServeConfig::default());
        assert_eq!(out.responses.len(), 3, "one response per input line");
        let bad = json::parse(&out.responses[1]).expect("valid JSON");
        assert_eq!(bad.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            bad.get("line").and_then(Value::as_i64),
            Some(2),
            "the error response names the offending input line"
        );
        let after = json::parse(&out.responses[2]).expect("valid JSON");
        assert_eq!(
            after.get("status").and_then(Value::as_str),
            Some("exact"),
            "lines after the malformed one are still answered"
        );
        assert_eq!(after.get("id").and_then(Value::as_i64), Some(3));
        let ok = json::parse(&out.responses[0]).expect("valid JSON");
        assert!(ok.get("line").is_none(), "exact responses carry no line");
    }

    #[test]
    fn sharded_serving_matches_single_threaded_output() {
        let exec = figure1();
        let n = exec.n_events();
        let mut input = String::new();
        let mut id = 0;
        for a in 0..n {
            for b in 0..n {
                for op in ["mhb", "ccw"] {
                    id += 1;
                    input.push_str(&format!(
                        "{{\"id\": {id}, \"op\": \"{op}\", \"a\": {a}, \"b\": {b}}}\n"
                    ));
                }
            }
        }
        let single = serve_batch(
            &exec,
            &input,
            &ServeConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let sharded = serve_batch(
            &exec,
            &input,
            &ServeConfig {
                threads: 3,
                ..Default::default()
            },
        );
        assert_eq!(single.responses.len(), sharded.responses.len());
        for (a, b) in single.responses.iter().zip(&sharded.responses) {
            let (va, vb) = (json::parse(a).unwrap(), json::parse(b).unwrap());
            // Cache dispositions differ across shard boundaries; the
            // answers themselves must not.
            assert_eq!(va.get("id"), vb.get("id"));
            assert_eq!(va.get("answer"), vb.get("answer"));
            assert_eq!(va.get("status"), vb.get("status"));
        }
    }
}
