//! Differential suite for the interned hot path.
//!
//! The engine overhaul (state arena + successor-table walks + threaded
//! executed sets) must be a pure layout change: every relation, count, and
//! witness the old code produced, the new code must reproduce **bit for
//! bit**. This suite pits the interned sequential explorer against the
//! preserved pre-overhaul baseline ([`explore_statespace_baseline`]), the
//! parallel explorer, and the per-pair witness queries — on the model
//! fixtures and on both E9 workload families (the pairing-pitfall ladder
//! and the random semaphore workloads race detection sweeps).
//!
//! The same contract covers the trace-equivalence strategies: however
//! coarsely `normal-form` and `grain` quotient the schedule space, the
//! set of induced orders — and every summary relation built from it —
//! must be bit-identical to the sleep-set Mazurkiewicz baseline.

use eo_engine::EquivStrategy;
use eo_engine::{enumerate_classes, enumerate_classes_with, parallel::explore_statespace_parallel};
use eo_engine::{
    explore_statespace, explore_statespace_baseline, queries, FeasibilityMode, OrderingSummary,
    QuerySession, SearchCtx, StateSpaceResult,
};
use eo_model::{EventId, ProgramExecution};

const BUDGET: usize = 1 << 22;

/// Runs all three explorers and asserts the semantic fields agree exactly.
fn assert_explorers_agree(exec: &ProgramExecution, mode: FeasibilityMode) -> StateSpaceResult {
    let ctx = SearchCtx::new(exec, mode);
    let interned = explore_statespace(&ctx, BUDGET).expect("state budget");
    let baseline = explore_statespace_baseline(&ctx, BUDGET).expect("state budget");
    let parallel = explore_statespace_parallel(&ctx, BUDGET, 3).expect("state budget");
    for (name, other) in [("baseline", &baseline), ("parallel", &parallel)] {
        assert_eq!(interned.chb, other.chb, "chb vs {name}");
        assert_eq!(interned.overlap, other.overlap, "overlap vs {name}");
        assert_eq!(interned.states, other.states, "states vs {name}");
        assert_eq!(
            interned.completable_states, other.completable_states,
            "completable_states vs {name}"
        );
        assert_eq!(
            interned.deadlock_reachable, other.deadlock_reachable,
            "deadlock_reachable vs {name}"
        );
    }
    interned
}

/// Asserts the witness queries — through one shared session *and* as
/// one-shots — agree with `space` on every pair.
fn assert_queries_agree(exec: &ProgramExecution, mode: FeasibilityMode, space: &StateSpaceResult) {
    let ctx = SearchCtx::new(exec, mode);
    let mut session = QuerySession::new(&ctx);
    let n = exec.n_events();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (ea, eb) = (EventId::new(a), EventId::new(b));
            assert_eq!(
                session.could_happen_before(ea, eb),
                space.chb.contains(a, b),
                "session chb({a},{b})"
            );
            assert_eq!(
                session.could_be_concurrent(ea, eb),
                space.overlap.contains(a, b),
                "session overlap({a},{b})"
            );
        }
    }
    // Spot-check the one-shot wrappers on the first row (the full
    // quadratic sweep above already covers the session path).
    if n > 1 {
        let ea = EventId::new(0);
        for b in 1..n {
            let eb = EventId::new(b);
            assert_eq!(
                queries::could_happen_before(&ctx, ea, eb),
                space.chb.contains(0, b),
                "one-shot chb(0,{b})"
            );
            assert_eq!(
                queries::could_be_concurrent(&ctx, ea, eb),
                space.overlap.contains(0, b),
                "one-shot overlap(0,{b})"
            );
        }
    }
}

/// Enumerates F(P) under every equivalence strategy and asserts the
/// order sets — and the summaries built from them — are bit-identical to
/// the Mazurkiewicz baseline. Grain's canonical key *is* the induced
/// order, so its perfect pruning (one schedule per order) is asserted
/// unconditionally.
fn assert_strategies_agree(exec: &ProgramExecution, mode: FeasibilityMode) {
    let ctx = SearchCtx::new(exec, mode);
    let base = enumerate_classes_with(&ctx, 1 << 20, EquivStrategy::Mazurkiewicz);
    assert!(!base.truncated, "differential workloads must not truncate");
    let space = explore_statespace(&ctx, BUDGET).unwrap();
    let old = OrderingSummary::from_parts(&space, &base);
    let mut base_fps: Vec<u128> = base.orders.iter().map(|o| o.fingerprint128()).collect();
    base_fps.sort_unstable();
    for strategy in [EquivStrategy::NormalForm, EquivStrategy::Grain] {
        let r = enumerate_classes_with(&ctx, 1 << 20, strategy);
        assert!(!r.truncated, "{strategy}");
        let mut fps: Vec<u128> = r.orders.iter().map(|o| o.fingerprint128()).collect();
        fps.sort_unstable();
        assert_eq!(base_fps, fps, "{strategy}: F(P) differs from baseline");
        assert!(
            r.schedules_explored <= base.schedules_explored,
            "{strategy}: coarsening must not explore more schedules"
        );
        if strategy == EquivStrategy::Grain {
            assert_eq!(
                r.schedules_explored,
                r.orders.len(),
                "grain: one schedule per induced order"
            );
        }
        let new = OrderingSummary::from_parts(&space, &r);
        assert_eq!(old.mhb_relation(), new.mhb_relation(), "{strategy}: mhb");
        assert_eq!(old.chb_relation(), new.chb_relation(), "{strategy}: chb");
        assert_eq!(old.ccw_relation(), new.ccw_relation(), "{strategy}: ccw");
        assert_eq!(
            old.ccw_induced_relation(),
            new.ccw_induced_relation(),
            "{strategy}: ccw_induced"
        );
        assert_eq!(
            old.all_ordered_relation(),
            new.all_ordered_relation(),
            "{strategy}: all_ordered"
        );
        assert_eq!(old.class_count(), new.class_count(), "{strategy}: classes");
    }
}

fn fixture_traces() -> Vec<eo_model::Trace> {
    use eo_model::fixtures;
    vec![
        fixtures::independent_pair().0,
        fixtures::sem_handshake().0,
        fixtures::fork_join_diamond().0,
        fixtures::figure1().0,
        fixtures::post_wait_clear_chain().0,
        fixtures::shared_counter_race().0,
        fixtures::crossing().0,
    ]
}

#[test]
fn fixtures_bit_identical_across_explorers_and_queries() {
    for trace in fixture_traces() {
        let exec = trace.to_execution().unwrap();
        for mode in [
            FeasibilityMode::PreserveDependences,
            FeasibilityMode::IgnoreDependences,
        ] {
            let space = assert_explorers_agree(&exec, mode);
            assert_queries_agree(&exec, mode, &space);
            assert_strategies_agree(&exec, mode);
        }
    }
}

#[test]
fn fixture_summaries_bit_identical() {
    for trace in fixture_traces() {
        let exec = trace.to_execution().unwrap();
        let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);
        let classes = enumerate_classes(&ctx, 1 << 20);
        let interned = explore_statespace(&ctx, BUDGET).unwrap();
        let baseline = explore_statespace_baseline(&ctx, BUDGET).unwrap();
        let new = OrderingSummary::from_parts(&interned, &classes);
        let old = OrderingSummary::from_parts(&baseline, &classes);
        let n = exec.n_events();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                assert_eq!(new.mhb(ea, eb), old.mhb(ea, eb), "mhb({a},{b})");
                assert_eq!(new.chb(ea, eb), old.chb(ea, eb), "chb({a},{b})");
                assert_eq!(new.mcw(ea, eb), old.mcw(ea, eb), "mcw({a},{b})");
                assert_eq!(new.ccw(ea, eb), old.ccw(ea, eb), "ccw({a},{b})");
                assert_eq!(new.mow(ea, eb), old.mow(ea, eb), "mow({a},{b})");
                assert_eq!(new.cow(ea, eb), old.cow(ea, eb), "cow({a},{b})");
            }
        }
    }
}

/// The E9 pairing-pitfall family: a writer's `V` observably paired with
/// the reader's guarding `P`, plus `decoys` other `V`s that could have
/// served it instead. Race detection runs these under the
/// dependence-ignoring feasibility of the paper's Section 5.3.
fn pitfall_exec(decoys: usize) -> ProgramExecution {
    let mut b = eo_lang::ProgramBuilder::new();
    let s = b.semaphore("s");
    let x = b.variable("x");
    let w = b.process("writer");
    b.compute_rw(w, &[], &[x], "write_x");
    b.sem_v(w, s);
    for k in 0..decoys {
        let d = b.process(&format!("decoy_{k}"));
        b.sem_v(d, s);
    }
    let r = b.process("reader");
    b.sem_p(r, s);
    b.compute_rw(r, &[x], &[], "read_x");
    let program = b.build();
    eo_lang::run_to_trace(&program, &mut eo_lang::Scheduler::deterministic())
        .expect("pitfall program cannot deadlock")
        .to_execution()
        .expect("interpreter traces are valid")
}

#[test]
fn e9_pitfall_family_bit_identical() {
    for decoys in 1..=4 {
        let exec = pitfall_exec(decoys);
        let space = assert_explorers_agree(&exec, FeasibilityMode::IgnoreDependences);
        assert_queries_agree(&exec, FeasibilityMode::IgnoreDependences, &space);
        assert_strategies_agree(&exec, FeasibilityMode::IgnoreDependences);
    }
}

#[test]
fn e9_random_semaphore_family_bit_identical() {
    use eo_lang::generator::{generate_trace, WorkloadSpec};
    for seed in 0..6 {
        let mut spec = WorkloadSpec::small_semaphore(seed);
        spec.variables = 3;
        spec.write_fraction = 0.5;
        let exec = generate_trace(&spec, 100).to_execution().unwrap();
        // Race detection queries this family under IgnoreDependences; the
        // scaling experiments explore it under PreserveDependences. Check
        // both.
        for mode in [
            FeasibilityMode::PreserveDependences,
            FeasibilityMode::IgnoreDependences,
        ] {
            let space = assert_explorers_agree(&exec, mode);
            assert_strategies_agree(&exec, mode);
            if seed < 2 {
                // The quadratic query sweep is expensive; two seeds per
                // mode keep the suite fast while still crossing the
                // query/explorer boundary on random inputs.
                assert_queries_agree(&exec, mode, &space);
            }
        }
    }
}

#[test]
fn e6_scaling_workloads_bit_identical() {
    use eo_lang::generator::{generate_trace, WorkloadSpec};
    for (processes, events_per_process, seed) in [(3, 4, 11), (4, 4, 12), (5, 3, 13)] {
        let mut spec = WorkloadSpec::small_semaphore(seed);
        spec.processes = processes;
        spec.events_per_process = events_per_process;
        spec.semaphores = (processes / 2).max(1);
        let exec = generate_trace(&spec, 100).to_execution().unwrap();
        assert_explorers_agree(&exec, FeasibilityMode::PreserveDependences);
        assert_strategies_agree(&exec, FeasibilityMode::PreserveDependences);
    }
}
