//! The typed shared-data dependence input: →D split into its classes.
//!
//! The paper folds flow-, anti- and output-dependences into the single
//! relation →D, and every theorem downstream only ever consumes that
//! fold. But the *input* side of the API benefits from types: race
//! detectors want reads-from precisely, symbolic backends want per-class
//! unit facts, and lints want to know whether an edge is coherence or
//! communication. [`Dependence`] keeps the classes separate and caches
//! the flattened union, which is **bit-identical** to the historical
//! `compute_dependences` relation — [`crate::ProgramExecution::d`]
//! returns exactly that cached fold, so every fixture, golden file and
//! differential oracle built on the flat relation is unchanged.
//!
//! Classes (all over observed order, `a` first):
//!
//! * **co** — coherence (output) order: write→write on the same variable;
//! * **wr** — flow: write→read on the same variable;
//! * **fr** — from-read (anti): read→write on the same variable;
//! * **rf** — reads-from: the *immediately preceding* write of each read,
//!   per variable (a refinement, `rf ⊆ wr`);
//! * **addr / data / ctrl** — address-, data- and control-dependence
//!   classes in the style of hardware memory models. The language has no
//!   computed addresses so `addr` is always empty; `data` is the
//!   intra-process def-use subset of `wr`; `ctrl` must be supplied by a
//!   layer that knows branch structure (see `eo_lang`'s anchored runs) —
//!   it is empty unless [`Dependence::with_ctrl`] provides it.
//!
//! The fold is `co ∪ wr ∪ fr`; `rf`, `addr`, `data` and `ctrl` are
//! refinements/annotations that never feed the flat relation (→D in the
//! paper's model is exactly the conflicting-pair relation).

use crate::trace::Trace;
use eo_relations::Relation;

/// The typed →D input: per-class dependence relations plus the cached
/// flat fold the paper's model consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Coherence (output) order: write→write, same variable, observed order.
    pub co: Relation,
    /// Flow dependences: write→read, same variable, observed order.
    pub wr: Relation,
    /// From-read (anti) dependences: read→write, same variable.
    pub fr: Relation,
    /// Reads-from: each read paired with its immediately preceding write
    /// of the same variable (`rf ⊆ wr`).
    pub rf: Relation,
    /// Address dependences — always empty (no computed addresses).
    pub addr: Relation,
    /// Intra-process def-use pairs (`data ⊆ wr`, same process).
    pub data: Relation,
    /// Control dependences; empty unless supplied via [`Dependence::with_ctrl`].
    pub ctrl: Relation,
    /// The flat fold `co ∪ wr ∪ fr` — the paper's →D.
    flat: Relation,
}

impl Dependence {
    /// Classifies every conflicting access pair of `trace` — the typed
    /// equivalent of the historical flat computation. The [`Self::flat`]
    /// fold of the result is bit-identical to it.
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.n_events();
        let mut co = Relation::new(n);
        let mut wr = Relation::new(n);
        let mut fr = Relation::new(n);
        let mut rf = Relation::new(n);
        let mut data = Relation::new(n);
        for var_idx in 0..trace.variables.len() {
            let vid = crate::ids::VarId::new(var_idx);
            // Accesses in observed order: (event index, process, writes?, reads?).
            let accesses: Vec<(usize, usize, bool, bool)> = trace
                .events
                .iter()
                .filter_map(|e| {
                    let w = e.writes.contains(&vid);
                    let r = e.reads.contains(&vid);
                    (w || r).then_some((e.id.index(), e.process.index(), w, r))
                })
                .collect();
            for (i, &(a, pa, wa, ra)) in accesses.iter().enumerate() {
                let mut rf_done = false;
                for &(b, pb, wb, rb) in &accesses[i + 1..] {
                    if wa && wb {
                        co.insert(a, b);
                    }
                    if wa && rb {
                        wr.insert(a, b);
                        if pa == pb {
                            data.insert(a, b);
                        }
                    }
                    if ra && wb {
                        fr.insert(a, b);
                    }
                    // a's write reaches b iff no write intervenes; the
                    // scan is in observed order, so the first later
                    // writer ends a's reads-from frontier.
                    if wa && !rf_done {
                        if rb {
                            rf.insert(a, b);
                        }
                        if wb {
                            rf_done = true;
                        }
                    }
                }
            }
        }
        let mut flat = co.clone();
        flat.union_with(&wr);
        flat.union_with(&fr);
        Dependence {
            co,
            wr,
            fr,
            rf,
            addr: Relation::new(n),
            data,
            ctrl: Relation::new(n),
            flat,
        }
    }

    /// Compatibility constructor: wraps an already-computed flat →D with
    /// no class information (all class relations empty). [`Self::flat`]
    /// returns `flat` unchanged, so analyses behave identically to the
    /// pre-typed API.
    pub fn from_flat(flat: Relation) -> Self {
        let n = flat.len();
        Dependence {
            co: Relation::new(n),
            wr: Relation::new(n),
            fr: Relation::new(n),
            rf: Relation::new(n),
            addr: Relation::new(n),
            data: Relation::new(n),
            ctrl: Relation::new(n),
            flat,
        }
    }

    /// The empty dependence over `n` events (the Section 5.3 "ignore
    /// dependences" variant).
    pub fn empty(n: usize) -> Self {
        Self::from_flat(Relation::new(n))
    }

    /// Attaches a control-dependence class computed by a layer that knows
    /// branch structure. `ctrl` annotates; it does not enter the fold.
    pub fn with_ctrl(mut self, ctrl: Relation) -> Self {
        assert_eq!(ctrl.len(), self.flat.len(), "domain mismatch");
        self.ctrl = ctrl;
        self
    }

    /// The flat fold `co ∪ wr ∪ fr` — the paper's →D relation.
    #[inline]
    pub fn flat(&self) -> &Relation {
        &self.flat
    }

    /// Number of events in the domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// True iff the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flat.len() == 0
    }

    /// Per-class `(name, relation)` pairs in a fixed order, for uniform
    /// consumption (symbolic per-class facts, diagnostics).
    pub fn classes(&self) -> [(&'static str, &Relation); 7] {
        [
            ("co", &self.co),
            ("wr", &self.wr),
            ("fr", &self.fr),
            ("rf", &self.rf),
            ("addr", &self.addr),
            ("data", &self.data),
            ("ctrl", &self.ctrl),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn classes_partition_the_flat_relation() {
        // w1(x) ; r(x) ; w2(x): flow, anti, output all present.
        let mut tb = TraceBuilder::new();
        let p0 = tb.process("p0");
        let p1 = tb.process("p1");
        let x = tb.variable("x");
        let w1 = tb.write(p0, x, "w1");
        let r = tb.read(p1, x, "r");
        let w2 = tb.write(p0, x, "w2");
        let dep = Dependence::from_trace(&tb.build().unwrap());
        assert!(dep.wr.contains(w1.index(), r.index()), "flow");
        assert!(dep.fr.contains(r.index(), w2.index()), "anti");
        assert!(dep.co.contains(w1.index(), w2.index()), "output");
        assert_eq!(dep.flat().pair_count(), 3);
    }

    #[test]
    fn rf_is_the_immediate_write() {
        // w1 ; w2 ; r — only w2 supplies the read.
        let mut tb = TraceBuilder::new();
        let p0 = tb.process("p0");
        let p1 = tb.process("p1");
        let x = tb.variable("x");
        let w1 = tb.write(p0, x, "w1");
        let w2 = tb.write(p0, x, "w2");
        let r = tb.read(p1, x, "r");
        let dep = Dependence::from_trace(&tb.build().unwrap());
        assert!(!dep.rf.contains(w1.index(), r.index()), "overwritten");
        assert!(dep.rf.contains(w2.index(), r.index()));
        assert!(dep.wr.contains(w1.index(), r.index()), "wr keeps both");
        assert!(dep.wr.contains(w2.index(), r.index()));
    }

    #[test]
    fn data_is_intra_process_def_use() {
        let mut tb = TraceBuilder::new();
        let p0 = tb.process("p0");
        let p1 = tb.process("p1");
        let x = tb.variable("x");
        let w = tb.write(p0, x, "w");
        let r_same = tb.read(p0, x, "r0");
        let r_other = tb.read(p1, x, "r1");
        let dep = Dependence::from_trace(&tb.build().unwrap());
        assert!(dep.data.contains(w.index(), r_same.index()));
        assert!(!dep.data.contains(w.index(), r_other.index()));
        assert!(dep.wr.contains(w.index(), r_other.index()));
    }

    #[test]
    fn from_flat_round_trips_bit_identically() {
        let mut flat = Relation::new(4);
        flat.insert(0, 3);
        flat.insert(1, 2);
        let dep = Dependence::from_flat(flat.clone());
        assert_eq!(dep.flat(), &flat);
        assert_eq!(dep.flat().fingerprint128(), flat.fingerprint128());
        assert_eq!(dep.co.pair_count(), 0, "classes unknown");
    }

    #[test]
    fn rf_and_data_never_enter_the_fold_domain_check() {
        let mut tb = TraceBuilder::new();
        let p0 = tb.process("p0");
        let x = tb.variable("x");
        let _w = tb.write(p0, x, "w");
        let _r = tb.read(p0, x, "r");
        let dep = Dependence::from_trace(&tb.build().unwrap());
        // Intra-process w→r: wr + data + rf all set, fold has the one pair.
        assert_eq!(dep.flat().pair_count(), 1);
        let mut refold = dep.co.clone();
        refold.union_with(&dep.wr);
        refold.union_with(&dep.fr);
        assert_eq!(&refold, dep.flat());
    }
}
