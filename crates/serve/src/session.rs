//! [`AnalysisSession`]: one program, one interned state space, many
//! queries.
//!
//! A session owns the engine-side [`QueryMemo`] (interned state arena,
//! dead-state memo, epoch-stamped visit sets) plus the serving-side
//! caches from [`crate::cache`]. Every answer it produces is exact and
//! bit-identical to a fresh one-shot [`eo_engine::ExactEngine`] run of the
//! same query under the same [`EngineOptions`] — the differential test
//! `tests/batch_differential.rs` pins this. What the session changes is
//! *cost*: repeated, symmetric, complementary, or transitively implied
//! queries are answered from caches without touching the state space, and
//! queries that do search reuse every state interned so far.

use crate::cache::{FactKind, FactStore, WitnessCache};
use eo_approx::{SafeOrderings, TaskGraph};
use eo_engine::{
    Answer, EngineError, EngineOptions, ExactEngine, FeasibilityMode, OrderingSummary, Query,
    QueryMemo, Response, SearchCtx,
};
use eo_model::{EventId, ProgramExecution};
use eo_race::Race;
use eo_relations::fxhash::FxHasher;
use eo_relations::Relation;
use std::hash::Hasher;

/// Serving-side configuration for an [`AnalysisSession`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Engine configuration (feasibility mode, limits, budget). The
    /// session resolves budgets through
    /// [`EngineOptions::effective_budget`], exactly as one-shot queries
    /// do.
    pub engine: EngineOptions,
    /// Cross-query result caching (fact store, witness LRU, memoized
    /// summary and race reports). Answers are identical either way; off
    /// exists for differential testing and benchmarking.
    pub cache: bool,
    /// The polynomial guaranteed-ordering prefilter (HMW safe orderings ∪
    /// EGP task graph): sound fast-path answers for pairs the cheap
    /// analyses already decide.
    pub prefilter: bool,
    /// Capacity of the witness-schedule LRU (entries, not bytes).
    pub witness_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineOptions::default(),
            cache: true,
            prefilter: true,
            witness_capacity: 256,
        }
    }
}

/// Running counters for one session; the server aggregates these into the
/// `serve.*` metrics in [`eo_obs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (including degraded ones).
    pub queries: u64,
    /// Queries answered from a cross-query cache without any search.
    pub cache_hits: u64,
    /// Queries that were not cache hits.
    pub cache_misses: u64,
    /// Cache misses decided by the polynomial guarantee relation alone.
    pub prefilter_hits: u64,
}

impl SessionStats {
    /// Accumulates another session's counters (used when a batch is
    /// split across worker sessions).
    pub fn merge(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.prefilter_hits += other.prefilter_hits;
    }
}

/// A [`Response`] plus serving metadata: where the answer came from.
#[derive(Clone, Debug)]
pub struct SessionReply {
    /// The query and its exact answer.
    pub response: Response,
    /// Answered from a cross-query cache (fact store, witness LRU,
    /// memoized summary) without running any search.
    pub cached: bool,
    /// Decided by the polynomial guarantee prefilter.
    pub prefilter: bool,
}

/// A long-lived analysis session over one program execution.
///
/// Construction is cheap (the state space grows lazily, query by query).
/// The session is `!Sync` by design — one mutable owner per state space;
/// the server shards batches across independent sessions instead.
pub struct AnalysisSession<'e> {
    exec: &'e ProgramExecution,
    fingerprint: u64,
    config: SessionConfig,
    ctx: SearchCtx<'e>,
    memo: QueryMemo,
    /// Race detection requires the operational F(P) (`IgnoreDependences`);
    /// when the session's own mode differs, a second context + memo are
    /// built lazily for it.
    race_ctx: Option<SearchCtx<'e>>,
    race_memo: Option<QueryMemo>,
    facts: FactStore,
    witnesses: WitnessCache,
    summary: Option<Box<OrderingSummary>>,
    races: Option<Vec<Race>>,
    guarantee: Option<Relation>,
    stats: SessionStats,
}

impl<'e> AnalysisSession<'e> {
    /// Opens a session with default configuration.
    pub fn new(exec: &'e ProgramExecution) -> Self {
        AnalysisSession::with_config(exec, SessionConfig::default())
    }

    /// Opens a session with explicit configuration.
    pub fn with_config(exec: &'e ProgramExecution, config: SessionConfig) -> Self {
        let ctx = SearchCtx::new(exec, config.engine.mode);
        let memo = QueryMemo::with_budget(&ctx, config.engine.effective_budget());
        let n = exec.n_events();
        AnalysisSession {
            exec,
            fingerprint: fingerprint(exec),
            witnesses: WitnessCache::new(config.witness_capacity),
            config,
            ctx,
            memo,
            race_ctx: None,
            race_memo: None,
            facts: FactStore::new(n),
            summary: None,
            races: None,
            guarantee: None,
            stats: SessionStats::default(),
        }
    }

    /// The program execution this session analyses.
    pub fn exec(&self) -> &'e ProgramExecution {
        self.exec
    }

    /// A stable fingerprint of the program's trace; result caches are
    /// keyed on it so cached answers can never leak across programs.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// States interned in the session's main state arena so far.
    pub fn interned_states(&self) -> usize {
        self.memo.interned_states()
    }

    /// Answers one query. Exact: the reply is bit-identical to
    /// [`ExactEngine::query`] with the same [`EngineOptions`]; `Err` means
    /// the budget stopped the search (degraded, not wrong).
    ///
    /// # Panics
    ///
    /// Panics if a query names an event id out of range, or if a witness
    /// query repeats the same event (the protocol layer validates both).
    pub fn query(&mut self, query: Query) -> Result<SessionReply, EngineError> {
        self.stats.queries += 1;
        match query {
            Query::Mhb { a, b } => self.decide(query, FactKind::Mhb, a, b),
            Query::Chb { a, b } => self.decide(query, FactKind::Chb, a, b),
            Query::Ccw { a, b } => self.decide(query, FactKind::Ccw, a, b),
            Query::WitnessBefore { first, second } => self.witness(query, first, second, false),
            Query::WitnessOverlap { a, b } => self.witness(query, a, b, true),
            Query::Summary => self.summary_query(),
            other => {
                // `Query` is non-exhaustive; a session refusing a new
                // variant loudly beats silently mis-answering it.
                unimplemented!("serve session does not handle {other:?}")
            }
        }
    }

    /// Answers a batch in order, collecting per-query results. Budget
    /// errors degrade the affected queries only; later queries still run
    /// (and may still be served from caches).
    pub fn query_batch(&mut self, queries: &[Query]) -> Vec<Result<SessionReply, EngineError>> {
        queries.iter().map(|&q| self.query(q)).collect()
    }

    /// The exact race report for this program (operational F(P)). Memoized
    /// after the first call when caching is on.
    pub fn races(&mut self) -> Result<(Vec<Race>, bool), EngineError> {
        self.stats.queries += 1;
        if self.config.cache {
            if let Some(r) = &self.races {
                self.stats.cache_hits += 1;
                return Ok((r.clone(), true));
            }
        }
        self.stats.cache_misses += 1;
        let races = if self.config.engine.mode == FeasibilityMode::IgnoreDependences {
            eo_race::try_exact_races_with_memo(&self.ctx, &mut self.memo)?
        } else {
            if self.race_ctx.is_none() {
                self.race_ctx = Some(SearchCtx::new(
                    self.exec,
                    FeasibilityMode::IgnoreDependences,
                ));
            }
            let ctx = self.race_ctx.as_ref().expect("race ctx just installed");
            let memo = self.race_memo.get_or_insert_with(|| {
                QueryMemo::with_budget(ctx, self.config.engine.effective_budget())
            });
            eo_race::try_exact_races_with_memo(ctx, memo)?
        };
        if self.config.cache {
            self.races = Some(races.clone());
        }
        Ok((races, false))
    }

    fn reply(&self, query: Query, answer: Answer, cached: bool, prefilter: bool) -> SessionReply {
        SessionReply {
            response: Response::new(query, answer),
            cached,
            prefilter,
        }
    }

    fn decide(
        &mut self,
        query: Query,
        kind: FactKind,
        a: EventId,
        b: EventId,
    ) -> Result<SessionReply, EngineError> {
        assert!(
            a.index() < self.exec.n_events() && b.index() < self.exec.n_events(),
            "event id out of range for this program"
        );
        if a == b {
            // Irreflexive by definition; the engine answers without
            // searching and so do we (counted as neither hit nor miss).
            return Ok(self.reply(query, Answer::Decided(false), false, false));
        }
        if self.config.cache {
            if let Some(v) = self.facts.lookup(kind, a, b) {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Decided(v), true, false));
            }
        }
        self.stats.cache_misses += 1;
        if self.config.prefilter {
            if let Some(v) = self.prefilter_decide(kind, a, b) {
                self.stats.prefilter_hits += 1;
                if self.config.cache {
                    self.facts.record(kind, a, b, v);
                }
                return Ok(self.reply(query, Answer::Decided(v), false, true));
            }
        }
        let v = match kind {
            FactKind::Mhb => self.memo.try_must_happen_before(&self.ctx, a, b)?,
            FactKind::Chb => self.memo.try_could_happen_before(&self.ctx, a, b)?,
            FactKind::Ccw => self.memo.try_could_be_concurrent(&self.ctx, a, b)?,
        };
        if self.config.cache {
            self.facts.record(kind, a, b, v);
        }
        Ok(self.reply(query, Answer::Decided(v), false, false))
    }

    fn witness(
        &mut self,
        query: Query,
        a: EventId,
        b: EventId,
        overlap: bool,
    ) -> Result<SessionReply, EngineError> {
        assert!(
            a.index() < self.exec.n_events() && b.index() < self.exec.n_events(),
            "event id out of range for this program"
        );
        assert!(a != b, "witness queries need two distinct events");
        // Overlap witnesses are symmetric in (a, b) — the search visits the
        // same states either way — so the cache key is order-normalized.
        let key = if overlap {
            Query::WitnessOverlap {
                a: EventId::new(a.index().min(b.index())),
                b: EventId::new(a.index().max(b.index())),
            }
        } else {
            query
        };
        if self.config.cache {
            if let Some(w) = self.witnesses.get(self.fingerprint, key) {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Witness(w), true, false));
            }
            // A refuted relation instance refutes the witness too: no
            // schedule to exhibit. (The converse — an affirmed instance —
            // still needs a search to produce the schedule itself.)
            let refuted = if overlap {
                self.facts.lookup(FactKind::Ccw, a, b) == Some(false)
            } else {
                self.facts.lookup(FactKind::Chb, a, b) == Some(false)
            };
            if refuted {
                self.stats.cache_hits += 1;
                return Ok(self.reply(query, Answer::Witness(None), true, false));
            }
        }
        self.stats.cache_misses += 1;
        if self.config.prefilter {
            let refuted = if overlap {
                self.prefilter_decide(FactKind::Ccw, a, b) == Some(false)
            } else {
                // G(b, a) forces b before a in every execution: no witness
                // runs a first.
                self.guarantee().contains(b.index(), a.index())
            };
            if refuted {
                self.stats.prefilter_hits += 1;
                if self.config.cache {
                    let kind = if overlap {
                        FactKind::Ccw
                    } else {
                        FactKind::Chb
                    };
                    self.facts.record(kind, a, b, false);
                    self.witnesses.put(self.fingerprint, key, None);
                }
                return Ok(self.reply(query, Answer::Witness(None), false, true));
            }
        }
        let w = if overlap {
            self.memo.try_witness_overlap(&self.ctx, a, b)?
        } else {
            self.memo.try_witness_before(&self.ctx, a, b)?
        };
        if self.config.cache {
            let kind = if overlap {
                FactKind::Ccw
            } else {
                FactKind::Chb
            };
            self.facts.record(kind, a, b, w.is_some());
            self.witnesses.put(self.fingerprint, key, w.clone());
        }
        Ok(self.reply(query, Answer::Witness(w), false, false))
    }

    fn summary_query(&mut self) -> Result<SessionReply, EngineError> {
        if self.config.cache {
            if let Some(s) = &self.summary {
                self.stats.cache_hits += 1;
                return Ok(self.reply(Query::Summary, Answer::Summary(s.clone()), true, false));
            }
        }
        self.stats.cache_misses += 1;
        let engine = ExactEngine::with_options(self.exec, self.config.engine.clone());
        let summary = Box::new(engine.try_summary()?);
        if self.config.cache {
            // One summary decides every pairwise instance; seed the fact
            // store so later point queries are O(1) hits.
            self.facts.seed_summary(&summary);
            self.summary = Some(summary.clone());
        }
        Ok(self.reply(Query::Summary, Answer::Summary(summary), false, false))
    }

    /// A sound fast-path decision from the guarantee relation, or `None`
    /// when the cheap analyses don't decide this pair.
    fn prefilter_decide(&mut self, kind: FactKind, a: EventId, b: EventId) -> Option<bool> {
        let g = self.guarantee();
        let (ai, bi) = (a.index(), b.index());
        match kind {
            // G(a,b) ⇒ a before b in every feasible execution ⇒ MHB. The
            // converse direction is not decided by G's absence.
            FactKind::Mhb => g.contains(ai, bi).then_some(true),
            // G(a,b) ⇒ a before b in *some* execution too (F(P) contains
            // the observed run), so CHB(a,b) holds; G(b,a) refutes it.
            FactKind::Chb => {
                if g.contains(ai, bi) {
                    Some(true)
                } else if g.contains(bi, ai) {
                    Some(false)
                } else {
                    None
                }
            }
            // A guaranteed order in either direction rules out overlap.
            FactKind::Ccw => (g.contains(ai, bi) || g.contains(bi, ai)).then_some(false),
        }
    }

    /// The guarantee relation G = HMW safe orderings ∪ EGP task graph,
    /// transitively closed — built lazily on first use and seeded into the
    /// fact store when caching is on.
    fn guarantee(&mut self) -> &Relation {
        if self.guarantee.is_none() {
            let mut g = SafeOrderings::compute(self.exec).relation().clone();
            g.union_with(TaskGraph::build(self.exec).relation());
            g.close_transitively();
            if self.config.cache {
                self.facts.seed_guarantee(&g);
            }
            self.guarantee = Some(g);
        }
        self.guarantee.as_ref().expect("guarantee just built")
    }
}

/// Fingerprints a program execution by hashing its canonical trace JSON.
pub fn fingerprint(exec: &ProgramExecution) -> u64 {
    let mut h = FxHasher::default();
    h.write(exec.trace().to_value().pretty().as_bytes());
    h.finish()
}
