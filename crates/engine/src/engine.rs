//! The user-facing engine facade.

use crate::ctx::{FeasibilityMode, SearchCtx};
use crate::enumerate::{enumerate_classes, EnumerationResult};
use crate::queries;
use crate::statespace::explore_statespace;
use crate::summary::OrderingSummary;
use eo_model::{EventId, ProgramExecution};

/// Resource bounds for the exact analyses. The problems are NP-/co-NP-hard
/// (that is the paper's theorem), so honest engines carry explicit budgets
/// instead of silently running forever.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum distinct machine states the cut-lattice pass may visit.
    pub max_states: usize,
    /// Maximum complete schedules the class enumeration may record.
    pub max_schedules: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1 << 22,
            max_schedules: 1 << 20,
        }
    }
}

/// Why an exact analysis could not finish within its budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The cut lattice outgrew [`Limits::max_states`].
    StateSpaceExceeded {
        /// The configured bound.
        limit: usize,
    },
    /// The class enumeration outgrew [`Limits::max_schedules`].
    ScheduleBudgetExceeded {
        /// The configured bound.
        limit: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StateSpaceExceeded { limit } => {
                write!(f, "state space exceeded the {limit}-state budget")
            }
            EngineError::ScheduleBudgetExceeded { limit } => {
                write!(
                    f,
                    "schedule enumeration exceeded the {limit}-schedule budget"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Exact computation of the six Table-1 ordering relations for one
/// program execution.
///
/// ```
/// use eo_engine::ExactEngine;
/// use eo_model::fixtures;
///
/// let (trace, ids) = fixtures::sem_handshake();
/// let exec = trace.to_execution().unwrap();
/// let engine = ExactEngine::new(&exec);
/// assert!(engine.mhb(ids.v, ids.p));          // V must precede P
/// assert!(!engine.chb(ids.p, ids.v));         // P can never precede V
/// assert!(engine.ccw(ids.after_v, ids.after_p)); // the tails can overlap
/// ```
pub struct ExactEngine<'a> {
    ctx: SearchCtx<'a>,
    limits: Limits,
}

impl<'a> ExactEngine<'a> {
    /// Engine over the paper's F(P) (dependence-preserving feasibility).
    pub fn new(exec: &'a ProgramExecution) -> Self {
        Self::with_mode(exec, FeasibilityMode::PreserveDependences)
    }

    /// Engine with an explicit feasibility mode (Section 5.3's
    /// dependence-ignoring variant is [`FeasibilityMode::IgnoreDependences`]).
    pub fn with_mode(exec: &'a ProgramExecution, mode: FeasibilityMode) -> Self {
        ExactEngine {
            ctx: SearchCtx::new(exec, mode),
            limits: Limits::default(),
        }
    }

    /// Replaces the resource budget.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The underlying search context (for direct use of the lower-level
    /// APIs).
    pub fn ctx(&self) -> &SearchCtx<'a> {
        &self.ctx
    }

    /// Computes the full six-relation summary, or reports the exceeded
    /// budget.
    pub fn try_summary(&self) -> Result<OrderingSummary, EngineError> {
        let space = explore_statespace(&self.ctx, self.limits.max_states)?;
        let classes = enumerate_classes(&self.ctx, self.limits.max_schedules);
        if classes.truncated {
            return Err(EngineError::ScheduleBudgetExceeded {
                limit: self.limits.max_schedules,
            });
        }
        let summary = OrderingSummary::from_parts(&space, &classes);
        debug_assert_eq!(summary.check_identities(), Ok(()));
        Ok(summary)
    }

    /// Computes the full summary.
    ///
    /// # Panics
    /// Panics if the budget is exceeded; use
    /// [`try_summary`](Self::try_summary) when the input may be
    /// adversarial.
    pub fn summary(&self) -> OrderingSummary {
        match self.try_summary() {
            Ok(s) => s,
            Err(e) => panic!("exact summary did not fit the budget: {e}"),
        }
    }

    /// Enumerates F(P) (the distinct induced partial orders).
    pub fn feasible_set(&self) -> Result<EnumerationResult, EngineError> {
        let r = enumerate_classes(&self.ctx, self.limits.max_schedules);
        if r.truncated {
            return Err(EngineError::ScheduleBudgetExceeded {
                limit: self.limits.max_schedules,
            });
        }
        Ok(r)
    }

    /// Decides `a MHB b` by early-exit witness search (no full summary).
    pub fn mhb(&self, a: EventId, b: EventId) -> bool {
        queries::must_happen_before(&self.ctx, a, b)
    }

    /// Decides `a CHB b` by early-exit witness search.
    pub fn chb(&self, a: EventId, b: EventId) -> bool {
        queries::could_happen_before(&self.ctx, a, b)
    }

    /// Decides operational `a CCW b` by early-exit witness search.
    pub fn ccw(&self, a: EventId, b: EventId) -> bool {
        queries::could_be_concurrent(&self.ctx, a, b)
    }

    /// A feasible schedule running `first` strictly before `second`, if
    /// one exists (the NP witness of Theorem 2).
    pub fn witness_before(&self, first: EventId, second: EventId) -> Option<Vec<EventId>> {
        queries::witness_before(&self.ctx, first, second)
    }

    /// A feasible schedule prefix reaching a state where both events are
    /// ready, if one exists.
    pub fn witness_overlap(&self, a: EventId, b: EventId) -> Option<Vec<EventId>> {
        queries::witness_overlap(&self.ctx, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::fixtures;

    #[test]
    fn facade_summary_matches_point_queries() {
        let (trace, _ids) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let engine = ExactEngine::new(&exec);
        let summary = engine.summary();
        for a in 0..exec.n_events() {
            for b in 0..exec.n_events() {
                if a == b {
                    continue;
                }
                let (ea, eb) = (EventId::new(a), EventId::new(b));
                assert_eq!(engine.mhb(ea, eb), summary.mhb(ea, eb), "mhb({a},{b})");
                assert_eq!(engine.chb(ea, eb), summary.chb(ea, eb), "chb({a},{b})");
                assert_eq!(engine.ccw(ea, eb), summary.ccw(ea, eb), "ccw({a},{b})");
            }
        }
    }

    #[test]
    fn budget_errors_are_reported() {
        let (trace, _ids) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let tiny = ExactEngine::new(&exec).with_limits(Limits {
            max_states: 2,
            max_schedules: 1 << 20,
        });
        assert!(matches!(
            tiny.try_summary(),
            Err(EngineError::StateSpaceExceeded { limit: 2 })
        ));

        // The clear chain has many schedule classes; a budget of 1 truncates.
        let (trace2, _ids) = fixtures::post_wait_clear_chain();
        let exec2 = trace2.to_execution().unwrap();
        let tiny2 = ExactEngine::new(&exec2).with_limits(Limits {
            max_states: 1 << 20,
            max_schedules: 1,
        });
        assert!(matches!(
            tiny2.try_summary(),
            Err(EngineError::ScheduleBudgetExceeded { limit: 1 })
        ));
    }

    #[test]
    fn ignore_mode_changes_answers() {
        let (trace, inc0, inc1) = fixtures::shared_counter_race();
        let exec = trace.to_execution().unwrap();
        let strict = ExactEngine::new(&exec);
        assert!(strict.mhb(inc0, inc1));
        assert!(!strict.ccw(inc0, inc1));
        let relaxed = ExactEngine::with_mode(&exec, FeasibilityMode::IgnoreDependences);
        assert!(!relaxed.mhb(inc0, inc1));
        assert!(relaxed.ccw(inc0, inc1));
    }
}
