//! E18: the server load/fault harness — millions of pipelined queries
//! from thousands of sequentially simulated clients, a fault cohort that
//! misbehaves on purpose, and dedicated admission-control and
//! degradation probes, all against the in-process [`eo_serve::net`]
//! server (the same reactor `eo-server` boots).
//!
//! The harness measures throughput and pipelined latency percentiles,
//! but its real product is the robustness ledger: every well-formed
//! query from a well-behaved client must get exactly one response
//! (`lost == 0`), a verification cohort must be answered bit-identically
//! to `eo serve` on stdin (`parity_ok`), overload must surface as
//! structured `overloaded` rejections, deadline pressure as sound
//! `degraded` answers, and hostile traffic as shed/killed *connections*
//! — never as lost answers or a dead server.

use eo_engine::{EngineOptions, FeasibilityMode};
use eo_model::fixtures;
use eo_model::TraceBuilder;
use eo_obs::json::{self, Value};
use eo_serve::net::client::open_request;
use eo_serve::net::{NetClient, Server, ServerConfig, ServerReport};
use eo_serve::{serve_batch, ServeConfig, SessionConfig};
use std::time::{Duration, Instant};

/// Deterministic driver for client scheduling and fault selection.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Knobs for one harness run.
#[derive(Clone, Debug)]
pub struct ServerLoadConfig {
    /// Well-behaved clients (run sequentially, each pipelining a burst).
    pub good_clients: usize,
    /// Queries pipelined per well-behaved client.
    pub queries_per_client: usize,
    /// Misbehaving clients interleaved into the run.
    pub fault_clients: usize,
    /// Garbage lines each never-reading spammer floods (drives shedding).
    pub spam_lines: usize,
    /// Queries for the admission-control probe (a zero-quota server).
    pub admission_queries: usize,
    /// Queries for the degradation probe (a 1 ms per-query deadline).
    pub degradation_queries: usize,
    /// LCG seed for fault selection and query mixing.
    pub seed: u64,
}

impl ServerLoadConfig {
    /// The committed-report configuration: one million well-formed
    /// queries across two thousand clients plus two hundred hostile ones.
    pub fn full() -> Self {
        ServerLoadConfig {
            good_clients: 2000,
            queries_per_client: 500,
            fault_clients: 200,
            spam_lines: 60_000,
            admission_queries: 1000,
            degradation_queries: 200,
            seed: 0xe18_0001,
        }
    }

    /// A seconds-scale configuration for tests and the CI gate: the same
    /// phases and invariants at a fraction of the volume.
    pub fn smoke() -> Self {
        ServerLoadConfig {
            good_clients: 60,
            queries_per_client: 100,
            fault_clients: 12,
            spam_lines: 4000,
            admission_queries: 100,
            degradation_queries: 20,
            seed: 0xe18_0002,
        }
    }
}

/// Everything one harness run measured (written to `BENCH_server.json`).
#[derive(Clone, Debug)]
pub struct ServerLoadResult {
    /// Well-behaved clients simulated.
    pub good_clients: usize,
    /// Misbehaving clients simulated.
    pub fault_clients: usize,
    /// Well-formed queries sent by well-behaved clients (parity cohort
    /// included).
    pub queries: u64,
    /// Responses those clients received.
    pub answered: u64,
    /// Queries that never got a response (the invariant: zero).
    pub lost: u64,
    /// Client-visible `exact` answers.
    pub exact: u64,
    /// Client-visible `error` answers (the parity cohort's deliberate
    /// malformed requests).
    pub errors: u64,
    /// Load-phase wall time.
    pub wall: Duration,
    /// Load-phase queries per second.
    pub qps: f64,
    /// Pipelined time-to-response percentiles over every good query.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// The verification cohort matched `eo serve` byte-for-byte.
    pub parity_ok: bool,
    /// The load server's own counters after drain.
    pub report: ServerReport,
    /// Admission probe: queries sent to the zero-quota server.
    pub admission_queries: u64,
    /// Admission probe: structured `overloaded` rejections received.
    pub admission_rejected: u64,
    /// The `retry_after_ms` hint carried by the first rejection.
    pub admission_retry_after_ms: i64,
    /// Degradation probe: queries sent under a 1 ms deadline.
    pub degradation_queries: u64,
    /// Degradation probe: sound `degraded` answers received.
    pub degradation_degraded: u64,
}

/// A trace whose exhaustive summary under `IgnoreDependences` runs for
/// many seconds: four processes of four conflicting writes each, so
/// every interleaving is feasible.
fn slow_trace_json() -> String {
    let mut tb = TraceBuilder::new();
    let main = tb.process("main");
    let x = tb.variable("X");
    let (_, kids) = tb.fork(main, &["t1", "t2", "t3"]);
    for p in std::iter::once(main).chain(kids) {
        for i in 0..4 {
            tb.push_full(p, eo_model::Op::Compute, &[x], &[x], Some(&format!("w{i}")));
        }
    }
    tb.build().expect("slow trace is valid").to_value().pretty()
}

fn fixture_gallery() -> Vec<String> {
    vec![
        fixtures::figure1().0.to_value().pretty(),
        fixtures::crossing().0.to_value().pretty(),
        fixtures::fork_join_diamond().0.to_value().pretty(),
    ]
}

fn status_of(doc: &str) -> String {
    json::parse(doc)
        .ok()
        .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_owned))
        .unwrap_or_else(|| format!("unparseable: {doc}"))
}

/// The deterministic verification cohort: a mixed request stream
/// (relations, witnesses, summary, races, and two deliberate errors)
/// whose network responses must be byte-identical to `eo serve`.
fn parity_requests() -> Vec<String> {
    let mut reqs = Vec::new();
    let mut id = 0usize;
    for a in 0..7usize {
        for b in 0..7usize {
            for op in ["mhb", "chb", "ccw", "witness_before", "witness_overlap"] {
                reqs.push(format!(
                    r#"{{"id": {id}, "op": "{op}", "a": {a}, "b": {b}}}"#
                ));
                id += 1;
            }
        }
    }
    reqs.push(format!(r#"{{"id": {id}, "op": "summary"}}"#));
    reqs.push(format!(r#"{{"id": {}, "op": "races"}}"#, id + 1));
    // Two deliberate errors: an unknown op and an out-of-range event.
    // Their error responses carry `line` positions, so byte parity also
    // pins the frame-sequence-to-line alignment.
    reqs.push(format!(r#"{{"id": {}, "op": "frobnicate"}}"#, id + 2));
    reqs.push(format!(
        r#"{{"id": {}, "op": "mhb", "a": 0, "b": 99}}"#,
        id + 3
    ));
    reqs
}

/// Runs the parity cohort against the network server and `serve_batch`,
/// returning (queries, answered, errors, all-byte-identical).
fn run_parity(addr: std::net::SocketAddr, figure1_json: &str) -> (u64, u64, u64, bool) {
    let mut client = NetClient::connect(addr).expect("parity connect");
    let opened = client.open(figure1_json).expect("parity open");
    assert_eq!(status_of(&opened), "ok", "parity open failed: {opened}");
    let requests = parity_requests();
    for r in &requests {
        client.send(r).expect("parity send");
    }
    let from_net: Vec<String> = requests
        .iter()
        .map(|_| client.recv().expect("parity recv"))
        .collect();

    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().expect("fixture is valid");
    // The network side numbers frames from 1 and the open consumed frame
    // 1, so the batch replay gets one leading blank line to align the
    // `line` fields of the error responses.
    let batch_input = format!("\n{}\n", requests.join("\n"));
    let outcome = serve_batch(
        &exec,
        &batch_input,
        &ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let parity_ok = from_net == outcome.responses;
    let errors = from_net.iter().filter(|r| status_of(r) == "error").count() as u64;
    (
        requests.len() as u64,
        from_net.len() as u64,
        errors,
        parity_ok,
    )
}

/// One misbehaving client. Returns how many well-formed queries it sent
/// and how many answers it read (both usually zero), plus optionally the
/// connection itself when the fault is "stall forever".
fn run_fault_client(
    rng: &mut Lcg,
    addr: std::net::SocketAddr,
    spam_lines: usize,
    max_frame: usize,
) -> Option<NetClient> {
    match rng.pick(4) {
        // Mid-request disconnect: a prefix of a valid frame, then gone.
        0 => {
            let full = b"39:{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n";
            let cut = 1 + rng.pick(full.len() - 1);
            let mut client = NetClient::connect(addr).expect("fault connect");
            let _ = client.send_raw(&full[..cut]);
            None
        }
        // Garbage frames, politely read back: each line costs exactly
        // one error and the connection stays usable.
        1 => {
            let mut client = NetClient::connect(addr).expect("fault connect");
            for _ in 0..50 {
                let _ = client.send_raw(b"not a frame at all\n");
            }
            let _ = client.send(r#"{"id": "sync", "op": "ping"}"#);
            while let Ok(doc) = client.recv() {
                if status_of(&doc) == "ok" {
                    break;
                }
            }
            None
        }
        // Oversized program: refused as an oversized frame; the
        // connection survives to hear the refusal.
        2 => {
            let mut client = NetClient::connect(addr).expect("fault connect");
            let huge = open_request(&"x".repeat(2 * max_frame), None);
            let _ = client.send(&huge);
            let _ = client.recv();
            None
        }
        // Stalled reader: floods garbage and never reads. Its droppable
        // error responses are shed once the write queue saturates, and
        // the write timeout eventually kills the connection during
        // drain. Returned to the caller so it stays open until then.
        3 => {
            let mut client = NetClient::connect(addr).expect("fault connect");
            let chunk: Vec<u8> = b"spam spam spam spam spam\n".repeat(256);
            let mut line = 0usize;
            while line < spam_lines {
                if client.send_raw(&chunk).is_err() {
                    break;
                }
                line += 256;
            }
            Some(client)
        }
        _ => unreachable!(),
    }
}

/// The full harness: parity cohort, load+fault phase, admission probe,
/// degradation probe. Panics on any violated invariant.
pub fn e18_server_load(config: &ServerLoadConfig) -> ServerLoadResult {
    // --- Load server: shedding made observable (small write queue, no
    // read backpressure so spammers cannot wedge the harness), write
    // timeout short so stalled readers die during drain, frames capped
    // small so oversized programs are cheap to test.
    let server_config = ServerConfig {
        max_frame: 64 * 1024,
        max_programs: 2, // three programs rotate: LRU eviction on every shift
        max_write_queue: 256,
        write_high_watermark: 64 << 20,
        write_timeout: Duration::from_millis(1500),
        read_timeout: Duration::from_secs(10),
        idle_timeout: Duration::from_secs(60),
        drain_deadline: Duration::from_secs(10),
        drain_grace: Duration::from_secs(5),
        ..Default::default()
    };
    let max_frame = server_config.max_frame;
    let server = Server::bind(server_config).expect("bind load server");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let gallery = fixture_gallery();
    let figure1_json = &gallery[0];

    let (parity_sent, parity_answered, parity_errors, parity_ok) = run_parity(addr, figure1_json);

    // --- Load phase: good clients pipeline bursts, fault clients strike
    // between them at a deterministic cadence.
    let mut rng = Lcg(config.seed);
    let mut latencies_us: Vec<u64> =
        Vec::with_capacity(config.good_clients * config.queries_per_client);
    let mut sent = parity_sent;
    let mut answered = parity_answered;
    let mut exact = 0u64;
    let mut errors = parity_errors;
    let mut stalled = Vec::new();
    let fault_every = config
        .good_clients
        .checked_div(config.fault_clients)
        .map_or(usize::MAX, |n| n.max(1));
    let mut faults_launched = 0usize;
    let started = Instant::now();
    for c in 0..config.good_clients {
        if c % fault_every == 0 && faults_launched < config.fault_clients {
            if let Some(client) = run_fault_client(&mut rng, addr, config.spam_lines, max_frame) {
                stalled.push(client);
            }
            faults_launched += 1;
        }
        let program = &gallery[c % gallery.len()];
        let mut client = NetClient::connect(addr).expect("client connect");
        let opened = client.open(program).expect("open");
        assert_eq!(status_of(&opened), "ok", "open failed: {opened}");
        let events = 6usize; // every gallery fixture has at least 6 events
        let mut send_times = Vec::with_capacity(config.queries_per_client);
        for q in 0..config.queries_per_client {
            let (a, b) = (rng.pick(events), rng.pick(events));
            let op = ["mhb", "chb", "ccw"][q % 3];
            client
                .send(&format!(
                    r#"{{"id": {q}, "op": "{op}", "a": {a}, "b": {b}}}"#
                ))
                .expect("send query");
            send_times.push(Instant::now());
            sent += 1;
        }
        for sent_at in send_times.iter().take(config.queries_per_client) {
            let doc = client.recv().expect("query response");
            latencies_us.push(sent_at.elapsed().as_micros() as u64);
            answered += 1;
            match status_of(&doc).as_str() {
                "exact" => exact += 1,
                "error" => errors += 1,
                other => panic!("unexpected status {other} under plain load: {doc}"),
            }
        }
    }
    let wall = started.elapsed();

    // --- Drain: stalled readers are still attached with queued frames;
    // the write timeout kills them and the drain completes cleanly.
    handle.drain();
    let report = join.join().expect("load server thread");
    drop(stalled);

    assert!(parity_ok, "network responses diverged from `eo serve`");
    let lost = sent - answered;
    assert_eq!(lost, 0, "a well-formed query went unanswered");

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 * p) as usize).min(latencies_us.len() - 1);
        latencies_us[idx]
    };
    let (p50_us, p99_us, p999_us) = (pct(0.50), pct(0.99), pct(0.999));
    let qps = (sent - parity_sent) as f64 / wall.as_secs_f64().max(1e-9);

    // --- Admission probe: a zero-quota server must reject every query
    // with a structured `overloaded` response carrying `retry_after_ms`.
    let admission_config = ServerConfig {
        per_tenant_inflight: 0,
        retry_after_ms: 25,
        ..Default::default()
    };
    let server = Server::bind(admission_config).expect("bind admission server");
    let addr = server.local_addr().expect("addr");
    let admission_handle = server.handle();
    let admission_join = std::thread::spawn(move || server.run());
    let mut client = NetClient::connect(addr).expect("admission connect");
    let opened = client.open(figure1_json).expect("admission open");
    assert_eq!(status_of(&opened), "ok");
    for q in 0..config.admission_queries {
        client
            .send(&format!(r#"{{"id": {q}, "op": "mhb", "a": 0, "b": 1}}"#))
            .expect("send admission query");
    }
    let mut admission_rejected = 0u64;
    let mut admission_retry_after_ms = -1i64;
    for _ in 0..config.admission_queries {
        let doc = client.recv().expect("admission response");
        if status_of(&doc) == "overloaded" {
            admission_rejected += 1;
            if admission_retry_after_ms < 0 {
                admission_retry_after_ms = json::parse(&doc)
                    .ok()
                    .and_then(|v| v.get("retry_after_ms").and_then(Value::as_i64))
                    .unwrap_or(-1);
            }
        }
    }
    drop(client);
    admission_handle.drain();
    let _ = admission_join.join();
    assert_eq!(
        admission_rejected, config.admission_queries as u64,
        "the zero-quota server must reject every query"
    );
    assert!(
        admission_retry_after_ms >= 0,
        "rejections carry retry_after_ms"
    );

    // --- Degradation probe: a 1 ms per-query deadline on a workload
    // whose summary cannot finish that fast yields sound degraded
    // answers — never errors, never silence. Under `--ignore-deps` the
    // conflicting writes below make every interleaving feasible, so the
    // schedule space dwarfs any millisecond budget.
    let slow_json = slow_trace_json();
    let degradation_config = ServerConfig {
        query_deadline_ms: 1,
        session: SessionConfig {
            engine: EngineOptions::with_mode(FeasibilityMode::IgnoreDependences),
            cache: false,
            prefilter: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Server::bind(degradation_config).expect("bind degradation server");
    let addr = server.local_addr().expect("addr");
    let degradation_handle = server.handle();
    let degradation_join = std::thread::spawn(move || server.run());
    let mut client = NetClient::connect(addr).expect("degradation connect");
    let opened = client.open(&slow_json).expect("degradation open");
    assert_eq!(status_of(&opened), "ok");
    let mut degradation_degraded = 0u64;
    for q in 0..config.degradation_queries {
        let doc = client
            .request(&format!(r#"{{"id": {q}, "op": "summary"}}"#))
            .expect("degradation response");
        match status_of(&doc).as_str() {
            "degraded" => degradation_degraded += 1,
            "exact" => {}
            other => panic!("unexpected status {other} under deadline pressure: {doc}"),
        }
    }
    drop(client);
    degradation_handle.drain();
    let _ = degradation_join.join();
    assert!(
        degradation_degraded > 0,
        "the 1 ms deadline must degrade at least one summary"
    );

    ServerLoadResult {
        good_clients: config.good_clients,
        fault_clients: faults_launched,
        queries: sent,
        answered,
        lost,
        exact,
        errors,
        wall,
        qps,
        p50_us,
        p99_us,
        p999_us,
        parity_ok,
        report,
        admission_queries: config.admission_queries as u64,
        admission_rejected,
        admission_retry_after_ms,
        degradation_queries: config.degradation_queries as u64,
        degradation_degraded,
    }
}

/// Renders one harness run as the committed `BENCH_server.json` document.
pub fn server_load_json(r: &ServerLoadResult) -> String {
    format!(
        concat!(
            "{{\n  \"schema_version\": 1,\n  \"experiment\": \"e18_server_load\",\n",
            "  \"load\": {{\"good_clients\": {}, \"fault_clients\": {}, \"queries\": {}, ",
            "\"answered\": {}, \"lost\": {}, \"exact\": {}, \"errors\": {}, ",
            "\"wall_ms\": {:.3}, \"qps\": {:.0}, ",
            "\"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"parity_ok\": {}}},\n",
            "  \"server\": {{\"accepted\": {}, \"refused_conns\": {}, \"frames\": {}, ",
            "\"bad_frames\": {}, \"requests\": {}, \"responses\": {}, \"rejected\": {}, ",
            "\"shed\": {}, \"timeout_kills\": {}, \"sessions_rebuilt\": {}, ",
            "\"evictions\": {}, \"orphaned\": {}, \"drained_clean\": {}}},\n",
            "  \"admission\": {{\"queries\": {}, \"rejected\": {}, \"retry_after_ms\": {}}},\n",
            "  \"degradation\": {{\"queries\": {}, \"degraded\": {}}}\n}}\n"
        ),
        r.good_clients,
        r.fault_clients,
        r.queries,
        r.answered,
        r.lost,
        r.exact,
        r.errors,
        r.wall.as_secs_f64() * 1e3,
        r.qps,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.parity_ok,
        r.report.accepted,
        r.report.refused_conns,
        r.report.frames,
        r.report.bad_frames,
        r.report.requests,
        r.report.responses,
        r.report.rejected,
        r.report.shed,
        r.report.timeout_kills,
        r.report.sessions_rebuilt,
        r.report.evictions,
        r.report.orphaned,
        r.report.drained_clean,
        r.admission_queries,
        r.admission_rejected,
        r.admission_retry_after_ms,
        r.degradation_queries,
        r.degradation_degraded,
    )
}

/// One invariant's verdict from the server-robustness gate.
#[derive(Clone, Debug)]
pub struct ServerCheck {
    /// What was checked.
    pub invariant: String,
    /// The committed baseline's value, rendered.
    pub committed: String,
    /// This run's value, rendered.
    pub current: String,
    /// Human-readable failures; empty = passed.
    pub failures: Vec<String>,
}

/// Compares a committed `BENCH_server.json` and a freshly measured
/// (smoke-scale) run. The gated properties are *invariants*, not
/// machine-dependent throughput: zero lost answers, byte-parity with
/// `eo serve`, total rejection under zero quota, sound degradation under
/// deadline pressure, hostile traffic absorbed, clean drain.
pub fn check_server_against(
    baseline_json: &str,
    current: &ServerLoadResult,
) -> Result<Vec<ServerCheck>, String> {
    let parsed = eo_obs::json::parse(baseline_json)
        .map_err(|e| format!("server baseline JSON at byte {}: {}", e.offset, e.message))?;
    let section = |name: &str| {
        parsed
            .get(name)
            .cloned()
            .ok_or_else(|| format!("server baseline has no \"{name}\" section"))
    };
    let load = section("load")?;
    let server = section("server")?;
    let admission = section("admission")?;
    let degradation = section("degradation")?;
    let num = |v: &Value, name: &str| {
        v.get(name)
            .and_then(Value::as_i64)
            .ok_or_else(|| format!("server baseline missing numeric \"{name}\""))
    };
    let boolean = |v: &Value, name: &str| match v.get(name) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("server baseline missing boolean \"{name}\"")),
    };

    let mut out = Vec::new();
    let mut check =
        |invariant: &str, committed: String, now: String, ok_committed: bool, ok_now: bool| {
            let mut failures = Vec::new();
            if !ok_committed {
                failures.push(format!("committed baseline violates: {invariant}"));
            }
            if !ok_now {
                failures.push(format!("re-measured run violates: {invariant}"));
            }
            out.push(ServerCheck {
                invariant: invariant.to_string(),
                committed,
                current: now,
                failures,
            });
        };

    let b_lost = num(&load, "lost")?;
    check(
        "zero lost answers",
        b_lost.to_string(),
        current.lost.to_string(),
        b_lost == 0,
        current.lost == 0,
    );
    let b_parity = boolean(&load, "parity_ok")?;
    check(
        "byte parity with eo serve",
        b_parity.to_string(),
        current.parity_ok.to_string(),
        b_parity,
        current.parity_ok,
    );
    let (b_adm_q, b_adm_r) = (num(&admission, "queries")?, num(&admission, "rejected")?);
    check(
        "zero quota rejects every query",
        format!("{b_adm_r}/{b_adm_q}"),
        format!(
            "{}/{}",
            current.admission_rejected, current.admission_queries
        ),
        b_adm_q > 0 && b_adm_r == b_adm_q,
        current.admission_queries > 0 && current.admission_rejected == current.admission_queries,
    );
    let b_deg = num(&degradation, "degraded")?;
    check(
        "deadline pressure degrades soundly",
        b_deg.to_string(),
        current.degradation_degraded.to_string(),
        b_deg > 0,
        current.degradation_degraded > 0,
    );
    let b_bad = num(&server, "bad_frames")?;
    check(
        "hostile frames absorbed",
        b_bad.to_string(),
        current.report.bad_frames.to_string(),
        b_bad > 0,
        current.report.bad_frames > 0,
    );
    let b_drained = boolean(&server, "drained_clean")?;
    check(
        "drain completes cleanly",
        b_drained.to_string(),
        current.report.drained_clean.to_string(),
        b_drained,
        current.report.drained_clean,
    );
    Ok(out)
}
