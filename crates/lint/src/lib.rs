//! `eo-lint`: static synchronization analysis for `eo-lang` programs.
//!
//! The paper's model makes synchronization *first-class data*: programs
//! coordinate only through fork/join, counting semaphores, and
//! Post/Wait/Clear event variables, and executions are finite. That
//! makes a surprising amount of misuse statically decidable — and this
//! crate decides it:
//!
//! * **misuse lints** — waits that nothing can satisfy (`EO-L001`,
//!   `EO-L009`), waits racing `Clear` (`EO-L002`), semaphores that are
//!   over-acquired on every run (`EO-L003`) or only conditionally
//!   supplied (`EO-L004`), posts no wait can ever observe (`EO-L005`),
//!   joins on maybe-unforked processes (`EO-L006`), forked-but-never-
//!   joined style findings (`EO-L008`);
//! * **deadlock cycles** (`EO-L007`) — a wait-for graph over process
//!   definitions, edge-filtered by the Callahan–Subhlok guaranteed
//!   orderings of `eo-approx`, whose cycles are potential deadlocks.
//!
//! Together the `Warning`-and-above findings form a *sound*
//! over-approximation of dynamic deadlock: a program whose report
//! [`LintReport::is_clean`] cannot deadlock under any scheduler. The
//! property tests cross-check exactly this against the interpreter's
//! dynamic deadlock detection over random programs and schedules.
//!
//! Diagnostics anchor at statements (or observed events, when linting a
//! [`eo_model::Trace`] via [`trace_lint`]) and render as compiler-style
//! text or JSON — see [`LintReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod deadlock;
pub mod diag;
mod lints;
mod surface;
pub mod trace_lint;

pub use diag::{codes, Anchor, Diagnostic, LintReport, Severity};
pub use trace_lint::{lint_trace, program_from_trace, TraceLintError};

use eo_lang::{Program, ProgramError};

/// Knobs for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Emit `Info`-level style findings (e.g. `EO-L008`
    /// forked-never-joined). On by default; switched off when linting
    /// traces, whose reconstructed programs routinely leave processes
    /// unjoined.
    pub style: bool,
    /// Run the `eo-mhp` may-happen-in-parallel fixpoint and emit its
    /// findings: static shared-access races (`EO-L010`), unreachable
    /// statements (`EO-L011`), and blocking statements that can never
    /// fire (`EO-L012`). Off by default — race findings are expected in
    /// racy-by-design workloads, so they are opt-in (`eo lint --mhp`).
    pub mhp: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            style: true,
            mhp: false,
        }
    }
}

impl LintOptions {
    /// The options [`lint_trace`] uses: no style findings, no MHP pass.
    pub fn for_trace() -> Self {
        LintOptions {
            style: false,
            mhp: false,
        }
    }
}

/// Lints a program: validates it, then runs every analysis.
///
/// Returns `Err` only when the program fails static validation (dangling
/// references, bad fork structure); a *valid* program always yields a
/// report, possibly empty.
pub fn lint_program(program: &Program, opts: &LintOptions) -> Result<LintReport, ProgramError> {
    eo_obs::span!("lint.program");
    program.validate()?;
    let report = lint_validated(program, opts);
    eo_obs::counter!("lint.programs", 1u64);
    eo_obs::counter!("lint.diagnostics", report.diagnostics.len() as u64);
    Ok(report)
}

/// Lints an already-validated program.
pub(crate) fn lint_validated(program: &Program, opts: &LintOptions) -> LintReport {
    if program.uses_surface_sync() {
        return lint_surface(program, opts);
    }
    let ctx = analysis::Ctx::build(program);
    let mut out = Vec::new();
    lints::sync_lints(&ctx, opts, &mut out);
    deadlock::deadlock_lints(&ctx, &mut out);
    LintReport { diagnostics: out }.finish()
}

/// Lints a program using surface primitives: desugar to the semaphore
/// core, lint the core, remap every statement anchor back to the surface
/// statement it came from (regenerating locations in surface terms),
/// then add the surface-only `EO-L013` misuse lints the lowering erases.
///
/// Soundness carries over: the desugaring agrees with the direct surface
/// semantics schedule-for-schedule (including deadlock prefixes — the
/// `eo-lang` explore differential pins this), so a core finding is a
/// surface finding. Several core statements of one surface statement can
/// produce the same finding; those dedupe on (code, anchor, message).
///
/// One refinement keeps well-behaved monitor code from drowning in
/// `EO-L007` noise: the wait-for deadlock pass runs on a variant of the
/// core in which every *erasable* mutex — bracket-disciplined and never
/// held across a potentially-blocking statement, see
/// [`surface::erasable_mutexes`] — has its lock/unlock `P`/`V` pairs
/// replaced by `Skip`. Such a mutex provably cannot cause a permanent
/// block (every holder releases unconditionally), so dropping its edges
/// is sound; everything uncertain stays in the graph.
fn lint_surface(program: &Program, opts: &LintOptions) -> LintReport {
    let lowered = eo_lang::desugar(program).expect("program was validated");
    let map = eo_lang::stmt::StmtMap::build(program);
    let mut core_diags: Vec<Diagnostic> = Vec::new();
    {
        let ctx = analysis::Ctx::build(&lowered.program);
        lints::sync_lints(&ctx, opts, &mut core_diags);
    }
    {
        let erasable = surface::erasable_mutexes(program, &map);
        let deadlock_prog = surface::erase_mutexes(&lowered, &map, &erasable);
        let ctx = analysis::Ctx::build(&deadlock_prog);
        deadlock::deadlock_lints(&ctx, &mut core_diags);
    }
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for d in core_diags {
        let d = match d.anchor {
            Anchor::Stmt(core_id) => {
                let sid = lowered.map.surface_of(core_id);
                Diagnostic {
                    anchor: Anchor::Stmt(sid),
                    location: map.describe(sid),
                    ..d
                }
            }
            _ => d,
        };
        let key = (
            d.code,
            match d.anchor {
                Anchor::Program => (0u8, 0usize),
                Anchor::Stmt(s) => (1, s.index()),
                Anchor::Event(e) => (2, e.index()),
            },
            d.message.clone(),
        );
        if seen.insert(key) {
            out.push(d);
        }
    }
    surface::surface_lints(program, &map, opts, &mut out);
    LintReport { diagnostics: out }.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_lang::generator::{barrier_program, figure1_program, fork_join_tree, pipeline_program};
    use eo_lang::{ProgramBuilder, StmtKind};

    fn lint(program: &Program) -> LintReport {
        lint_program(program, &LintOptions::default()).expect("valid program")
    }

    fn codes_of(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    // ---- deadlock cycles (EO-L007) ------------------------------------

    #[test]
    fn classic_semaphore_cycle_is_flagged() {
        let mut b = ProgramBuilder::new();
        let (sa, sb) = (b.semaphore("a"), b.semaphore("b"));
        let p1 = b.process("p1");
        b.sem_p(p1, sa).sem_v(p1, sb);
        let p2 = b.process("p2");
        b.sem_p(p2, sb).sem_v(p2, sa);
        let report = lint(&b.build());
        assert_eq!(
            codes_of(&report),
            vec![codes::DEADLOCK_CYCLE],
            "{}",
            report.render_text()
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn producer_consumer_handshake_is_clean() {
        // Same statements, supply-before-demand order: no deadlock.
        let mut b = ProgramBuilder::new();
        let (sa, sb) = (b.semaphore("a"), b.semaphore("b"));
        let p1 = b.process("p1");
        b.sem_v(p1, sa).sem_p(p1, sb);
        let p2 = b.process("p2");
        b.sem_v(p2, sb).sem_p(p2, sa);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn mutual_wait_post_cycle_is_flagged() {
        let mut b = ProgramBuilder::new();
        let (u, v) = (b.event_var("u"), b.event_var("v"));
        let p1 = b.process("p1");
        b.wait(p1, u).post(p1, v);
        let p2 = b.process("p2");
        b.wait(p2, v).post(p2, u);
        let report = lint(&b.build());
        assert_eq!(
            codes_of(&report),
            vec![codes::DEADLOCK_CYCLE],
            "{}",
            report.render_text()
        );
        let d = &report.diagnostics[0];
        assert!(
            d.message.contains("`p1`") && d.message.contains("`p2`"),
            "{}",
            d.message
        );
        assert!(!d.notes.is_empty(), "cycle warnings explain their edges");
    }

    #[test]
    fn post_before_wait_handshake_is_clean() {
        let mut b = ProgramBuilder::new();
        let (u, v) = (b.event_var("u"), b.event_var("v"));
        let p1 = b.process("p1");
        b.post(p1, u).wait(p1, v);
        let p2 = b.process("p2");
        b.post(p2, v).wait(p2, u);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn self_supply_after_own_block_is_a_self_loop() {
        // p: P(s); V(s) with s=0 — the V can never run.
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p = b.process("p");
        b.sem_p(p, s).sem_v(p, s);
        let report = lint(&b.build());
        assert!(
            codes_of(&report).contains(&codes::DEADLOCK_CYCLE),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn initial_count_that_covers_all_acquires_suppresses_cycles() {
        // Structurally a cycle, but the initial counts satisfy every P.
        let mut b = ProgramBuilder::new();
        let sa = b.semaphore_init("a", 1);
        let sb = b.semaphore_init("b", 1);
        let p1 = b.process("p1");
        b.sem_p(p1, sa).sem_v(p1, sb);
        let p2 = b.process("p2");
        b.sem_p(p2, sb).sem_v(p2, sa);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    // ---- wait supply (EO-L001, EO-L009, EO-L002, EO-L005) -------------

    #[test]
    fn wait_never_posted_is_an_error() {
        let mut b = ProgramBuilder::new();
        let v = b.event_var("v");
        let p = b.process("p");
        b.wait(p, v);
        let report = lint(&b.build());
        assert_eq!(codes_of(&report), vec![codes::WAIT_NEVER_POSTED]);
        assert!(report.has_errors());
    }

    #[test]
    fn initially_set_flag_satisfies_waits() {
        let mut b = ProgramBuilder::new();
        let v = b.event_var_init("v", true);
        let p = b.process("p");
        b.wait(p, v);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn conditional_only_posts_warn() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let v = b.event_var("v");
        let p1 = b.process("p1");
        b.if_eq(
            p1,
            x,
            0,
            |t| {
                t.post_here(v);
            },
            |_| {},
        );
        let p2 = b.process("p2");
        b.wait(p2, v);
        let report = lint(&b.build());
        assert_eq!(
            codes_of(&report),
            vec![codes::WAIT_MAYBE_UNSUPPLIED],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn clear_race_warns() {
        let mut b = ProgramBuilder::new();
        let v = b.event_var("v");
        let p1 = b.process("p1");
        b.post(p1, v);
        let p2 = b.process("p2");
        b.clear(p2, v);
        let p3 = b.process("p3");
        b.wait(p3, v);
        let report = lint(&b.build());
        assert!(
            codes_of(&report).contains(&codes::WAIT_CLEAR_RACE),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn sequenced_clear_then_post_is_safe() {
        // Clear is guaranteed before the Post, and the Post completes
        // before the Wait is reached: no interleaving can lose the flag.
        let mut b = ProgramBuilder::new();
        let v = b.event_var_init("v", true);
        let p = b.process("p");
        b.clear(p, v).post(p, v).wait(p, v);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn dead_post_is_reported() {
        // The post is erased by the same process's own clear before any
        // wait is guaranteed to have seen it.
        let mut b = ProgramBuilder::new();
        let v = b.event_var("v");
        let p1 = b.process("p1");
        b.post(p1, v).clear(p1, v);
        let p2 = b.process("p2");
        b.wait(p2, v);
        let report = lint(&b.build());
        let found = codes_of(&report);
        assert!(
            found.contains(&codes::DEAD_POST),
            "{}",
            report.render_text()
        );
        assert!(
            found.contains(&codes::WAIT_CLEAR_RACE),
            "the wait also races the clear"
        );
    }

    // ---- semaphore counting (EO-L003, EO-L004) ------------------------

    #[test]
    fn p_with_no_supply_is_an_error() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p = b.process("p");
        b.sem_p(p, s);
        let report = lint(&b.build());
        assert_eq!(codes_of(&report), vec![codes::SEM_NEVER_SUPPLIED]);
        assert!(report.has_errors());
    }

    #[test]
    fn over_acquisition_on_every_run_is_an_error() {
        let mut b = ProgramBuilder::new();
        let s = b.semaphore("s");
        let p1 = b.process("p1");
        b.sem_v(p1, s).sem_p(p1, s);
        let p2 = b.process("p2");
        b.sem_p(p2, s);
        let report = lint(&b.build());
        assert!(
            codes_of(&report).contains(&codes::SEM_NEVER_SUPPLIED),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn conditional_supply_warns() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let s = b.semaphore("s");
        let p1 = b.process("p1");
        b.if_eq(
            p1,
            x,
            0,
            |t| {
                t.sem_v_here(s);
            },
            |_| {},
        );
        let p2 = b.process("p2");
        b.sem_p(p2, s);
        let report = lint(&b.build());
        assert_eq!(
            codes_of(&report),
            vec![codes::SEM_MAY_STARVE],
            "{}",
            report.render_text()
        );
    }

    // ---- fork/join (EO-L006, EO-L008) ---------------------------------

    #[test]
    fn join_on_conditionally_forked_process_warns() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let main = b.process("main");
        let child = b.subprocess("child");
        b.if_eq(
            main,
            x,
            0,
            |t| {
                t.fork_here(&[child]);
            },
            |_| {},
        );
        b.join(main, &[child]);
        let report = lint(&b.build());
        assert!(
            codes_of(&report).contains(&codes::JOIN_MAYBE_UNFORKED),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn fork_then_join_is_clean() {
        let mut b = ProgramBuilder::new();
        let main = b.process("main");
        let w = b.subprocess("worker");
        b.fork(main, &[w]).join(main, &[w]);
        b.skip(w);
        let report = lint(&b.build());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    fn forked_never_joined_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.process("main");
        let w = b.subprocess("worker");
        b.fork(main, &[w]);
        b.skip(w);
        b.build()
    }

    #[test]
    fn forked_never_joined_is_info_only() {
        let report = lint(&forked_never_joined_program());
        assert_eq!(codes_of(&report), vec![codes::FORKED_NEVER_JOINED]);
        assert!(report.is_clean(), "style findings do not dirty the report");
        let quiet =
            lint_program(&forked_never_joined_program(), &LintOptions::for_trace()).expect("valid");
        assert!(quiet.is_empty(), "trace options suppress style lints");
    }

    // ---- whole-program families ---------------------------------------

    #[test]
    fn generator_families_are_clean() {
        for (name, prog) in [
            ("figure1", figure1_program()),
            ("pipeline", pipeline_program(3, 2)),
            ("barrier", barrier_program(3, 2)),
            ("fork_join_tree", fork_join_tree(2, 2)),
        ] {
            let report = lint(&prog);
            assert!(
                report.is_clean(),
                "{name} should lint clean:\n{}",
                report.render_text()
            );
        }
    }

    // ---- opt-in MHP findings (EO-L010..L012) --------------------------

    fn racy_two_writer_program() -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let p1 = b.process("p1");
        b.assign(p1, x, 1);
        let p2 = b.process("p2");
        b.assign(p2, x, 2);
        b.build()
    }

    #[test]
    fn mhp_lints_are_off_by_default() {
        let report = lint(&racy_two_writer_program());
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn mhp_flags_unordered_conflicting_accesses() {
        let opts = LintOptions {
            mhp: true,
            ..LintOptions::default()
        };
        let report = lint_program(&racy_two_writer_program(), &opts).expect("valid");
        assert_eq!(
            codes_of(&report),
            vec![codes::MHP_STATIC_RACE],
            "{}",
            report.render_text()
        );
        assert!(!report.is_clean());
        let d = &report.diagnostics[0];
        assert!(
            d.message.contains("`p1`") && d.message.contains("`p2`"),
            "{}",
            d.message
        );
    }

    #[test]
    fn mhp_stays_quiet_on_an_ordered_handshake() {
        // Same conflicting accesses, but a semaphore handshake orders
        // them in every execution.
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let s = b.semaphore("s");
        let p1 = b.process("p1");
        b.assign(p1, x, 1).sem_v(p1, s);
        let p2 = b.process("p2");
        b.sem_p(p2, s).assign(p2, x, 2);
        let opts = LintOptions {
            mhp: true,
            ..LintOptions::default()
        };
        let report = lint_program(&b.build(), &opts).expect("valid");
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn mhp_reports_blocked_forever_and_poisoned_successors() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let v = b.event_var("v");
        let p = b.process("p");
        b.wait(p, v).assign(p, x, 1);
        let opts = LintOptions {
            mhp: true,
            ..LintOptions::default()
        };
        let report = lint_program(&b.build(), &opts).expect("valid");
        let found = codes_of(&report);
        assert!(
            found.contains(&codes::WAIT_NEVER_POSTED),
            "{}",
            report.render_text()
        );
        assert!(
            found.contains(&codes::MHP_BLOCKED_FOREVER),
            "{}",
            report.render_text()
        );
        assert!(
            found.contains(&codes::MHP_UNREACHABLE),
            "the assignment after the dead wait is poisoned: {}",
            report.render_text()
        );
    }

    // ---- surface primitives (EO-L013 + remapped core findings) --------

    #[test]
    fn clean_monitor_program_lints_clean() {
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let cv = b.condvar("cv");
        let p0 = b.process("p0");
        b.compute(p0, "work").cond_signal(p0, cv);
        let p1 = b.process("p1");
        b.lock(p1, m).cond_wait(p1, cv, m).unlock(p1, m);
        let report = lint(&b.build());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn unlock_without_lock_is_an_error() {
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let p = b.process("p");
        b.unlock(p, m);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(!l13.is_empty(), "{}", report.render_text());
        assert!(l13[0].message.contains("does not hold"));
        assert!(report.has_errors());
    }

    #[test]
    fn cond_wait_without_the_lock_is_an_error() {
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let cv = b.condvar("cv");
        let p0 = b.process("p0");
        b.cond_signal(p0, cv);
        let p1 = b.process("p1");
        b.cond_wait(p1, cv, m);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(
            l13.iter().any(|d| d.message.contains("without holding")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn relocking_a_held_mutex_is_an_error() {
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let p = b.process("p");
        b.lock(p, m).lock(p, m).unlock(p, m).unlock(p, m);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(
            l13.iter().any(|d| d.message.contains("relocking")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn conditionally_held_lock_stays_silent() {
        // One branch locks, the other does not: held ∈ {0, 1} at the
        // unlock — uncertain, so no finding either way.
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let m = b.mutex("m");
        let p = b.process("p");
        b.if_eq(
            p,
            x,
            0,
            |t| {
                t.lock_here(m);
            },
            |_| {},
        );
        b.unlock(p, m);
        let report = lint(&b.build());
        assert!(
            report.with_code(codes::SURFACE_MISUSE).is_empty(),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn recv_on_a_never_sent_channel_is_an_error() {
        let mut b = ProgramBuilder::new();
        let ch = b.channel("ch", 1);
        let p = b.process("p");
        b.recv(p, ch);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(
            l13.iter().any(|d| d.message.contains("nothing ever sends")),
            "{}",
            report.render_text()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn over_sending_past_capacity_plus_receives_is_an_error() {
        let mut b = ProgramBuilder::new();
        let ch = b.channel("ch", 1);
        let p0 = b.process("p0");
        b.send(p0, ch).send(p0, ch).send(p0, ch);
        let p1 = b.process("p1");
        b.recv(p1, ch);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(
            l13.iter().any(|d| d.message.contains("over-sent")),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn balanced_channel_traffic_is_clean() {
        let mut b = ProgramBuilder::new();
        let ch = b.channel("ch", 2);
        let p0 = b.process("p0");
        b.send(p0, ch).send(p0, ch);
        let p1 = b.process("p1");
        b.recv(p1, ch).recv(p1, ch);
        let report = lint(&b.build());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn unawaited_signal_is_style_info() {
        let mut b = ProgramBuilder::new();
        let _m = b.mutex("m");
        let cv = b.condvar("cv");
        let p = b.process("p");
        b.cond_signal(p, cv);
        let report = lint(&b.build());
        let l13 = report.with_code(codes::SURFACE_MISUSE);
        assert!(
            l13.iter()
                .any(|d| d.severity == Severity::Info && d.message.contains("nothing ever waits")),
            "{}",
            report.render_text()
        );
        assert!(report.is_clean(), "style finding only");
    }

    #[test]
    fn core_findings_remap_to_surface_anchors() {
        // A cond_wait nothing signals: the core lint flags the lowered
        // `P(cv.cv)` as never-supplied; the anchor must point at the
        // surface cond_wait statement and render in surface terms.
        let mut b = ProgramBuilder::new();
        let m = b.mutex("m");
        let cv = b.condvar("cv");
        let p = b.process("p");
        b.lock(p, m).cond_wait(p, cv, m);
        let prog = b.build();
        let report = lint(&prog);
        let never = report.with_code(codes::SEM_NEVER_SUPPLIED);
        assert!(!never.is_empty(), "{}", report.render_text());
        let map = eo_lang::stmt::StmtMap::build(&prog);
        for d in never {
            if let Anchor::Stmt(s) = d.anchor {
                assert!(s.index() < map.len(), "surface numbering, not core");
                assert_eq!(d.location, map.describe(s));
            } else {
                panic!("expected a statement anchor");
            }
        }
    }

    #[test]
    fn barrier_program_with_surface_primitive_lints_clean() {
        let mut b = ProgramBuilder::new();
        let bar = b.barrier("bar", 2);
        let p0 = b.process("p0");
        b.compute(p0, "a").barrier_wait(p0, bar);
        let p1 = b.process("p1");
        b.compute(p1, "b").barrier_wait(p1, bar);
        let report = lint(&b.build());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn reports_render_and_serialize() {
        let mut b = ProgramBuilder::new();
        let v = b.event_var("v");
        let p = b.process("p");
        b.wait(p, v);
        let report = lint(&b.build());
        let text = report.render_text();
        assert!(text.contains("error[EO-L001]"), "{text}");
        assert!(text.contains("--> `p` stmt #0"), "{text}");
        let json = report.to_json().pretty();
        assert!(json.contains("\"EO-L001\""), "{json}");
        assert!(json.contains("\"errors\": 1"), "{json}");
    }

    #[test]
    fn diagnostics_sort_most_severe_first() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let (u, v) = (b.event_var("u"), b.event_var("v"));
        let p = b.process("p");
        b.wait(p, v); // error: never posted
        let p2 = b.process("p2");
        b.if_eq(
            p2,
            x,
            0,
            |t| {
                t.post_here(u);
            },
            |_| {},
        );
        let p3 = b.process("p3");
        b.wait(p3, u); // warning: conditional supply
        let report = lint(&b.build());
        let sevs: Vec<_> = report.diagnostics.iter().map(|d| d.severity).collect();
        assert_eq!(sevs, vec![Severity::Error, Severity::Warning]);
    }

    #[test]
    fn invalid_programs_are_rejected_not_linted() {
        let program = Program {
            processes: vec![eo_lang::ProcDef {
                name: "p".into(),
                root: true,
                body: vec![eo_lang::Stmt::new(StmtKind::SemP(eo_model::SemId::new(7)))],
            }],
            ..Default::default()
        };
        assert!(lint_program(&program, &LintOptions::default()).is_err());
    }
}
