//! Shared fixtures for the binary-level (spawn-the-real-binary) tests.

/// A trace whose `--ignore-deps` analysis runs for many seconds (every
/// interleaving of the conflicting writes is feasible, so the schedule
/// space is enormous), giving signal-handling tests a wide window in
/// which the analysis is genuinely mid-flight.
pub fn slow_trace_json() -> String {
    let procs = 4usize;
    let per_proc = 4usize;
    let mut events = Vec::new();
    let children: Vec<String> = (1..procs).map(|p| p.to_string()).collect();
    events.push(format!(
        r#"{{"id":0,"process":0,"op":{{"Fork":[{}]}},"reads":[],"writes":[],"label":null}}"#,
        children.join(",")
    ));
    let mut id = 1usize;
    for p in 0..procs {
        for _ in 0..per_proc {
            events.push(format!(
                r#"{{"id":{id},"process":{p},"op":"Compute","reads":[0],"writes":[0],"label":null}}"#
            ));
            id += 1;
        }
    }
    let processes: Vec<String> = std::iter::once(r#"{"name":"main","created_by":null}"#.to_owned())
        .chain((1..procs).map(|p| format!(r#"{{"name":"t{p}","created_by":0}}"#)))
        .collect();
    format!(
        r#"{{"events":[{}],"processes":[{}],"semaphores":[],"event_vars":[],"variables":[{{"name":"X"}}]}}"#,
        events.join(","),
        processes.join(",")
    )
}
