//! In-process integration tests for the network server: protocol round
//! trips, byte-parity with batch serving, admission control, LRU
//! eviction, timeouts, panic rebuild, and graceful drain.

use eo_model::fixtures;
use eo_obs::json::{self, Value};
use eo_serve::net::client::open_request;
use eo_serve::net::{NetClient, Server, ServerConfig, ServerHandle, ServerReport};
use eo_serve::{serve_batch, ServeConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn figure1_json() -> String {
    let (trace, _) = fixtures::figure1();
    trace.to_value().pretty()
}

fn crossing_json() -> String {
    let (trace, _, _) = fixtures::crossing();
    trace.to_value().pretty()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(20),
        drain_deadline: Duration::from_secs(2),
        drain_grace: Duration::from_secs(2),
        ..Default::default()
    }
}

fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServerReport>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn status_of(doc: &str) -> String {
    json::parse(doc)
        .expect("response is valid JSON")
        .get("status")
        .and_then(Value::as_str)
        .expect("response carries status")
        .to_owned()
}

#[test]
fn network_replay_is_byte_identical_to_batch_serving() {
    let (addr, handle, join) = start(test_config());
    let mut client = NetClient::connect(addr).expect("connect");
    let opened = client.open(&figure1_json()).expect("open");
    assert_eq!(status_of(&opened), "ok");

    // A mixed request stream, malformed entries included: net frame
    // sequence numbers count the open frame, so the batch input gets one
    // leading blank line to align error positions. Byte parity then
    // covers errors too.
    let requests = [
        r#"{"id": 1, "op": "mhb", "a": 0, "b": 1}"#,
        r#"{"id": 2, "op": "ccw", "a": 2, "b": 5}"#,
        r#"{"id": 3, "op": "witness_overlap", "a": 2, "b": 5}"#,
        r#"{"id": 4, "op": "nope"}"#,
        r#"{"id": 5, "op": "mhb", "a": 0, "b": 99}"#,
        r#"{"id": 6, "op": "summary"}"#,
        r#"{"id": 7, "op": "races"}"#,
        r#"{"id": 8, "op": "mhb", "a": 0, "b": 1}"#,
    ];
    // Pipelined: all frames out, then all responses in, in order.
    for r in &requests {
        client.send(r).expect("send");
    }
    let from_net: Vec<String> = requests
        .iter()
        .map(|_| client.recv().expect("recv"))
        .collect();

    let (trace, _) = fixtures::figure1();
    let exec = trace.to_execution().expect("fixture is valid");
    let batch_input = format!("\n{}\n", requests.join("\n"));
    let from_batch = serve_batch(
        &exec,
        &batch_input,
        &ServeConfig {
            threads: 1,
            ..Default::default()
        },
    );
    assert_eq!(from_net, from_batch.responses, "byte-identical responses");

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert!(report.drained_clean);
    assert_eq!(report.accepted, 1);
    assert_eq!(report.requests, requests.len() as u64);
    assert_eq!(report.responses, requests.len() as u64);
}

#[test]
fn ping_works_and_queries_before_open_are_errors() {
    let (addr, handle, join) = start(test_config());
    let mut client = NetClient::connect(addr).expect("connect");
    let pong = client
        .request(r#"{"id": "p", "op": "ping"}"#)
        .expect("ping");
    let v = json::parse(&pong).expect("valid JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("id").and_then(Value::as_str), Some("p"));

    let early = client
        .request(r#"{"id": 9, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("request");
    let v = json::parse(&early).expect("valid JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    assert_eq!(v.get("line").and_then(Value::as_i64), Some(2));

    let bad_open = client
        .request(&open_request("this is not a trace", None))
        .expect("open");
    assert_eq!(status_of(&bad_open), "error");

    // The connection survived all of it.
    let opened = client.open(&figure1_json()).expect("open");
    assert_eq!(status_of(&opened), "ok");
    let answer = client
        .request(r#"{"id": 10, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query");
    assert_eq!(status_of(&answer), "exact");

    drop(client);
    handle.drain();
    join.join().expect("server thread");
}

#[test]
fn a_full_store_rejects_new_programs_then_admits_after_eviction() {
    let config = ServerConfig {
        max_programs: 1,
        ..test_config()
    };
    let (addr, handle, join) = start(config);

    let mut holder = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&holder.open(&figure1_json()).expect("open")),
        "ok"
    );

    let mut second = NetClient::connect(addr).expect("connect");
    let refused = second.open(&crossing_json()).expect("open");
    let v = json::parse(&refused).expect("valid JSON");
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("overloaded"),
        "a full store of busy tenants rejects up front: {refused}"
    );
    assert!(
        v.get("retry_after_ms").and_then(Value::as_i64).is_some(),
        "the rejection tells the client when to retry"
    );

    // Release the resident program; the retry should evict it and admit.
    drop(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    let admitted = loop {
        let response = second.open(&crossing_json()).expect("open retry");
        if status_of(&response) == "ok" {
            break response;
        }
        assert!(Instant::now() < deadline, "open never admitted: {response}");
        std::thread::sleep(Duration::from_millis(20));
    };
    let v = json::parse(&admitted).expect("valid JSON");
    assert_eq!(v.get("fresh"), Some(&Value::Bool(true)));

    drop(second);
    handle.drain();
    let report = join.join().expect("server thread");
    assert!(report.rejected >= 1);
    assert_eq!(report.evictions, 1);
}

#[test]
fn a_zero_quota_tenant_gets_structured_overload_rejections() {
    let config = ServerConfig {
        per_tenant_inflight: 0,
        retry_after_ms: 123,
        ..test_config()
    };
    let (addr, handle, join) = start(config);
    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&client.open(&figure1_json()).expect("open")),
        "ok"
    );
    for i in 0..10 {
        let response = client
            .request(&format!(r#"{{"id": {i}, "op": "mhb", "a": 0, "b": 1}}"#))
            .expect("request");
        let v = json::parse(&response).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_i64), Some(123));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(i));
    }
    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert_eq!(report.rejected, 10);
    assert_eq!(report.requests, 0, "nothing was admitted");
}

#[test]
fn configured_engine_caps_bound_network_queries() {
    // The operator's `--max-states`/`--max-mem` budget lives in
    // `session.engine.budget`; the per-request budget is renewed from it,
    // so a cap that would degrade an `eo serve` query must degrade the
    // same query over the network — not silently run unbounded.
    let mut config = test_config();
    config.session.prefilter = false;
    config.session.static_prefilter = false;
    config.session.engine.budget = Some(eo_engine::Budget::unlimited().with_max_states(1));
    let (addr, handle, join) = start(config);

    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&client.open(&figure1_json()).expect("open")),
        "ok"
    );
    // Every search-requiring query trips the one-state cap; later
    // requests still get their own fresh deadline and cancel flag, so
    // each degrades independently instead of failing harder.
    for i in 0..3 {
        let answer = client
            .request(&format!(r#"{{"id": {i}, "op": "ccw", "a": 2, "b": 5}}"#))
            .expect("query");
        assert_eq!(status_of(&answer), "degraded", "{answer}");
    }

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert_eq!(report.degraded, 3);
    assert_eq!(report.exact, 0);
}

#[test]
fn malformed_frames_cost_one_error_each_and_never_the_connection() {
    let (addr, handle, join) = start(test_config());
    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&client.open(&figure1_json()).expect("open")),
        "ok"
    );

    // Garbage that is not even a frame, then a well-formed frame whose
    // payload is not JSON, then a real query: the connection answers all
    // three in order.
    client.send_raw(b"complete garbage\n").expect("send");
    let bad_frame = client.recv().expect("recv");
    assert_eq!(status_of(&bad_frame), "error");

    client.send("this is not json").expect("send");
    let bad_json = client.recv().expect("recv");
    let v = json::parse(&bad_json).expect("valid JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    assert!(
        v.get("error")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("invalid request JSON")),
        "{bad_json}"
    );

    let answer = client
        .request(r#"{"id": 1, "op": "ccw", "a": 2, "b": 5}"#)
        .expect("query");
    assert_eq!(status_of(&answer), "exact");

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert_eq!(report.bad_frames, 1);
}

#[test]
fn a_slowloris_connection_is_killed_without_harming_others() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..test_config()
    };
    let (addr, handle, join) = start(config);

    let mut slow = NetClient::connect_with_timeout(addr, Duration::from_secs(5)).expect("connect");
    slow.send_raw(b"5:ab").expect("partial frame");
    // The server must cut us off once the partial frame outlives the
    // read timeout.
    let killed = matches!(
        slow.recv(),
        Err(ref e) if e.kind() == std::io::ErrorKind::UnexpectedEof
            || e.kind() == std::io::ErrorKind::ConnectionReset
    );
    assert!(killed, "partial frame past the read timeout kills the conn");

    // The server itself is fine.
    let mut live = NetClient::connect(addr).expect("connect");
    assert_eq!(status_of(&live.open(&figure1_json()).expect("open")), "ok");
    let answer = live
        .request(r#"{"id": 1, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query");
    assert_eq!(status_of(&answer), "exact");

    drop(live);
    drop(slow);
    handle.drain();
    let report = join.join().expect("server thread");
    assert!(report.timeout_kills >= 1);
}

#[test]
fn a_backpressured_connection_is_exempt_from_the_slowloris_clock() {
    // A pipelining client with a partial frame buffered must not be
    // killed as a slowloris while the *reactor* is the one refusing to
    // read (in-flight backpressure): the owed in-flight responses would
    // be orphaned, breaking the exactly-one-response invariant.
    let mut config = ServerConfig {
        per_conn_inflight: 1,
        read_timeout: Duration::from_millis(100),
        query_deadline_ms: 250,
        ..test_config()
    };
    config.session.cache = false;
    config.session.prefilter = false;
    // A wide program of mutually conflicting events under the
    // ignore-dependences reading: ~10^48 Mazurkiewicz classes, so a
    // summary enumeration cannot finish inside the deadline — each query
    // deterministically occupies the worker for the full 250ms, far past
    // `read_timeout`.
    config.session.engine =
        eo_engine::EngineOptions::with_mode(eo_engine::FeasibilityMode::IgnoreDependences);
    config.session.engine.budget = Some(eo_engine::Budget::unlimited().with_max_states(1 << 30));
    let (addr, handle, join) = start(config);

    let mut tb = eo_model::TraceBuilder::new();
    let shared = tb.variable("shared");
    for p in 0..10 {
        let pid = tb.process(&format!("p{p}"));
        for e in 0..6 {
            tb.push_full(
                pid,
                eo_model::Op::Compute,
                &[shared],
                &[shared],
                Some(&format!("c{p}_{e}")),
            );
        }
    }
    let big = tb.build().expect("trace is valid").to_value().pretty();

    let mut client =
        NetClient::connect_with_timeout(addr, Duration::from_secs(30)).expect("connect");
    assert_eq!(status_of(&client.open(&big).expect("open")), "ok");

    // One write carrying two whole query frames plus the head of a third:
    // the reactor decodes and routes both queries (going backpressured at
    // per_conn_inflight = 1) and is left holding the partial frame for
    // the whole ~500ms the worker needs — several read timeouts.
    use eo_serve::net::encode;
    let tail = encode(r#"{"id": "tail", "op": "ping"}"#);
    let mut burst = encode(r#"{"id": 1, "op": "summary"}"#);
    burst.extend_from_slice(&encode(r#"{"id": 2, "op": "summary"}"#));
    burst.extend_from_slice(&tail[..5]);
    client.send_raw(&burst).expect("send burst");

    for i in 1..=2 {
        let doc = client
            .recv()
            .expect("owed responses survive the stale partial frame");
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(i));
        assert_eq!(status_of(&doc), "degraded", "{doc}");
    }
    // Backpressure has lifted; finishing the frame now proves the
    // slowloris clock was reset while we were unreadable, not left to
    // expire the instant reading resumed.
    client.send_raw(&tail[5..]).expect("finish the tail frame");
    let pong = client.recv().expect("tail frame answered");
    assert_eq!(status_of(&pong), "ok");

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert_eq!(report.timeout_kills, 0, "{report:?}");
    assert_eq!(report.responses, 2);
}

#[cfg(feature = "fault-injection")]
#[test]
fn a_worker_panic_rebuilds_the_session_and_keeps_serving() {
    let (addr, handle, join) = start(test_config());
    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&client.open(&figure1_json()).expect("open")),
        "ok"
    );

    // Warm the cache, then panic the worker, then re-ask: the rebuilt
    // session must answer (the cache loss is invisible in the answer).
    let before = client
        .request(r#"{"id": 1, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query");
    assert_eq!(status_of(&before), "exact");

    let boom = client
        .request(r#"{"id": 2, "op": "__fault_panic"}"#)
        .expect("panic request");
    let v = json::parse(&boom).expect("valid JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    assert!(
        v.get("error")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("rebuilt")),
        "{boom}"
    );

    let after = client
        .request(r#"{"id": 3, "op": "mhb", "a": 0, "b": 1}"#)
        .expect("query");
    let (va, vb) = (
        json::parse(&before).expect("valid"),
        json::parse(&after).expect("valid"),
    );
    assert_eq!(va.get("answer"), vb.get("answer"));
    assert_eq!(
        vb.get("cached"),
        Some(&Value::Bool(false)),
        "the rebuilt session starts cold"
    );

    drop(client);
    handle.drain();
    let report = join.join().expect("server thread");
    assert_eq!(report.sessions_rebuilt, 1);
}

#[test]
fn drain_finishes_owed_work_and_reports_clean() {
    let (addr, handle, join) = start(test_config());
    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(
        status_of(&client.open(&figure1_json()).expect("open")),
        "ok"
    );
    // Pipeline a burst, then a ping barrier: frames are processed in
    // order and pings are answered inline at read time, so the pong
    // proves every query frame has been read and routed. Draining at
    // that point tests exactly the owed-work guarantee — accepted
    // requests must still be answered.
    let n = 64u64;
    for i in 0..n {
        client
            .send(&format!(
                r#"{{"id": {i}, "op": "ccw", "a": 0, "b": {}}}"#,
                i % 6
            ))
            .expect("send");
    }
    client
        .send(r#"{"id": "sync", "op": "ping"}"#)
        .expect("ping");
    let mut got = 0u64;
    let mut drained = false;
    while got < n {
        let doc = client.recv().unwrap_or_else(|e| {
            panic!("lost {} owed responses: {e}", n - got);
        });
        let v = json::parse(&doc).expect("valid JSON");
        if v.get("id").and_then(Value::as_str) == Some("sync") {
            handle.drain();
            drained = true;
        } else {
            assert!(matches!(status_of(&doc).as_str(), "exact" | "degraded"));
            got += 1;
        }
    }
    assert!(drained, "the ping barrier must have come back");
    drop(client);
    let report = join.join().expect("server thread");
    assert!(report.drained_clean, "{report:?}");
    assert_eq!(report.responses, n);
}
