//! 3CNF formulas and a DPLL satisfiability solver.
//!
//! The paper's Theorems 1–4 reduce **3CNFSAT** to event-ordering
//! questions: a Boolean formula B is unsatisfiable iff `a MHB b` in the
//! constructed program (and satisfiable iff `b CHB a`). To *verify* those
//! reductions mechanically, the workspace needs an independent SAT
//! decision procedure — this crate.
//!
//! * [`formula`] — literals, clauses, 3CNF formulas, assignment
//!   evaluation, random and structured instance generators, and a compact
//!   DIMACS-style text form;
//! * [`solver`] — a DPLL solver (unit propagation, pure-literal
//!   elimination, most-occurring-variable branching) plus a brute-force
//!   oracle used to test the solver itself.
//!
//! Everything is deliberately self-contained: no third-party solver, so
//! the reduction checks rest only on code proven by this repo's own tests.
//!
//! ```
//! use eo_sat::{Formula, Solver};
//!
//! let f = Formula::random_3cnf(5, 10, 42);
//! match Solver::new(f.clone()).solve() {
//!     Some(model) => assert!(f.satisfied_by(&model)),
//!     None => assert!(eo_sat::brute_force_satisfiable(&f).is_none()),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod solver;

pub use formula::{Clause, Formula, Lit, Var};
pub use solver::{brute_force_satisfiable, SolveOutcome, Solver};
