//! The lint suite's load-bearing claims, checked end to end:
//!
//! 1. **Soundness for deadlock** — a lint-clean program (nothing at
//!    `Warning` or above) never hits the interpreter's dynamic deadlock
//!    detection, under any tested scheduler.
//! 2. **The Theorem 3 construction is flagged** — the paper notes the
//!    event-style reduction can deadlock (its `Clear`-based mutual
//!    exclusion gadget races by design), and the linter must say so.
//! 3. **Trace linting** — observed executions of well-synchronized
//!    programs (Figure 1 included) lint clean, and diagnostics re-anchor
//!    at events.

use eo_lang::generator::{figure1_program, random_program, WorkloadSpec};
use eo_lang::{run_to_trace, RunError, Scheduler};
use eo_lint::{codes, lint_program, lint_trace, Anchor, LintOptions};
use eo_model::{Op, Trace, TraceBuilder};
use eo_reductions::EventReduction;
use eo_sat::Formula;
use proptest::prelude::*;

/// Runs `program` under a batch of schedulers; true iff any run
/// deadlocks.
fn deadlocks_somewhere(program: &eo_lang::Program, schedules: u64) -> bool {
    let mut scheds: Vec<Scheduler> = vec![Scheduler::deterministic(), Scheduler::round_robin()];
    scheds.extend((0..schedules).map(Scheduler::random));
    scheds
        .iter_mut()
        .any(|s| matches!(run_to_trace(program, s), Err(RunError::Deadlock { .. })))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lint-clean random programs never deadlock dynamically; and when a
    /// random schedule *does* find a deadlock, the report is never clean.
    #[test]
    fn lint_clean_programs_never_deadlock(seed in 0u64..4000, semaphores in prop::bool::ANY) {
        let spec = if semaphores {
            WorkloadSpec::small_semaphore(seed)
        } else {
            WorkloadSpec::small_events(seed) // includes Clear statements
        };
        let program = random_program(&spec);
        let report = lint_program(&program, &LintOptions::default()).expect("generator programs are valid");
        let deadlocked = deadlocks_somewhere(&program, 12);
        if report.is_clean() {
            prop_assert!(
                !deadlocked,
                "lint-clean program deadlocked (seed {seed}):\n{}",
                report.render_text()
            );
        }
        if deadlocked {
            prop_assert!(
                !report.is_clean(),
                "deadlocking program linted clean (seed {seed})"
            );
        }
    }
}

#[test]
fn known_deadlockers_are_never_clean() {
    // Hand-built programs the interpreter provably deadlocks on must all
    // carry at least one blocking-family diagnostic.
    use eo_lang::ProgramBuilder;

    let mut cases: Vec<(&str, eo_lang::Program)> = Vec::new();

    let mut b = ProgramBuilder::new();
    let (sa, sb) = (b.semaphore("a"), b.semaphore("b"));
    let p1 = b.process("p1");
    b.sem_p(p1, sa).sem_v(p1, sb);
    let p2 = b.process("p2");
    b.sem_p(p2, sb).sem_v(p2, sa);
    cases.push(("semaphore cycle", b.build()));

    let mut b = ProgramBuilder::new();
    let (u, v) = (b.event_var("u"), b.event_var("v"));
    let p1 = b.process("p1");
    b.wait(p1, u).post(p1, v);
    let p2 = b.process("p2");
    b.wait(p2, v).post(p2, u);
    cases.push(("wait/post cycle", b.build()));

    let mut b = ProgramBuilder::new();
    let v = b.event_var("v");
    let p = b.process("p");
    b.wait(p, v);
    cases.push(("wait never posted", b.build()));

    for (name, program) in cases {
        assert!(
            deadlocks_somewhere(&program, 8),
            "{name}: expected a dynamic deadlock"
        );
        let report = lint_program(&program, &LintOptions::default()).expect("valid");
        let flagged = report
            .diagnostics
            .iter()
            .any(|d| codes::BLOCKING_FAMILY.contains(&d.code));
        assert!(
            flagged,
            "{name}: no blocking-family diagnostic\n{}",
            report.render_text()
        );
    }
}

#[test]
fn theorem3_reduction_is_flagged_as_potentially_deadlocking() {
    // The paper: "the program constructed [for Theorem 3] can deadlock".
    // Its gadget sides run `Clear(A); Wait(B)` against each other, so the
    // clear-race lint is the one that must fire.
    let f = Formula::random_3cnf(3, 3, 1);
    let red = EventReduction::build(&f);
    let report = lint_program(&red.program, &LintOptions::default()).expect("valid");
    assert!(
        !report.with_code(codes::WAIT_CLEAR_RACE).is_empty(),
        "expected EO-L002 on the gadget waits:\n{}",
        report.render_text()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| codes::BLOCKING_FAMILY.contains(&d.code)),
        "the reduction must be flagged as potentially blocking"
    );
    // And the construction really can deadlock — the lint is not crying
    // wolf here.
    assert!(deadlocks_somewhere(&red.program, 24));
}

#[test]
fn figure1_trace_file_lints_clean() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../testdata/figure1.trace.json"
    );
    let json = std::fs::read_to_string(path).expect("testdata trace exists");
    let trace = Trace::from_json(&json).expect("testdata trace parses");
    let report = lint_trace(&trace, &LintOptions::for_trace()).expect("lintable");
    assert!(report.is_empty(), "{}", report.render_text());
}

#[test]
fn observed_figure1_executions_lint_clean() {
    let program = figure1_program();
    for seed in 0..10 {
        let Ok(trace) = run_to_trace(&program, &mut Scheduler::random(seed)) else {
            panic!("figure 1 never deadlocks");
        };
        let report = lint_trace(&trace, &LintOptions::for_trace()).expect("lintable");
        assert!(report.is_empty(), "seed {seed}:\n{}", report.render_text());
    }
}

#[test]
fn trace_diagnostics_anchor_at_events() {
    // Post → Wait → Clear is schedulable as observed, but other
    // interleavings of the same operations can strand the wait: the
    // trace lint must warn, anchored at the observed wait event.
    let mut tb = TraceBuilder::new();
    let v = tb.event_var("v", false);
    let p1 = tb.process("p1");
    let p2 = tb.process("p2");
    let p3 = tb.process("p3");
    tb.push(p1, Op::Post(v));
    let wait_ev = tb.push(p2, Op::Wait(v));
    tb.push(p3, Op::Clear(v));
    let trace = tb.build().expect("schedulable as observed");
    let report = lint_trace(&trace, &LintOptions::for_trace()).expect("lintable");
    let race = report.with_code(codes::WAIT_CLEAR_RACE);
    assert!(!race.is_empty(), "{}", report.render_text());
    assert_eq!(race[0].anchor, Anchor::Event(wait_ev));
    assert!(race[0].location.contains("event #"), "{}", race[0].location);
}

#[test]
fn trace_reconstruction_round_trips_through_the_interpreter() {
    // Reconstructing a program from an interpreter trace and re-running
    // it deterministically reproduces the same operation multiset.
    let program = figure1_program();
    let trace = run_to_trace(&program, &mut Scheduler::deterministic()).unwrap();
    let (rebuilt, event_of_stmt) = eo_lint::program_from_trace(&trace);
    assert!(rebuilt.validate().is_ok());
    assert_eq!(event_of_stmt.len(), trace.n_events());
    let rerun = run_to_trace(&rebuilt, &mut Scheduler::deterministic()).unwrap();
    assert_eq!(rerun.n_events(), trace.n_events());
}
