//! `eo` — command-line front end to the event-ordering analyses.
//!
//! ```text
//! eo analyze <trace.json> [--config <file.json>] [--ignore-deps] [--matrix]
//!            [--fixture <name>] [--json] [--equiv <strategy>]
//!            [--timeout <ms>] [--max-mem <bytes>] [--max-states <n>]
//!            [--no-degrade] [--static-prefilter]
//!            [--trace-out <f>] [--metrics-out <f>]
//!            [--profile]                            six relations of a trace
//! eo serve   <trace.json> [--batch <req.json>] [--threads <n>]
//!            [--config <file.json>]
//!            [--timeout <ms>] [--max-mem <bytes>] [--max-states <n>]
//!            [--no-cache] [--no-prefilter] [--static-prefilter]
//!            [--ignore-deps] [--equiv <strategy>] [--backend exact|sat]
//!            [--metrics-out <f>]                    batched query sessions
//! eo races   <trace.json>                           exact vs clock race report
//! eo sat     <n_vars> <n_clauses> <seed> [--events] SAT via Theorem 1/2 (or 3/4)
//! eo lint    <trace.json>... [--json] [--mhp] [--deny <level>]
//!            [--metrics-out <f>]                    static synchronization lints
//! eo lint    --theorem3 [n m seed] [--json]         lint the Theorem 3 program
//! eo lint    --fixture <name> [--json] [--mhp]      lint a gallery fixture
//! eo mhp     <trace.json> [--json] [--metrics-out <f>]
//! eo mhp     --figure1 [--json]                     static MHP verdict report
//! eo mhp     --fixture <name> [--json]              MHP on a gallery fixture
//! eo figure1                                        the paper's Figure 1 demo
//! ```
//!
//! `analyze` runs under a supervisor budget: `--timeout`, `--max-mem` and
//! `--max-states` bound the exact passes, and when a bound is hit the
//! command prints the sound degraded report instead of failing. `^C` (or
//! SIGTERM) cancels the same way: the engine stops at its next budget
//! checkpoint and the command prints the degraded report for whatever
//! was explored so far. Exit codes: **0** exact answer, **2** degraded
//! answer (including interruption), **3** budget exceeded with
//! `--no-degrade`, **1** usage or input errors.
//!
//! `--trace-out` writes a Chrome-trace JSON of the engine's spans,
//! `--metrics-out` a flat metrics JSON, and `--profile` prints the top
//! spans by self-time. All three flush on every analysis exit path —
//! exact (0), degraded (2), and `--no-degrade` hard failure (3) — and
//! need a binary built with the `obs` feature to record anything.
//!
//! `lint` exits nonzero when any finding reaches the `--deny` level
//! (default `error`; `warning` and `info` tighten it). Several trace
//! files can be linted in one run: each gets its own per-file report and
//! the exit code aggregates across all of them. `--mhp` additionally runs
//! the `eo-mhp` may-happen-in-parallel fixpoint and reports static races
//! (`EO-L010`), unreachable statements (`EO-L011`) and statements blocked
//! forever (`EO-L012`).
//!
//! `mhp` runs the static may-happen-in-parallel analysis alone on the
//! program reconstructed from a trace (or, with `--figure1`, on the
//! paper's branchy Figure 1 program) and prints the per-pair verdict
//! summary plus every conflicting access pair it cannot order.
//!
//! `--static-prefilter` (on `analyze` and `serve`) consults those same
//! statically proved orderings before any exploration: exact answers are
//! bit-identical with the flag on or off (soundness means the static tier
//! can only refute what exploration would also refute), degraded answers
//! can only gain decided facts, and the `mhp.*` / `serve.*` metrics
//! expose how much work the static tier absorbed.
//!
//! `--config <file.json>` seeds every engine knob (feasibility mode,
//! equivalence, backend, static prefilter, budget caps) from one
//! serializable `EngineConfig` document; explicit flags override
//! individual fields. The same file is accepted identically by `eo
//! analyze`, `eo serve`, and `eo-server`, and serve responses echo the
//! non-default settings in an additive `config` object.
//!
//! `serve` answers a batch of ordering queries against one program in one
//! long-lived session (shared interned state space, cross-query caches):
//! newline-delimited JSON requests on stdin, or a JSON array via
//! `--batch`; one JSON response per request on stdout, in request order.
//! Exit codes: **0** every answer exact, **2** any response degraded or
//! rejected, **1** usage or input errors.

use eo_engine::{
    AnalysisOutcome, Budget, DegradedSummary, EngineError, ExactEngine, Fact, FeasibilityMode,
    OrderingSummary,
};
use eo_model::{render, EventId, ProgramExecution, Trace};
use eo_obs::report::SCHEMA_VERSION;
use eo_sat::Formula;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    let rest = &args[1.min(args.len())..];
    match cmd {
        Some("analyze") => analyze(rest),
        Some("serve") => serve(rest),
        Some("races") => races(rest),
        Some("sat") => sat(rest),
        Some("lint") => lint(rest),
        Some("mhp") => mhp(rest),
        Some("figure1") => figure1(),
        _ => {
            eprintln!(
                "usage:\n  eo analyze <trace.json> [--config <file.json>] [--ignore-deps] [--matrix]\n      \
                 [--fixture <name>] [--json] [--timeout <ms>] [--max-mem <bytes>] [--max-states <n>]\n      \
                 [--no-degrade] [--static-prefilter] [--equiv <strategy>]\n      \
                 [--trace-out <file>] [--metrics-out <file>] [--profile]\n  \
                 eo serve <trace.json> [--batch <requests.json>] [--threads <n>]\n      \
                 [--config <file.json>] [--timeout <ms>] [--max-mem <bytes>] [--max-states <n>]\n      \
                 [--no-cache] [--no-prefilter] [--static-prefilter] [--ignore-deps]\n      \
                 [--backend exact|sat] [--equiv mazurkiewicz|normal-form|grain]\n      \
                 [--metrics-out <file>]\n  \
                 eo races <trace.json>\n  eo sat <n_vars> <n_clauses> <seed> [--events]\n  \
                 eo lint <trace.json>... [--json] [--mhp] [--deny error|warning|info] \
                 [--metrics-out <file>]\n  \
                 eo lint --theorem3 [n m seed] [--json] [--deny <level>]\n  \
                 eo lint --fixture <name> [--json] [--mhp] [--deny <level>]\n  \
                 eo mhp <trace.json> [--json] [--metrics-out <file>]\n  \
                 eo mhp --figure1 | --fixture <name> [--json]\n  \
                 eo figure1"
            );
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<ProgramExecution, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = Trace::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    trace
        .to_execution()
        .map_err(|e| format!("validating {path}: {e}"))
}

/// Resolves a `--fixture <name>` gallery program, with the available
/// names in the error message.
fn fixture_program(name: &str) -> Result<eo_lang::Program, String> {
    eo_lang::gallery::fixture(name).ok_or_else(|| {
        format!(
            "unknown fixture `{name}`; available: {}",
            eo_lang::gallery::names().join(", ")
        )
    })
}

/// Builds the execution for a named gallery fixture: desugars the
/// surface program to core form and records one deterministic complete
/// run as the analyzed trace.
fn fixture_exec(name: &str) -> Result<ProgramExecution, String> {
    let program = fixture_program(name)?;
    let desugared = eo_lang::desugar(&program).map_err(|e| format!("fixture {name}: {e}"))?;
    let trace = eo_lang::run_to_trace(&desugared.program, &mut eo_lang::Scheduler::round_robin())
        .map_err(|e| format!("fixture {name} did not complete: {e:?}"))?;
    trace
        .to_execution()
        .map_err(|e| format!("fixture {name}: {e}"))
}

/// Parses `--<name> <number>` anywhere in `args`.
fn num_flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(|s| s.parse::<u64>()) {
            Some(Ok(v)) => Ok(Some(v)),
            other => Err(format!("analyze: {name} takes a number, got {other:?}")),
        },
    }
}

/// Parses `--<name> <value>` anywhere in `args`.
fn str_flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("analyze: {name} takes a file path")),
        },
    }
}

/// The effective engine config for a subcommand: the `--config` file (or
/// the default) with explicit engine-knob flags folded over it. Shared
/// verbatim with `eo-server` via [`eo_engine::EngineConfig::from_cli`],
/// so the three front ends accept one config file identically.
fn engine_config(args: &[String]) -> Result<eo_engine::EngineConfig, String> {
    eo_engine::EngineConfig::from_cli(args)
}

/// The observability outputs one `eo analyze` run was asked for.
///
/// [`flush`](ObsOut::flush) runs on *every* analysis exit path — exact,
/// degraded, and `--no-degrade` hard failure — so a budget-exhausted run
/// still leaves its trace and metrics behind for post-mortems.
struct ObsOut {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    profile: bool,
}

impl ObsOut {
    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.profile
    }

    /// Arms recording (and warns when the binary can't record at all).
    fn begin(&self) {
        if !self.wanted() {
            return;
        }
        eo_obs::start();
        if !eo_obs::recording() {
            eprintln!(
                "warning: this eo binary was built without the `obs` feature; \
                 --trace-out/--metrics-out/--profile will report empty data \
                 (rebuild with `cargo build --features obs`)"
            );
        }
    }

    /// Stops recording and writes every requested output. I/O errors are
    /// reported but do not change the analysis exit code: telemetry must
    /// never mask the answer.
    fn flush(&self) {
        if !self.wanted() {
            return;
        }
        let run = eo_obs::finish();
        let report = eo_obs::report::aggregate(&run);
        if let Some(path) = &self.metrics_out {
            let text = eo_obs::report::metrics_to_json(&report.metrics_with_defaults());
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("warning: writing {path}: {e}");
            }
        }
        if let Some(path) = &self.trace_out {
            let text = eo_obs::report::trace_to_json(&report);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("warning: writing {path}: {e}");
            }
        }
        if self.profile {
            eprint!("{}", eo_obs::report::render_profile(&report, 10));
        }
    }
}

/// One engine error as a JSON object (stable `kind` strings for scripts).
fn error_json(e: &EngineError) -> String {
    match e {
        EngineError::StateSpaceExceeded { limit } => {
            format!(r#"{{"kind":"state_space_exceeded","limit":{limit}}}"#)
        }
        EngineError::ScheduleBudgetExceeded { limit } => {
            format!(r#"{{"kind":"schedule_budget_exceeded","limit":{limit}}}"#)
        }
        EngineError::DeadlineExceeded { ms } => {
            format!(r#"{{"kind":"deadline_exceeded","ms":{ms}}}"#)
        }
        EngineError::MemoryExceeded { limit } => {
            format!(r#"{{"kind":"memory_exceeded","limit":{limit}}}"#)
        }
        EngineError::Cancelled => r#"{"kind":"cancelled"}"#.to_string(),
        EngineError::WorkerFailed => r#"{"kind":"worker_failed"}"#.to_string(),
        // EngineError is non-exhaustive: future variants degrade to a
        // generic kind instead of breaking the CLI.
        other => format!(r#"{{"kind":"engine_error","message":"{other}"}}"#),
    }
}

fn print_exact_report(exec: &ProgramExecution, mode: FeasibilityMode, summary: &OrderingSummary) {
    println!(
        "\nfeasibility: {:?}; |F(P)| = {}, cut-lattice states = {}",
        mode,
        summary.class_count(),
        summary.state_count()
    );

    println!("\nmust-have-happened-before (transitive reduction):");
    print!(
        "{}",
        render::render_relation(exec, &summary.mhb_relation(), true)
    );
    println!("\ncould-be-concurrent pairs:");
    let ccw = summary.ccw_relation();
    for a in 0..exec.n_events() {
        for b in (a + 1)..exec.n_events() {
            if ccw.contains(a, b) {
                println!(
                    "{} || {}",
                    render::event_name(exec, EventId::new(a)),
                    render::event_name(exec, EventId::new(b))
                );
            }
        }
    }
}

fn print_degraded_report(exec: &ProgramExecution, d: &DegradedSummary) {
    println!("\nDEGRADED ANALYSIS — budget exhausted: {}", d.reason());
    println!(
        "partial exact pass: {} states explored ({} completable, lattice {}), \
         {} induced orders recorded",
        d.states_explored(),
        d.completable_states(),
        if d.space_complete() {
            "complete"
        } else {
            "truncated"
        },
        d.orders_found()
    );
    let (me, mb, mu) = d.mhb_counts();
    let (ce, cb, cu) = d.chb_counts();
    let (oe, ob, ou) = d.ccw_counts();
    println!("facts decided (exact / bounded / unknown):");
    println!("  MHB: {me} / {mb} / {mu}");
    println!("  CHB: {ce} / {cb} / {cu}");
    println!("  CCW: {oe} / {ob} / {ou}");
    println!(
        "decided {:.1}% of {} relation instances",
        d.decided_fraction() * 100.0,
        d.total_pairs()
    );
    let n = exec.n_events();
    println!("\nproved must-have-happened-before pairs:");
    for a in 0..n {
        for b in 0..n {
            let (ea, eb) = (EventId::new(a), EventId::new(b));
            if d.mhb(ea, eb).decided() == Some(true) {
                let tag = match d.mhb(ea, eb) {
                    Fact::Bounded(_) => " (bounded)",
                    _ => "",
                };
                println!(
                    "{} -> {}{tag}",
                    render::event_name(exec, ea),
                    render::event_name(exec, eb)
                );
            }
        }
    }
    println!("\nproved could-be-concurrent pairs:");
    for a in 0..n {
        for b in (a + 1)..n {
            let (ea, eb) = (EventId::new(a), EventId::new(b));
            if d.ccw(ea, eb).decided() == Some(true) {
                println!(
                    "{} || {}",
                    render::event_name(exec, ea),
                    render::event_name(exec, eb)
                );
            }
        }
    }
}

fn analyze(args: &[String]) -> ExitCode {
    let fixture = match str_flag(args, "--fixture") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let path = match (args.first(), &fixture) {
        (Some(p), _) => p.clone(),
        (None, Some(_)) => String::new(),
        (None, None) => {
            eprintln!("analyze: missing trace path (or pass --fixture <name>)");
            return ExitCode::FAILURE;
        }
    };
    let matrix = args.iter().any(|a| a == "--matrix");
    let json = args.iter().any(|a| a == "--json");
    let no_degrade = args.iter().any(|a| a == "--no-degrade");
    // `--config <file.json>` seeds every engine knob; explicit flags
    // override individual fields.
    let cfg = match engine_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let static_prefilter = cfg.static_prefilter;
    let obs = match (
        str_flag(args, "--trace-out"),
        str_flag(args, "--metrics-out"),
    ) {
        (Ok(trace_out), Ok(metrics_out)) => ObsOut {
            trace_out,
            metrics_out,
            profile: args.iter().any(|a| a == "--profile"),
        },
        (t, m) => {
            for r in [t, m] {
                if let Err(e) = r {
                    eprintln!("{e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let exec = match &fixture {
        Some(name) => fixture_exec(name),
        None => load(&path),
    };
    let exec = match exec {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if exec.n_events() == 0 {
        // An empty program has exactly one (empty) feasible execution and
        // every relation is empty; say so explicitly instead of printing a
        // vacuous relation report.
        obs.begin();
        if json {
            println!(
                r#"{{"schema_version":{SCHEMA_VERSION},"status":"exact","classes":1,"states":1,"note":"no events"}}"#
            );
        } else {
            println!("no events: the trace is empty; all six ordering relations are empty");
        }
        obs.flush();
        return ExitCode::SUCCESS;
    }

    if !json {
        println!("trace ({} events):", exec.n_events());
        print!("{}", render::render_trace(exec.trace()));
    }

    let mode = cfg.mode;
    let budget = cfg.budget().unwrap_or_else(Budget::unlimited);
    // ^C / SIGTERM raise the budget's cancel flag; the supervisor notices
    // at its next checkpoint and the run finishes as a *sound degraded
    // report* (exit 2, reason `cancelled`) instead of a killed process.
    // The guard keeps the poller alive across the whole analysis.
    let cancel = budget.cancel_handle();
    let _signal_watch = eo_signal::watch(move || cancel.cancel());
    let engine = ExactEngine::with_mode(&exec, mode)
        .with_budget(budget)
        .with_equiv(cfg.equiv);
    obs.begin();
    // The static tier never changes an exact answer (its refutations are
    // a subset of what exploration proves), so exact runs are
    // bit-identical with the flag on or off; the orderings are kept
    // around to upgrade a *degraded* summary's unknown facts.
    let static_orderings = static_prefilter.then(|| static_event_orderings(&exec));

    if no_degrade {
        // Strict mode: an exhausted budget is a hard failure (exit 3).
        let code = match engine.try_summary() {
            Ok(summary) => {
                if json {
                    println!(
                        r#"{{"schema_version":{SCHEMA_VERSION},"status":"exact","classes":{},"states":{}}}"#,
                        summary.class_count(),
                        summary.state_count()
                    );
                } else {
                    print_exact_report(&exec, mode, &summary);
                    if matrix {
                        println!("\nMHB matrix:");
                        print!("{}", render::render_matrix(&summary.mhb_relation()));
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                // try_summary never builds a DegradedSummary, so record
                // the cause here for the flushed metrics.
                eo_obs::gauge_str(eo_obs::report::DEGRADATION_CAUSE, e.cause_label());
                if json {
                    println!(
                        r#"{{"schema_version":{SCHEMA_VERSION},"status":"error","error":{}}}"#,
                        error_json(&e)
                    );
                } else {
                    eprintln!("analysis exceeded its budget: {e}");
                }
                ExitCode::from(3)
            }
        };
        obs.flush();
        return code;
    }

    let code = match engine.analyze() {
        AnalysisOutcome::Exact(summary) => {
            if json {
                println!(
                    r#"{{"schema_version":{SCHEMA_VERSION},"status":"exact","classes":{},"states":{}}}"#,
                    summary.class_count(),
                    summary.state_count()
                );
            } else {
                print_exact_report(&exec, mode, &summary);
                if matrix {
                    println!("\nMHB matrix:");
                    print!("{}", render::render_matrix(&summary.mhb_relation()));
                }
            }
            ExitCode::SUCCESS
        }
        AnalysisOutcome::Degraded(mut d) => {
            if let Some(ordered) = &static_orderings {
                // Sound upgrade only: statically proved orderings can
                // decide facts exploration ran out of budget for, never
                // contradict the ones it already decided.
                d.apply_static_bounds(ordered);
            }
            if json {
                let (me, mb, mu) = d.mhb_counts();
                let (ce, cb, cu) = d.chb_counts();
                let (oe, ob, ou) = d.ccw_counts();
                println!(
                    r#"{{"schema_version":{SCHEMA_VERSION},"status":"degraded","reason":{},"states_explored":{},"completable_states":{},"space_complete":{},"orders_found":{},"decided_fraction":{:.4},"mhb":{{"exact":{me},"bounded":{mb},"unknown":{mu}}},"chb":{{"exact":{ce},"bounded":{cb},"unknown":{cu}}},"ccw":{{"exact":{oe},"bounded":{ob},"unknown":{ou}}}}}"#,
                    error_json(d.reason()),
                    d.states_explored(),
                    d.completable_states(),
                    d.space_complete(),
                    d.orders_found(),
                    d.decided_fraction(),
                );
            } else {
                print_degraded_report(&exec, &d);
            }
            ExitCode::from(2)
        }
    };
    obs.flush();
    code
}

/// Statically proved event orderings for a trace: reconstructs the
/// (branch-free) program behind the observed events, runs the `eo-mhp`
/// fixpoint, and projects its guaranteed statement orderings onto the
/// trace's events. Sound over every feasibility mode: a guarantee-style
/// ordering holds in *all* executions, in particular the observed one.
fn static_event_orderings(exec: &ProgramExecution) -> eo_relations::Relation {
    let (program, event_of_stmt) = eo_lang::program_from_trace(exec.trace());
    let mhp = eo_mhp::MhpAnalysis::analyze(&program);
    let mut stmt_of = vec![eo_mhp::StmtId(0); event_of_stmt.len()];
    for (si, ev) in event_of_stmt.iter().enumerate() {
        stmt_of[ev.index()] = eo_mhp::StmtId(si as u32);
    }
    mhp.event_orderings(&stmt_of)
}

fn serve(args: &[String]) -> ExitCode {
    use eo_serve::{serve_batch, ServeConfig, SessionConfig};

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("serve: missing trace path");
        return ExitCode::FAILURE;
    };
    let (batch, metrics_out) = match (str_flag(args, "--batch"), str_flag(args, "--metrics-out")) {
        (Ok(b), Ok(m)) => (b, m),
        (b, m) => {
            for r in [b, m] {
                if let Err(e) = r {
                    eprintln!("{e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let threads = match num_flag(args, "--threads") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // `--config <file.json>` seeds every engine knob; explicit flags
    // override individual fields — identically to `eo analyze`.
    let cfg = match engine_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let input = match &batch {
        Some(file) => match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("serve: reading {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match std::io::read_to_string(std::io::stdin()) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("serve: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // The effective EngineConfig drives the whole session (same budget
    // semantics as `analyze`: unset caps fall back to the engine's default
    // limits) and its non-default fields are echoed in every response.
    let mut session = SessionConfig::from_engine_config(&cfg);
    session.cache = !args.iter().any(|a| a == "--no-cache");
    session.prefilter = !args.iter().any(|a| a == "--no-prefilter");
    let config = ServeConfig {
        session,
        threads: threads.unwrap_or(1) as usize,
    };

    let obs = ObsOut {
        trace_out: None,
        metrics_out,
        profile: false,
    };
    obs.begin();
    let outcome = serve_batch(&exec, &input, &config);
    for response in &outcome.responses {
        println!("{response}");
    }
    obs.flush();
    if outcome.any_degraded || outcome.any_error {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn races(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("races: missing trace path");
        return ExitCode::FAILURE;
    };
    let exec = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cmp = eo_race::compare(&exec);
    println!("conflicting pairs: {}", cmp.candidates);
    let show = |title: &str, races: &[eo_race::Race]| {
        println!("{title} ({}):", races.len());
        for r in races {
            println!(
                "  {} / {}",
                render::event_name(&exec, r.first),
                render::event_name(&exec, r.second)
            );
        }
    };
    show("agreed races", &cmp.agreed);
    show("missed by vector clocks", &cmp.missed_by_vc);
    show("spurious in vector clocks", &cmp.spurious_in_vc);
    ExitCode::SUCCESS
}

fn sat(args: &[String]) -> ExitCode {
    if args.len() < 3 {
        eprintln!("sat: need <n_vars> <n_clauses> <seed>");
        return ExitCode::FAILURE;
    }
    let parse = |s: &String| s.parse::<u64>().map_err(|e| format!("bad number {s}: {e}"));
    let (n, m, seed) = match (parse(&args[0]), parse(&args[1]), parse(&args[2])) {
        (Ok(n), Ok(m), Ok(s)) => (n as usize, m as usize, s),
        _ => {
            eprintln!("sat: numeric arguments required");
            return ExitCode::FAILURE;
        }
    };
    let use_events = args.iter().any(|a| a == "--events");
    let f = Formula::random_3cnf(n, m, seed);
    println!("B = {}", f.display());

    let (sat_via_ordering, kind) = if use_events {
        let red = eo_reductions::EventReduction::build(&f);
        (red.witness_b_before_a().is_some(), "Theorem 3/4 (events)")
    } else {
        let red = eo_reductions::SemaphoreReduction::build(&f);
        (
            red.witness_b_before_a().is_some(),
            "Theorem 1/2 (semaphores)",
        )
    };
    let dpll = eo_sat::Solver::satisfiable(&f);
    println!("{kind}: b CHB a = {sat_via_ordering}  →  sat = {sat_via_ordering}");
    println!("DPLL:               sat = {dpll}");
    if sat_via_ordering == dpll {
        println!("consistent ✓");
        ExitCode::SUCCESS
    } else {
        println!("INCONSISTENT ✗ — this would falsify the reduction");
        ExitCode::FAILURE
    }
}

/// Positional (non-flag) arguments, skipping the values consumed by the
/// flags in `value_flags` and any bare numbers (the `--theorem3` shape
/// parameters).
fn positional_args<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.iter().any(|f| f == a) {
            skip = true;
            continue;
        }
        if a.starts_with("--") || a.parse::<u64>().is_ok() {
            continue;
        }
        out.push(a);
    }
    out
}

fn lint(args: &[String]) -> ExitCode {
    use eo_lint::{lint_program, lint_trace, LintOptions, LintReport, Severity};
    use eo_model::json::Value;

    let json = args.iter().any(|a| a == "--json");
    let deny = match args.iter().position(|a| a == "--deny") {
        None => Severity::Error,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("error") => Severity::Error,
            Some("warning") => Severity::Warning,
            Some("info") => Severity::Info,
            other => {
                eprintln!("lint: --deny takes error|warning|info, got {other:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    let opts = LintOptions {
        mhp: args.iter().any(|a| a == "--mhp"),
        ..LintOptions::for_trace()
    };
    let obs = match str_flag(args, "--metrics-out") {
        Ok(metrics_out) => ObsOut {
            trace_out: None,
            metrics_out,
            profile: false,
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--theorem3") {
        // Demo: lint the paper's Theorem 3 (event-style) construction —
        // the one the paper itself notes can deadlock.
        let nums: Vec<u64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        let (n, m, seed) = match nums[..] {
            [n, m, s, ..] => (n as usize, m as usize, s),
            _ => (3, 3, 1),
        };
        let f = Formula::random_3cnf(n, m, seed);
        eprintln!("linting the Theorem 3 program for B = {}", f.display());
        let red = eo_reductions::EventReduction::build(&f);
        obs.begin();
        let report = match lint_program(
            &red.program,
            &LintOptions {
                mhp: opts.mhp,
                ..LintOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint: constructed program invalid: {e}");
                obs.flush();
                return ExitCode::FAILURE;
            }
        };
        if json {
            println!("{}", report.to_json().pretty());
        } else {
            print!("{}", report.render_text());
        }
        obs.flush();
        return if report.worst_at_least(deny) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if let Some(name) = match str_flag(args, "--fixture") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    } {
        // Lint a gallery fixture as a surface *program*: the EO-L013
        // misuse lints and the provenance-remapped core findings only
        // exist at this level (a trace has already been desugared).
        let program = match fixture_program(&name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        obs.begin();
        let report = match lint_program(
            &program,
            &LintOptions {
                mhp: opts.mhp,
                ..LintOptions::default()
            },
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint: fixture {name} invalid: {e}");
                obs.flush();
                return ExitCode::FAILURE;
            }
        };
        if json {
            println!("{}", report.to_json().pretty());
        } else {
            print!("{}", report.render_text());
        }
        obs.flush();
        return if report.worst_at_least(deny) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let paths = positional_args(args, &["--deny", "--metrics-out"]);
    if paths.is_empty() {
        eprintln!("lint: missing trace path");
        return ExitCode::FAILURE;
    }

    obs.begin();
    // Lint every file even when an early one fails to load: the per-file
    // reports are independent, only the exit code aggregates.
    let mut reports: Vec<(&String, LintReport)> = Vec::new();
    let mut input_error = false;
    for path in &paths {
        let report = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|text| Trace::from_json(&text).map_err(|e| format!("parsing {path}: {e}")))
            .and_then(|trace| lint_trace(&trace, &opts).map_err(|e| format!("lint: {e}")));
        match report {
            Ok(r) => reports.push((path, r)),
            Err(e) => {
                eprintln!("{e}");
                input_error = true;
            }
        }
    }
    let denied = reports.iter().any(|(_, r)| r.worst_at_least(deny));

    if paths.len() == 1 {
        // Single-file output is the original (pinned) format.
        if let Some((_, report)) = reports.first() {
            if json {
                println!("{}", report.to_json().pretty());
            } else {
                print!("{}", report.render_text());
            }
        }
    } else if json {
        let files: Vec<Value> = reports
            .iter()
            .map(|(path, report)| {
                Value::Object(vec![
                    ("path".to_string(), Value::Str((*path).clone())),
                    ("report".to_string(), report.to_json()),
                ])
            })
            .collect();
        let count = |sev| -> i64 { reports.iter().map(|(_, r)| r.count(sev) as i64).sum() };
        let doc = Value::Object(vec![
            ("schema_version".to_string(), Value::Int(SCHEMA_VERSION)),
            ("files".to_string(), Value::Array(files)),
            ("errors".to_string(), Value::Int(count(Severity::Error))),
            ("warnings".to_string(), Value::Int(count(Severity::Warning))),
            ("infos".to_string(), Value::Int(count(Severity::Info))),
        ]);
        println!("{}", doc.pretty());
    } else {
        for (path, report) in &reports {
            println!("== {path} ==");
            print!("{}", report.render_text());
        }
        println!(
            "{} file(s) linted: {} error(s), {} warning(s), {} info finding(s)",
            reports.len(),
            reports
                .iter()
                .map(|(_, r)| r.count(Severity::Error))
                .sum::<usize>(),
            reports
                .iter()
                .map(|(_, r)| r.count(Severity::Warning))
                .sum::<usize>(),
            reports
                .iter()
                .map(|(_, r)| r.count(Severity::Info))
                .sum::<usize>(),
        );
    }
    obs.flush();
    if input_error || denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn mhp(args: &[String]) -> ExitCode {
    use eo_model::json::Value;

    let json = args.iter().any(|a| a == "--json");
    let obs = match str_flag(args, "--metrics-out") {
        Ok(metrics_out) => ObsOut {
            trace_out: None,
            metrics_out,
            profile: false,
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let fixture = match str_flag(args, "--fixture") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let program = if args.iter().any(|a| a == "--figure1") {
        // The live Figure 1 *program* (with its branch), not a trace of
        // one observed execution: this is the one input where the static
        // analysis sees strictly more than any single trace.
        eo_lang::generator::figure1_program()
    } else if let Some(name) = &fixture {
        // A gallery fixture is analyzed as the surface *program*: the
        // fixpoint desugars it internally and maps verdicts back, so
        // barrier/monitor/channel separation shows up here directly.
        match fixture_program(name) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let paths = positional_args(args, &["--metrics-out"]);
        let Some(path) = paths.first() else {
            eprintln!("mhp: missing trace path (or pass --figure1)");
            return ExitCode::FAILURE;
        };
        let exec = match load(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let (program, _) = eo_lang::program_from_trace(exec.trace());
        program
    };

    obs.begin();
    let analysis = eo_mhp::MhpAnalysis::analyze(&program);
    obs.flush();

    let n = analysis.n_stmts();
    let (mut never, mut may, mut unreachable_pairs) = (0i64, 0i64, 0i64);
    for a in 0..n {
        for b in (a + 1)..n {
            use eo_mhp::Verdict;
            match analysis.verdict(eo_mhp::StmtId(a as u32), eo_mhp::StmtId(b as u32)) {
                Verdict::NeverConcurrent => never += 1,
                Verdict::MayBeConcurrent => may += 1,
                Verdict::Unreachable => unreachable_pairs += 1,
            }
        }
    }
    let unreachable: Vec<eo_mhp::StmtId> = analysis.unreachable_stmts().collect();
    let races = analysis.static_races();
    let loc = |s: eo_mhp::StmtId| analysis.stmts()[s.index()].location.clone();

    if json {
        let doc = Value::Object(vec![
            ("schema_version".to_string(), Value::Int(SCHEMA_VERSION)),
            ("stmts".to_string(), Value::Int(n as i64)),
            ("rounds".to_string(), Value::Int(analysis.rounds() as i64)),
            (
                "unreachable".to_string(),
                Value::Array(
                    unreachable
                        .iter()
                        .map(|s| Value::Int(s.index() as i64))
                        .collect(),
                ),
            ),
            (
                "pairs".to_string(),
                Value::Object(vec![
                    ("never_concurrent".to_string(), Value::Int(never)),
                    ("may_be_concurrent".to_string(), Value::Int(may)),
                    ("unreachable".to_string(), Value::Int(unreachable_pairs)),
                ]),
            ),
            (
                "may_races".to_string(),
                Value::Array(
                    races
                        .iter()
                        .map(|r| {
                            Value::Object(vec![
                                ("first".to_string(), Value::Int(r.first.index() as i64)),
                                ("second".to_string(), Value::Int(r.second.index() as i64)),
                                ("first_loc".to_string(), Value::Str(loc(r.first))),
                                ("second_loc".to_string(), Value::Str(loc(r.second))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "statements: {n} (fixpoint converged in {} rounds)",
            analysis.rounds()
        );
        println!(
            "pair verdicts: {never} never-concurrent, {may} may-be-concurrent, \
             {unreachable_pairs} unreachable"
        );
        if !unreachable.is_empty() {
            println!("unreachable statements:");
            for s in &unreachable {
                println!("  {}", loc(*s));
            }
        }
        println!(
            "may-happen-in-parallel conflicting accesses ({}):",
            races.len()
        );
        for r in &races {
            println!("  {} || {}", loc(r.first), loc(r.second));
        }
    }
    ExitCode::SUCCESS
}

fn figure1() -> ExitCode {
    let (trace, ids) = eo_model::fixtures::figure1();
    let exec = trace.to_execution().unwrap();
    print!("{}", render::render_trace(exec.trace()));
    let tg = eo_approx::TaskGraph::build(&exec);
    let exact = ExactEngine::new(&exec);
    println!(
        "\nEGP orders the Posts: {}\nexact MHB orders the Posts: {}",
        tg.guaranteed_before(ids.post_left, ids.post_right),
        exact.mhb(ids.post_left, ids.post_right)
    );
    ExitCode::SUCCESS
}
