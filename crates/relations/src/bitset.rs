//! A compact fixed-capacity bit set.
//!
//! [`BitSet`] is the row type of [`crate::Relation`] and the visited-set
//! type of the graph algorithms. It stores bits in `u64` words, supports
//! the usual set algebra word-parallel (64 elements per instruction), and
//! implements `Hash`/`Eq` so whole rows — and, upstream, whole relations —
//! can be deduplicated cheaply.

/// A fixed-capacity set of `usize` indices in `0..len`, stored as packed
/// 64-bit words.
///
/// Unlike `std::collections::HashSet<usize>`, all operations are
/// allocation-free after construction and set algebra runs word-parallel.
/// The capacity is fixed at construction; inserting an index `>= len`
/// panics (that is always a logic error upstream, never data-dependent).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(64)
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; word_count(len)],
        }
    }

    /// Creates a set containing every index in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        s.set_all();
        s
    }

    /// Fills the set with every index in `0..capacity` (word-parallel;
    /// the partial last word is masked so `Eq`/`Hash` stay canonical).
    pub fn set_all(&mut self) {
        self.words.fill(!0u64);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Overwrites this set's contents from a raw word row (as produced by
    /// [`crate::BitMatrix::row_words`]), without reallocating.
    ///
    /// # Panics
    /// Panics if `words.len()` differs from this set's word count.
    pub fn load_words(&mut self, words: &[u64]) {
        assert_eq!(
            self.words.len(),
            words.len(),
            "BitSet word-count mismatch in load_words"
        );
        self.words.copy_from_slice(words);
    }

    /// The packed word representation (64 indices per word, LSB-first).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The capacity (number of addressable indices), *not* the number of
    /// elements currently present; see [`BitSet::count`] for the latter.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitSet index {i} out of capacity {}",
            self.len
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`, returning `true` if it was present.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "BitSet index {i} out of capacity {}",
            self.len
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Tests membership of `i`. Out-of-capacity indices are simply absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements present.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `self ← self ∪ other`. Returns `true` if `self`
    /// changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// In-place intersection: `self ← self ∩ other`. Returns `true` if
    /// `self` changed.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= *a != old;
        }
        changed
    }

    /// In-place difference: `self ← self ∖ other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True iff `self ∩ other` is nonempty.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True iff every element of `self` is in `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over present indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set whose capacity is `max + 1` (or 0 when
    /// the iterator is empty). Mostly useful in tests; production code
    /// should size sets explicitly.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of capacity is absent, not panic");
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn empty_and_full() {
        let e = BitSet::new(70);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
    }

    #[test]
    fn zero_capacity_set_is_usable() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 3, 5, 64, 65].into_iter().collect();
        let mut a = resize(a, 100);
        let b: BitSet = [3usize, 4, 65, 99].into_iter().collect();
        let b = resize(b, 100);

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 64, 65, 99]);
        assert!(!u.union_with(&b), "second union is a no-op");

        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 65]);

        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 64]);

        assert!(i.intersects(&b));
        assert!(!i.intersects(&a));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s: BitSet = [99usize, 0, 63, 64, 7].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 7, 63, 64, 99]);
    }

    #[test]
    fn hash_eq_consistency() {
        use std::collections::HashSet;
        let a: BitSet = [1usize, 2, 3].into_iter().collect();
        let b: BitSet = [1usize, 2, 3].into_iter().collect();
        let mut set = HashSet::new();
        set.insert(a);
        assert!(!set.insert(b), "equal bitsets deduplicate in a hash set");
    }

    #[test]
    fn clone_preserves_contents_across_word_boundaries() {
        let s: BitSet = [0usize, 5, 66].into_iter().collect();
        let back = s.clone();
        assert_eq!(s, back);
        assert!(back.contains(66));
    }

    fn resize(s: BitSet, cap: usize) -> BitSet {
        let mut out = BitSet::new(cap);
        for i in s.iter() {
            out.insert(i);
        }
        out
    }
}
