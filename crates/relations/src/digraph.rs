//! An adjacency-list directed graph with the queries the task-graph
//! baseline needs.
//!
//! The Emrath–Ghosh–Padua method (paper Section 4) builds a *task graph*
//! whose nodes are synchronization events; deciding "guaranteed ordering"
//! is a path query, and adding synchronization edges requires finding the
//! *closest common ancestors* of a set of Post nodes. [`Digraph`] provides
//! exactly those operations, plus the reachability matrix used when a
//! baseline's whole output must be compared against the exact engine.

use crate::bitset::BitSet;
use crate::relation::Relation;

/// A directed graph over nodes `0..n`, adjacency-list form.
///
/// Duplicate edges are permitted on insertion but collapse in the derived
/// [`Relation`]s; the graph may be cyclic (the baselines' construction
/// never produces cycles, but intermediate states are not forced to be
/// acyclic).
#[derive(Clone, Debug)]
pub struct Digraph {
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl Digraph {
    /// Creates an edgeless graph over `0..n`.
    pub fn new(n: usize) -> Self {
        Digraph {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// True iff the graph has zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Adds the edge `a → b` (idempotent: duplicates are skipped).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.len() && b < self.len(),
            "edge endpoint out of range"
        );
        if !self.succ[a].contains(&b) {
            self.succ[a].push(b);
            self.pred[b].push(a);
        }
    }

    /// The direct successors of `a`.
    #[inline]
    pub fn successors(&self, a: usize) -> &[usize] {
        &self.succ[a]
    }

    /// The direct predecessors of `a`.
    #[inline]
    pub fn predecessors(&self, a: usize) -> &[usize] {
        &self.pred[a]
    }

    /// Total number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// True iff a nonempty directed path runs from `a` to `b`.
    pub fn has_path(&self, a: usize, b: usize) -> bool {
        let mut seen = BitSet::new(self.len());
        let mut stack = vec![a];
        // `a` itself is only a valid destination via a real cycle, so do
        // not mark it seen until it is re-reached.
        while let Some(x) = stack.pop() {
            for &y in &self.succ[x] {
                if y == b {
                    return true;
                }
                if seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        false
    }

    /// All nodes reachable from `a` by a nonempty path.
    pub fn descendants(&self, a: usize) -> BitSet {
        self.reach_from(a, Direction::Forward)
    }

    /// All nodes that reach `a` by a nonempty path (the ancestors of `a`).
    pub fn ancestors(&self, a: usize) -> BitSet {
        self.reach_from(a, Direction::Backward)
    }

    fn reach_from(&self, a: usize, dir: Direction) -> BitSet {
        let adj = match dir {
            Direction::Forward => &self.succ,
            Direction::Backward => &self.pred,
        };
        let mut seen = BitSet::new(self.len());
        let mut stack: Vec<usize> = adj[a].clone();
        for &x in &adj[a] {
            seen.insert(x);
        }
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if seen.insert(y) {
                    stack.push(y);
                }
            }
        }
        seen
    }

    /// The *common ancestors* of a nonempty node set: nodes with a path to
    /// every node in `nodes`. A node in `nodes` counts as an ancestor of
    /// itself for this query (the EGP construction draws the edge from the
    /// closest common ancestor of the candidate Posts, and a Post that is
    /// itself an ancestor of all others must be eligible).
    pub fn common_ancestors(&self, nodes: &[usize]) -> BitSet {
        assert!(!nodes.is_empty(), "common_ancestors of an empty set");
        let mut acc: Option<BitSet> = None;
        for &v in nodes {
            let mut anc = self.ancestors(v);
            anc.insert(v); // reflexive for this query
            match &mut acc {
                None => acc = Some(anc),
                Some(a) => {
                    a.intersect_with(&anc);
                }
            }
        }
        acc.unwrap()
    }

    /// The *closest* common ancestors: common ancestors that are not a
    /// (strict) ancestor of another common ancestor. For a tree this is the
    /// usual unique LCA; in a DAG there may be several.
    pub fn closest_common_ancestors(&self, nodes: &[usize]) -> Vec<usize> {
        let common = self.common_ancestors(nodes);
        common
            .iter()
            .filter(|&c| {
                // c is closest iff no other common ancestor is a descendant
                // of c.
                let desc = self.descendants(c);
                !common
                    .iter()
                    .any(|other| other != c && desc.contains(other))
            })
            .collect()
    }

    /// The edge relation as a [`Relation`] (deduplicated).
    pub fn edge_relation(&self) -> Relation {
        let mut r = Relation::new(self.len());
        for (a, succs) in self.succ.iter().enumerate() {
            for &b in succs {
                r.insert(a, b);
            }
        }
        r
    }

    /// The reachability relation: `(a, b)` present iff a nonempty path runs
    /// from `a` to `b`.
    pub fn reachability(&self) -> Relation {
        self.edge_relation().transitive_closure()
    }
}

enum Direction {
    Forward,
    Backward,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 3, 0 → 2 → 3, 2 → 4
    fn dag() -> Digraph {
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(2, 4);
        g
    }

    #[test]
    fn paths() {
        let g = dag();
        assert!(g.has_path(0, 3));
        assert!(g.has_path(0, 4));
        assert!(!g.has_path(1, 4));
        assert!(!g.has_path(3, 0));
        assert!(!g.has_path(0, 0), "no cycle through 0");
    }

    #[test]
    fn self_path_requires_cycle() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        assert!(!g.has_path(0, 0));
        g.add_edge(1, 0);
        assert!(g.has_path(0, 0));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.predecessors(1), &[0]);
    }

    #[test]
    fn ancestors_descendants() {
        let g = dag();
        assert_eq!(g.ancestors(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(
            g.descendants(0).iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert!(g.ancestors(0).is_empty());
    }

    #[test]
    fn common_ancestors_of_siblings() {
        let g = dag();
        let common = g.common_ancestors(&[3, 4]);
        assert_eq!(common.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.closest_common_ancestors(&[3, 4]), vec![2]);
    }

    #[test]
    fn common_ancestor_includes_member_that_dominates() {
        // 0 → 1; ancestors common to {0, 1} should include 0 itself.
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        assert_eq!(g.closest_common_ancestors(&[0, 1]), vec![0]);
    }

    #[test]
    fn closest_common_ancestor_of_single_node_is_itself() {
        let g = dag();
        assert_eq!(g.closest_common_ancestors(&[3]), vec![3]);
    }

    #[test]
    fn reachability_matches_relation_closure() {
        let g = dag();
        let direct = g.edge_relation();
        assert_eq!(g.reachability(), direct.transitive_closure());
    }
}
