//! Reconstructing the canonical straight-line [`Program`] an observed
//! [`Trace`] replays.
//!
//! A trace is a branch-free record of what one execution did, so it
//! induces a canonical program: one process definition per process
//! instance, whose body replays that process's events in observed order.
//! Static analyses of that program ([`eo-mhp`'s fixpoint, the `eo-lint`
//! diagnostics](crate)) ask "could a *different* interleaving of exactly
//! these operations have gone wrong?" — the same question the race
//! detectors ask about data accesses, posed statically.

use crate::ast::{ProcDef, ProcRef, Program, Stmt, StmtKind};
use eo_model::{EventId, Op, Trace};

/// Reconstructs the canonical straight-line program a trace replays,
/// together with the map from statement index (in [`crate::StmtMap`]
/// preorder) back to the observed event.
///
/// Process declarations, semaphores, event variables, and shared
/// variables carry over 1:1; each event becomes one statement of its
/// process's body, in observed order. Because bodies are branch-free,
/// preorder statement numbering is exactly process-major event order.
pub fn program_from_trace(trace: &Trace) -> (Program, Vec<EventId>) {
    let mut bodies: Vec<Vec<Stmt>> = vec![Vec::new(); trace.processes.len()];
    let mut events_of: Vec<Vec<EventId>> = vec![Vec::new(); trace.processes.len()];
    for e in &trace.events {
        let kind = match &e.op {
            Op::Compute => StmtKind::Compute {
                reads: e.reads.clone(),
                writes: e.writes.clone(),
            },
            Op::SemP(s) => StmtKind::SemP(*s),
            Op::SemV(s) => StmtKind::SemV(*s),
            Op::Post(v) => StmtKind::Post(*v),
            Op::Wait(v) => StmtKind::Wait(*v),
            Op::Clear(v) => StmtKind::Clear(*v),
            Op::Fork(children) => StmtKind::Fork(children.iter().map(|c| ProcRef(c.0)).collect()),
            Op::Join(targets) => StmtKind::Join(targets.iter().map(|t| ProcRef(t.0)).collect()),
        };
        bodies[e.process.index()].push(Stmt {
            kind,
            label: e.label.clone(),
        });
        events_of[e.process.index()].push(e.id);
    }

    let program = Program {
        processes: trace
            .processes
            .iter()
            .zip(bodies)
            .map(|(decl, body)| ProcDef {
                name: decl.name.clone(),
                root: decl.created_by.is_none(),
                body,
            })
            .collect(),
        semaphores: trace
            .semaphores
            .iter()
            .map(|s| crate::ast::SemDef {
                name: s.name.clone(),
                initial: s.initial,
            })
            .collect(),
        event_vars: trace
            .event_vars
            .iter()
            .map(|v| crate::ast::EvVarDef {
                name: v.name.clone(),
                initially_set: v.initially_set,
            })
            .collect(),
        variables: trace.variables.iter().map(|v| v.name.clone()).collect(),
        barriers: Vec::new(),
        mutexes: Vec::new(),
        condvars: Vec::new(),
        channels: Vec::new(),
    };
    let event_of_stmt = events_of.into_iter().flatten().collect();
    (program, event_of_stmt)
}
