//! A CDCL satisfiability solver with incremental solving under
//! assumptions.
//!
//! This is the production solver behind the symbolic ordering backend
//! (ROADMAP item 1): two-watched-literal propagation, 1-UIP conflict
//! analysis with clause learning, activity-based (VSIDS-style) branching
//! with exponential decay, phase saving, Luby restarts, and learnt-clause
//! database reduction. The piece the serve layer leans on is
//! [`Solver::solve_assuming`]: assumptions are enqueued as pseudo-decision
//! levels below the search proper, so every clause *learnt* during a call
//! is derived by resolution from input clauses only and therefore remains
//! a sound consequence of the formula when the next call arrives with
//! different assumptions. One encoded formula plus one learned-clause
//! database can thus serve an entire batch of ordering queries.
//!
//! When a `solve_assuming` call returns [`SolveOutcome::Unsat`], the
//! subset of assumptions that were actually used in the refutation is
//! available from [`Solver::unsat_core`] (MiniSat's `analyzeFinal`), so a
//! caller can tell *which* ordering hypothesis failed.
//!
//! The cooperative stop callback is consulted both at decision points and
//! inside the unit-propagation loop, so a long propagation cascade cannot
//! overshoot a caller's deadline unboundedly (the fix pinned by
//! `stop_fires_inside_propagation_cascade`).

use crate::formula::{Formula, Lit, Var};
use crate::solver::SolveOutcome;

/// Index into the clause arena.
type ClauseRef = usize;

/// A clause in the arena. Deleted learnt clauses leave a tombstone so
/// `ClauseRef`s stored as reasons stay valid.
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

/// Encodes a literal as a watch-list index: `2 * var + (negative ? 1 : 0)`.
fn code(l: Lit) -> usize {
    2 * l.var.index() + usize::from(!l.positive)
}

/// The `x`-th term of the Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …),
/// 0-indexed.
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Restart interval unit: the Luby term is multiplied by this many
/// conflicts.
const RESTART_BASE: u64 = 128;
/// Variable-activity decay per conflict (MiniSat's 0.95).
const VAR_DECAY: f64 = 0.95;
/// Clause-activity decay per conflict.
const CLAUSE_DECAY: f64 = 0.999;
/// How often the stop callback is consulted inside the propagation loop.
/// Low enough that even a level-0 unit cascade of a few dozen literals
/// hits it; cheap enough to be noise at scale.
const STOP_CHECK_INTERVAL: u64 = 16;

/// A conflict-driven clause-learning (CDCL) satisfiability solver.
///
/// Drop-in replacement for the old DPLL solver's API ([`Solver::new`],
/// [`Solver::solve`], [`Solver::solve_with_stop`], the public work
/// counters) plus the incremental interface the symbolic backend needs:
/// [`Solver::add_clause`] to grow the formula between calls and
/// [`Solver::solve_assuming`] to solve under temporary assumptions while
/// keeping every learnt clause for the next call. The old DPLL survives as
/// [`crate::solver::ReferenceSolver`], the oracle this solver is
/// differentially tested against.
pub struct Solver {
    /// Number of variables (watch lists etc. are sized to this).
    n_vars: usize,
    /// Clause arena: problem clauses first, learnt clauses appended.
    clauses: Vec<ClauseData>,
    /// For each literal code, the clauses currently watching that literal.
    watches: Vec<Vec<ClauseRef>>,
    /// Per-variable assignment (`None` = unassigned).
    assign: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// The clause that propagated each variable (`None` for decisions).
    reason: Vec<Option<ClauseRef>>,
    /// Assignment order; `trail_lim[i]` is where decision level `i + 1`
    /// begins.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Next trail position to propagate from.
    qhead: usize,
    /// VSIDS activity per variable and the current bump amount.
    activity: Vec<f64>,
    var_inc: f64,
    /// Current clause-activity bump amount.
    clause_inc: f64,
    /// Saved phase per variable (last assigned polarity; default `false`).
    phase: Vec<bool>,
    /// Scratch marker used by conflict analysis.
    seen: Vec<bool>,
    /// `false` once the formula is unsatisfiable independent of
    /// assumptions (empty clause derived at level 0).
    ok: bool,
    /// Learnt clauses allowed before the database is reduced.
    max_learnts: usize,
    /// Live (non-deleted) learnt clause count.
    n_learnts: usize,
    /// Assumptions that refuted the last Unsat `solve_assuming` call
    /// (empty when the formula is unsatisfiable on its own).
    core: Vec<Lit>,
    /// Decisions + propagations: the work measure reported to stop
    /// callbacks and the benches (same role as the DPLL node count).
    pub nodes_visited: u64,
    /// Branch points (assumption pseudo-decisions excluded).
    pub decisions: u64,
    /// Non-chronological backjumps taken after conflicts.
    pub backtracks: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated by the watched-literal loop.
    pub propagations: u64,
    /// Luby restarts performed.
    pub restarts: u64,
}

impl Solver {
    /// Creates a solver over `formula`'s variables and clauses.
    ///
    /// Returns a working solver even if the formula is trivially
    /// unsatisfiable — the contradiction is discovered by `solve`.
    pub fn new(formula: Formula) -> Self {
        let mut s = Solver::with_vars(formula.n_vars);
        for clause in &formula.clauses {
            s.add_clause(&clause.0);
        }
        s
    }

    /// Creates an empty incremental solver over `n_vars` variables; grow
    /// with [`Solver::add_var`] and [`Solver::add_clause`].
    pub fn with_vars(n_vars: usize) -> Self {
        Solver {
            n_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n_vars],
            assign: vec![None; n_vars],
            level: vec![0; n_vars],
            reason: vec![None; n_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n_vars],
            var_inc: 1.0,
            clause_inc: 1.0,
            phase: vec![false; n_vars],
            seen: vec![false; n_vars],
            ok: true,
            max_learnts: 0,
            n_learnts: 0,
            core: Vec::new(),
            nodes_visited: 0,
            decisions: 0,
            backtracks: 0,
            conflicts: 0,
            propagations: 0,
            restarts: 0,
        }
    }

    /// Adds a fresh variable and returns it.
    pub fn add_var(&mut self) -> Var {
        let v = Var(self.n_vars as u32);
        self.n_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        v
    }

    /// Number of variables currently known to the solver.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Live learnt clauses currently in the database.
    pub fn num_learnts(&self) -> usize {
        self.n_learnts
    }

    /// Adds a clause to the formula (permanently — it participates in all
    /// later `solve*` calls). Must be called between solves, not during
    /// one. Returns `false` if the formula is now unsatisfiable regardless
    /// of assumptions.
    ///
    /// # Panics
    /// Panics on an empty clause or a literal over an unknown variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "add_clause is only valid between solves (decision level 0)"
        );
        assert!(!lits.is_empty(), "clauses must be non-empty");
        if !self.ok {
            return false;
        }
        // Simplify against the level-0 assignment: drop false literals,
        // skip satisfied clauses and tautologies, deduplicate.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var.index() < self.n_vars, "literal over unknown variable");
            match self.value(l) {
                Some(true) => return true,
                Some(false) => continue,
                None => {
                    if simplified.contains(&l.negated()) {
                        return true; // tautology
                    }
                    if !simplified.contains(&l) {
                        simplified.push(l);
                    }
                }
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                // Enqueue but don't propagate: consequences are derived by
                // the next solve, which keeps even a level-0 unit cascade
                // under the stop callback's control.
                self.unchecked_enqueue(simplified[0], None);
                true
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Decides satisfiability; returns a model if satisfiable.
    pub fn solve(&mut self) -> Option<Vec<bool>> {
        match self.solve_assuming(&[], &mut |_| false) {
            SolveOutcome::Sat(model) => Some(model),
            SolveOutcome::Unsat => None,
            SolveOutcome::Interrupted => unreachable!("the never-stop callback fired"),
        }
    }

    /// Decides satisfiability with a cooperative stop check: `stop`
    /// receives the running work count (decisions + propagations) and a
    /// `true` return abandons the search at the next opportunity. The
    /// check runs inside the propagation loop as well as at decisions, so
    /// even a single giant unit cascade honors the deadline.
    pub fn solve_with_stop(&mut self, stop: &mut dyn FnMut(u64) -> bool) -> SolveOutcome {
        self.solve_assuming(&[], stop)
    }

    /// Convenience: decide satisfiability of a formula.
    pub fn satisfiable(formula: &Formula) -> bool {
        Solver::new(formula.clone()).solve().is_some()
    }

    /// Decides satisfiability under temporary `assumptions` (literals
    /// forced true for this call only). Learnt clauses are kept and remain
    /// sound for later calls with different assumptions, because analysis
    /// only ever resolves reason clauses — never the assumptions
    /// themselves. On [`SolveOutcome::Unsat`], [`Solver::unsat_core`]
    /// names the subset of assumptions the refutation used.
    pub fn solve_assuming(
        &mut self,
        assumptions: &[Lit],
        stop: &mut dyn FnMut(u64) -> bool,
    ) -> SolveOutcome {
        self.core.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        // Consult the stop callback once up front so an already-exhausted
        // deadline interrupts even a trivially small solve, matching the
        // reference solver's first-node check.
        if stop(self.nodes_visited) {
            return SolveOutcome::Interrupted;
        }
        if self.max_learnts == 0 {
            self.max_learnts = (self.clauses.len() / 3).max(100);
        }
        let mut restart_budget = RESTART_BASE * luby(self.restarts);
        let mut conflicts_here: u64 = 0;

        loop {
            let confl = match self.propagate(stop) {
                Ok(c) => c,
                Err(Interrupted) => {
                    self.cancel_until(0);
                    return SolveOutcome::Interrupted;
                }
            };
            if let Some(confl) = confl {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    // Contradiction below every assumption: unsatisfiable
                    // outright, so the core is empty.
                    self.ok = false;
                    self.cancel_until(0);
                    return SolveOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                self.backtracks += 1;
                self.record_learnt(learnt);
                self.decay_activities();
            } else {
                if conflicts_here >= restart_budget {
                    self.restarts += 1;
                    restart_budget = RESTART_BASE * luby(self.restarts);
                    conflicts_here = 0;
                    self.cancel_until(0);
                    continue;
                }
                if self.n_learnts >= self.max_learnts {
                    self.reduce_db();
                }
                // Re-establish assumptions (one pseudo-decision level
                // each), then take a real decision.
                let mut next: Option<Lit> = None;
                while self.decision_level() < assumptions.len() as u32 {
                    let p = assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        Some(true) => {
                            // Already implied: dummy level keeps the
                            // level ↔ assumption-index alignment.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.core = self.analyze_final(p);
                            self.cancel_until(0);
                            return SolveOutcome::Unsat;
                        }
                        None => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        Some(p) => {
                            self.decisions += 1;
                            self.nodes_visited += 1;
                            if stop(self.nodes_visited) {
                                self.cancel_until(0);
                                return SolveOutcome::Interrupted;
                            }
                            p
                        }
                        None => {
                            // All variables assigned: model found.
                            let model = self.assign.iter().map(|v| v.unwrap_or(false)).collect();
                            self.cancel_until(0);
                            return SolveOutcome::Sat(model);
                        }
                    },
                };
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(next, None);
            }
        }
    }

    /// After an Unsat [`Solver::solve_assuming`], the subset of that
    /// call's assumptions used by the refutation (empty when the formula
    /// is unsatisfiable with no assumptions at all). Each returned literal
    /// is one of the assumption literals as passed.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Current value of a literal under the partial assignment.
    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var.index()].map(|v| l.satisfied_by(v))
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Appends `lits` to the arena and hooks up its first two literals as
    /// watches. Callers guarantee `lits.len() >= 2` and that watching the
    /// first two literals is valid (for learnt clauses: lits[0] is the
    /// asserting literal, lits[1] has the backjump level).
    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[code(lits[0])].push(cref);
        self.watches[code(lits[1])].push(cref);
        if learnt {
            self.n_learnts += 1;
        }
        self.clauses.push(ClauseData {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    /// Assigns `p` true at the current decision level with an optional
    /// reason clause, and queues it for propagation.
    fn unchecked_enqueue(&mut self, p: Lit, reason: Option<ClauseRef>) {
        let v = p.var.index();
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(p.positive);
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(p);
    }

    /// Unassigns everything above decision `level`, saving phases.
    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for i in (keep..self.trail.len()).rev() {
            let v = self.trail[i].var.index();
            self.phase[v] = self.assign[v].expect("on trail");
            self.assign[v] = None;
            self.reason[v] = None;
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    /// Two-watched-literal unit propagation to fixpoint. Returns a
    /// conflicting clause, or `None` at fixpoint. The stop callback is
    /// consulted every [`STOP_CHECK_INTERVAL`] propagated literals so a
    /// long cascade stays interruptible.
    fn propagate(
        &mut self,
        stop: &mut dyn FnMut(u64) -> bool,
    ) -> Result<Option<ClauseRef>, Interrupted> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            self.nodes_visited += 1;
            if self.propagations % STOP_CHECK_INTERVAL == 0 && stop(self.nodes_visited) {
                return Err(Interrupted);
            }
            // Clauses watching ¬p just lost that watch.
            let false_lit = p.negated();
            let widx = code(false_lit);
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let mut i = 0;
            let mut conflict: Option<ClauseRef> = None;
            'clauses: while i < ws.len() {
                let cref = ws[i];
                let clause = &mut self.clauses[cref];
                if clause.deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: the false watch sits at position 1.
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                if self.assign[first.var.index()].map(|v| first.satisfied_by(v)) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                for k in 2..clause.lits.len() {
                    let l = clause.lits[k];
                    if self.assign[l.var.index()].map(|v| l.satisfied_by(v)) != Some(false) {
                        clause.lits.swap(1, k);
                        let new_watch = clause.lits[1];
                        self.watches[code(new_watch)].push(cref);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No replacement: clause is unit or conflicting.
                if self.assign[first.var.index()].map(|v| first.satisfied_by(v)) == Some(false) {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[widx] = ws;
            if conflict.is_some() {
                return Ok(conflict);
            }
        }
        Ok(None)
    }

    /// 1-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, a literal of the backjump level second when the
    /// clause has ≥ 2 literals) and the level to backjump to.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // slot 0 = asserting lit
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);

        loop {
            let cref = confl.expect("resolved literal must have a reason");
            self.bump_clause(cref);
            // For reason clauses lits[0] is the propagated literal itself —
            // skip it; for the seed conflict every literal participates.
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].lits.len() {
                let q = self.clauses[cref].lits[k];
                let v = q.var.index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var.index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            confl = self.reason[pl.var.index()];
            self.seen[pl.var.index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
        }
        learnt[0] = p.expect("loop ran").negated();

        // Backjump level: highest level among the non-asserting literals.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var.index()] > self.level[learnt[max_i].var.index()] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var.index()]
        };
        for &l in &learnt[1..] {
            self.seen[l.var.index()] = false;
        }
        (learnt, bt_level)
    }

    /// Installs a freshly learnt clause and enqueues its asserting
    /// literal. Must run after `cancel_until(bt_level)`.
    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, None);
        } else {
            let cref = self.attach_clause(learnt, true);
            self.bump_clause(cref);
            self.unchecked_enqueue(asserting, Some(cref));
        }
    }

    /// MiniSat's `analyzeFinal`: given an assumption `p` found false,
    /// walks the implication graph of `¬p` down to the decisions (which
    /// are all assumptions, since the conflict arose while re-asserting
    /// them) and returns the responsible assumptions plus `p` itself.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut out = vec![p];
        if self.decision_level() == 0 {
            return out;
        }
        self.seen[p.var.index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var.index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => {
                    debug_assert!(self.level[v] > 0);
                    // A decision below the search proper is an assumption,
                    // enqueued as itself.
                    out.push(x);
                }
                Some(cref) => {
                    for k in 1..self.clauses[cref].lits.len() {
                        let q = self.clauses[cref].lits[k];
                        if self.level[q.var.index()] > 0 {
                            self.seen[q.var.index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var.index()] = false;
        out
    }

    /// The unassigned variable with the highest activity (linear scan —
    /// the encodings here stay small enough that a heap buys nothing),
    /// with its saved phase.
    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        for v in 0..self.n_vars {
            if self.assign[v].is_none()
                && best
                    .map(|b| self.activity[v] > self.activity[b])
                    .unwrap_or(true)
            {
                best = Some(v);
            }
        }
        best.map(|v| {
            if self.phase[v] {
                Lit::pos(Var(v as u32))
            } else {
                Lit::neg(Var(v as u32))
            }
        })
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        if !c.learnt {
            return;
        }
        c.activity += self.clause_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.clause_inc /= CLAUSE_DECAY;
    }

    /// Halves the learnt-clause database: the lower-activity half is
    /// tombstoned and detached, except binary clauses and clauses locked
    /// as the reason of a current assignment. The allowance then grows so
    /// reductions stay amortized.
    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&c| {
                let cl = &self.clauses[c];
                cl.learnt && !cl.deleted && cl.lits.len() > 2
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("activities are finite")
        });
        let target = learnt_refs.len() / 2;
        let mut removed = 0;
        for &cref in &learnt_refs {
            if removed >= target {
                break;
            }
            if self.is_locked(cref) {
                continue;
            }
            self.delete_clause(cref);
            removed += 1;
        }
        self.max_learnts = self.max_learnts + self.max_learnts / 10 + 1;
    }

    /// A clause is locked while it is the reason for a current assignment.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.clauses[cref].lits[0];
        self.reason[first.var.index()] == Some(cref)
            && self.assign[first.var.index()].map(|v| first.satisfied_by(v)) == Some(true)
    }

    /// Tombstones a clause and eagerly removes its two watch entries.
    fn delete_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref];
            (code(c.lits[0]), code(c.lits[1]))
        };
        self.watches[w0].retain(|&c| c != cref);
        self.watches[w1].retain(|&c| c != cref);
        let c = &mut self.clauses[cref];
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
        self.n_learnts -= 1;
    }
}

/// Private marker: the stop callback fired mid-search.
#[derive(Debug)]
struct Interrupted;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Clause;
    use crate::solver::{brute_force_satisfiable, solve_reference};

    fn never(_: u64) -> bool {
        false
    }

    #[test]
    fn solves_trivially_sat() {
        let f = Formula::trivially_sat(5, 8);
        let model = Solver::new(f.clone()).solve().expect("satisfiable");
        assert!(f.satisfied_by(&model));
    }

    #[test]
    fn rejects_unsat_families() {
        assert!(Solver::new(Formula::unsat_tiny()).solve().is_none());
        assert!(Solver::new(Formula::unsat_eight()).solve().is_none());
    }

    #[test]
    fn unit_propagation_chains() {
        let f = Formula::new(
            3,
            vec![
                Clause(vec![Lit::pos(Var(0))]),
                Clause(vec![Lit::neg(Var(0)), Lit::pos(Var(1))]),
                Clause(vec![Lit::neg(Var(1)), Lit::pos(Var(2))]),
            ],
        );
        let model = Solver::new(f).solve().unwrap();
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let f = Formula::new(
            1,
            vec![
                Clause(vec![Lit::pos(Var(0))]),
                Clause(vec![Lit::neg(Var(0))]),
            ],
        );
        assert!(Solver::new(f).solve().is_none());
    }

    #[test]
    fn agrees_with_reference_dpll_near_threshold() {
        // Clause/variable ratio near the hard threshold (~4.26), where
        // both SAT and UNSAT instances occur.
        for seed in 0..120 {
            let f = Formula::random_3cnf(8, 34, seed);
            let cdcl = Solver::new(f.clone()).solve();
            let dpll = solve_reference(&f);
            assert_eq!(
                cdcl.is_some(),
                dpll.is_some(),
                "seed {seed}: {}",
                f.display()
            );
            if let Some(model) = cdcl {
                assert!(f.satisfied_by(&model), "seed {seed}");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..60 {
            let f = Formula::random_3cnf(5, 21, seed);
            let cdcl = Solver::new(f.clone()).solve().is_some();
            let brute = brute_force_satisfiable(&f).is_some();
            assert_eq!(cdcl, brute, "seed {seed}: {}", f.display());
        }
    }

    #[test]
    fn assumptions_flip_a_satisfiable_formula() {
        // (x0 ∨ x1): satisfiable alone, and under each single assumption,
        // but not under both negated.
        let f = Formula::new(2, vec![Clause(vec![Lit::pos(Var(0)), Lit::pos(Var(1))])]);
        let mut s = Solver::new(f);
        assert!(matches!(
            s.solve_assuming(&[], &mut never),
            SolveOutcome::Sat(_)
        ));
        let a = [Lit::neg(Var(0))];
        match s.solve_assuming(&a, &mut never) {
            SolveOutcome::Sat(m) => assert!(!m[0] && m[1]),
            o => panic!("expected Sat, got {o:?}"),
        }
        let both = [Lit::neg(Var(0)), Lit::neg(Var(1))];
        assert!(matches!(
            s.solve_assuming(&both, &mut never),
            SolveOutcome::Unsat
        ));
        // And the solver is not poisoned: the unconstrained call still
        // succeeds afterwards.
        assert!(matches!(
            s.solve_assuming(&[], &mut never),
            SolveOutcome::Sat(_)
        ));
    }

    #[test]
    fn unsat_core_names_the_guilty_assumptions() {
        // x0 ∧ x1 → x2 is forced; assuming ¬x2 alongside x3 (irrelevant)
        // must produce a core that omits x3.
        let f = Formula::new(
            4,
            vec![
                Clause(vec![Lit::pos(Var(0))]),
                Clause(vec![Lit::pos(Var(1))]),
                Clause(vec![Lit::neg(Var(0)), Lit::neg(Var(1)), Lit::pos(Var(2))]),
            ],
        );
        let mut s = Solver::new(f);
        let assumptions = [Lit::pos(Var(3)), Lit::neg(Var(2))];
        assert!(matches!(
            s.solve_assuming(&assumptions, &mut never),
            SolveOutcome::Unsat
        ));
        let core = s.unsat_core().to_vec();
        assert!(
            core.contains(&Lit::neg(Var(2))),
            "core {core:?} must contain ¬x2"
        );
        assert!(
            !core.contains(&Lit::pos(Var(3))),
            "core {core:?} must omit x3"
        );
        // Core literals are always a subset of the assumptions passed.
        assert!(core.iter().all(|l| assumptions.contains(l)));
    }

    #[test]
    fn unsat_core_is_empty_once_formula_unsat_is_known() {
        let mut s = Solver::new(Formula::unsat_tiny());
        assert!(s.solve().is_none());
        // The formula is refuted on its own; assumptions cannot be blamed.
        assert!(matches!(
            s.solve_assuming(&[Lit::pos(Var(0))], &mut never),
            SolveOutcome::Unsat
        ));
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn learned_clauses_persist_across_assuming_calls() {
        // A formula hard enough to force learning; the second identical
        // call must reuse the learnt database (strictly fewer conflicts).
        let f = Formula::random_3cnf(12, 51, 7);
        let mut s = Solver::new(f);
        let a = [Lit::pos(Var(0))];
        let first = s.solve_assuming(&a, &mut never);
        let conflicts_first = s.conflicts;
        let second = s.solve_assuming(&a, &mut never);
        let conflicts_second = s.conflicts - conflicts_first;
        assert_eq!(
            matches!(first, SolveOutcome::Sat(_)),
            matches!(second, SolveOutcome::Sat(_))
        );
        assert!(
            conflicts_second <= conflicts_first,
            "second call must not re-learn everything: {conflicts_second} > {conflicts_first}"
        );
    }

    #[test]
    fn incremental_add_clause_narrows_models() {
        let mut s = Solver::with_vars(3);
        assert!(s.add_clause(&[Lit::pos(Var(0)), Lit::pos(Var(1))]));
        assert!(matches!(
            s.solve_assuming(&[], &mut never),
            SolveOutcome::Sat(_)
        ));
        assert!(s.add_clause(&[Lit::neg(Var(0))]));
        match s.solve_assuming(&[], &mut never) {
            SolveOutcome::Sat(m) => assert!(!m[0] && m[1]),
            o => panic!("expected Sat, got {o:?}"),
        }
        assert!(!s.add_clause(&[Lit::neg(Var(1))]) || s.solve().is_none());
        assert!(matches!(
            s.solve_assuming(&[], &mut never),
            SolveOutcome::Unsat
        ));
    }

    #[test]
    fn stop_fires_inside_propagation_cascade() {
        // A pure implication chain: solving it never makes a single
        // decision, so the stop callback can only fire if the propagation
        // loop checks it (the bug this pins: the old solver checked only
        // at decision points).
        let n = 4 * STOP_CHECK_INTERVAL as usize;
        let mut clauses = vec![Clause(vec![Lit::pos(Var(0))])];
        for v in 0..n - 1 {
            clauses.push(Clause(vec![
                Lit::neg(Var(v as u32)),
                Lit::pos(Var(v as u32 + 1)),
            ]));
        }
        let f = Formula::new(n, clauses);
        let mut s = Solver::new(f);
        let mut calls = 0u64;
        let outcome = s.solve_with_stop(&mut |_| {
            calls += 1;
            true
        });
        assert_eq!(s.decisions, 0, "an implication chain needs no decisions");
        assert!(calls > 0, "stop must be consulted inside propagation");
        assert!(matches!(outcome, SolveOutcome::Interrupted));
    }

    #[test]
    fn interrupted_solver_recovers() {
        let f = Formula::random_3cnf(10, 42, 11);
        let mut s = Solver::new(f.clone());
        let _ = s.solve_with_stop(&mut |n| n > 8);
        // After an interrupt the solver must still answer correctly.
        let answer = s.solve();
        assert_eq!(answer.is_some(), solve_reference(&f).is_some());
    }

    #[test]
    fn db_reduction_does_not_change_answers() {
        // Enough conflicts to trigger at least one reduce_db pass.
        for seed in [3u64, 19, 42] {
            let f = Formula::random_3cnf(14, 59, seed);
            let mut s = Solver::new(f.clone());
            s.max_learnts = 4; // force aggressive reduction
            let cdcl = s.solve().is_some();
            assert_eq!(cdcl, solve_reference(&f).is_some(), "seed {seed}");
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn counters_move_and_relate() {
        let f = Formula::random_3cnf(10, 42, 5);
        let mut s = Solver::new(f);
        s.solve();
        assert!(s.nodes_visited > 0);
        assert!(s.propagations > 0);
        assert_eq!(s.nodes_visited, s.decisions + s.propagations);
        assert!(s.backtracks <= s.conflicts);
    }
}
