//! Synchronization-misuse lints over the AST.
//!
//! Every rule here reasons with the Callahan–Subhlok guaranteed
//! orderings and the definiteness classification from
//! [`crate::analysis`]; the combination of these lints plus the wait-for
//! cycle detector in [`crate::deadlock`] is *sound* for deadlock: a
//! program with no `Warning`-or-worse finding cannot reach a state where
//! live processes are all permanently blocked (the property tests drive
//! this claim against the interpreter).

use crate::analysis::Ctx;
use crate::diag::{codes, Anchor, Diagnostic, Severity};
use crate::LintOptions;
use eo_lang::StmtKind;

/// Runs all AST-level misuse lints, appending findings to `out`.
pub(crate) fn sync_lints(ctx: &Ctx<'_>, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
    event_var_lints(ctx, out);
    semaphore_lints(ctx, out);
    join_lints(ctx, out);
    if opts.style {
        style_lints(ctx, out);
    }
    if opts.mhp {
        mhp_lints(ctx, out);
    }
}

fn stmt_diag(
    ctx: &Ctx<'_>,
    code: &'static str,
    severity: Severity,
    anchor: eo_lang::StmtId,
    message: String,
    notes: Vec<String>,
) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        anchor: Anchor::Stmt(anchor),
        location: ctx.map.describe(anchor),
        message,
        notes,
    }
}

fn event_var_lints(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (vi, decl) in ctx.program.event_vars.iter().enumerate() {
        let (posts, waits, clears) = (&ctx.posts[vi], &ctx.waits[vi], &ctx.clears[vi]);
        for &w in waits {
            if !clears.is_empty() {
                // With Clears around, the wait is safe only if some post
                // is guaranteed to land after every clear and before the
                // wait is reached — then the flag is set at the wait no
                // matter how the rest interleaves.
                let safe = posts.iter().any(|&p| {
                    ctx.so.completes_before_reaching(p, w)
                        && clears.iter().all(|&c| ctx.so.guaranteed_before(c, p))
                });
                if !safe {
                    let mut notes: Vec<String> = clears
                        .iter()
                        .map(|&c| format!("may be cleared at {}", ctx.map.describe(c)))
                        .collect();
                    notes.push(
                        "no Post is guaranteed to follow every Clear and precede this Wait"
                            .to_string(),
                    );
                    out.push(stmt_diag(
                        ctx,
                        codes::WAIT_CLEAR_RACE,
                        Severity::Warning,
                        w,
                        format!(
                            "Wait on `{}` races with Clear: a bad interleaving can erase \
                             the flag and block this process forever",
                            decl.name
                        ),
                        notes,
                    ));
                }
            } else if decl.initially_set {
                // Starts set, never cleared: the wait can never block.
            } else if posts.is_empty() {
                out.push(stmt_diag(
                    ctx,
                    codes::WAIT_NEVER_POSTED,
                    Severity::Error,
                    w,
                    format!(
                        "Wait on `{}` can never be satisfied: the flag starts clear and \
                         no statement posts it",
                        decl.name
                    ),
                    vec![],
                ));
            } else {
                let supplied = posts.iter().any(|&p| {
                    ctx.definite_stmt[p.index()] || ctx.so.completes_before_reaching(p, w)
                });
                if !supplied {
                    let notes = posts
                        .iter()
                        .map(|&p| format!("conditional supplier: {}", ctx.map.describe(p)))
                        .collect();
                    out.push(stmt_diag(
                        ctx,
                        codes::WAIT_MAYBE_UNSUPPLIED,
                        Severity::Warning,
                        w,
                        format!(
                            "Wait on `{}` may never be supplied: every Post sits on a \
                             conditional path",
                            decl.name
                        ),
                        notes,
                    ));
                }
            }
        }

        // Dead posts: a signal erased (on every execution where the clear
        // runs) before any wait can observe it.
        if !waits.is_empty() {
            for &p in posts {
                let erased_by = clears.iter().find(|&&c| {
                    ctx.definite_stmt[c.index()]
                        && ctx.so.guaranteed_before(p, c)
                        && !waits.iter().any(|&w| {
                            ctx.so.guaranteed_before(p, w) && ctx.so.guaranteed_before(w, c)
                        })
                });
                if let Some(&c) = erased_by {
                    out.push(stmt_diag(
                        ctx,
                        codes::DEAD_POST,
                        Severity::Warning,
                        p,
                        format!(
                            "Post of `{}` is always erased by a later Clear before any \
                             Wait is guaranteed to observe it",
                            decl.name
                        ),
                        vec![format!("erased at {}", ctx.map.describe(c))],
                    ));
                }
            }
        }
    }
}

fn semaphore_lints(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for (si, decl) in ctx.program.semaphores.iter().enumerate() {
        let (ps, vs) = (&ctx.sem_ps[si], &ctx.sem_vs[si]);
        if ps.is_empty() {
            continue;
        }
        let initial = decl.initial as usize;
        if vs.is_empty() && initial == 0 {
            for &p in ps {
                out.push(stmt_diag(
                    ctx,
                    codes::SEM_NEVER_SUPPLIED,
                    Severity::Error,
                    p,
                    format!(
                        "P on `{}` can never succeed: the counter starts at 0 and no \
                         statement Vs it",
                        decl.name
                    ),
                    vec![],
                ));
            }
            continue;
        }

        let definite_p = ps.iter().filter(|&&p| ctx.definite_stmt[p.index()]).count();
        let definite_v = vs.iter().filter(|&&v| ctx.definite_stmt[v.index()]).count();
        let (possible_p, possible_v) = (ps.len(), vs.len());

        if definite_p > initial + possible_v {
            out.push(stmt_diag(
                ctx,
                codes::SEM_NEVER_SUPPLIED,
                Severity::Error,
                ps[0],
                format!(
                    "semaphore `{}` is over-acquired on every execution: {definite_p} \
                     unconditional P(s) against an initial count of {initial} and at \
                     most {possible_v} V(s)",
                    decl.name
                ),
                vec!["some P blocks forever in every complete execution".to_string()],
            ));
        } else if possible_p > initial + definite_v {
            out.push(stmt_diag(
                ctx,
                codes::SEM_MAY_STARVE,
                Severity::Warning,
                ps[0],
                format!(
                    "semaphore `{}` may starve: up to {possible_p} P(s) against an \
                     initial count of {initial} and only {definite_v} guaranteed V(s)",
                    decl.name
                ),
                vec![format!(
                    "{} of {possible_v} V statement(s) are conditional or in processes \
                     that may never start",
                    possible_v - definite_v
                )],
            ));
        }
    }
}

fn join_lints(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    for &j in &ctx.joins {
        let StmtKind::Join(targets) = ctx.map.kind(j) else {
            continue;
        };
        for &t in targets {
            let reliably_forked = ctx.program.processes[t.index()].root
                || ctx.definite_started[t.index()]
                || ctx.fork_site[t.index()]
                    .is_some_and(|fs| ctx.so.completes_before_reaching(fs, j));
            if !reliably_forked {
                let note = match ctx.fork_site[t.index()] {
                    Some(fs) => format!("forked (conditionally) at {}", ctx.map.describe(fs)),
                    None => "no fork statement targets it".to_string(),
                };
                out.push(stmt_diag(
                    ctx,
                    codes::JOIN_MAYBE_UNFORKED,
                    Severity::Warning,
                    j,
                    format!(
                        "join on `{}` may wait for a process that was never forked",
                        ctx.proc_name(t)
                    ),
                    vec![note],
                ));
            }
        }
    }
}

/// Findings from the `eo-mhp` may-happen-in-parallel fixpoint (opt-in):
/// unordered conflicting shared accesses (`EO-L010`), statements that can
/// never execute (`EO-L011`), and blocking statements that can never fire
/// (`EO-L012`). Every claim is sound over *all* executions: a pair is
/// only reported racy when the fixpoint cannot order it, and a statement
/// is only reported unreachable when no execution can run it.
fn mhp_lints(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mhp = eo_mhp::MhpAnalysis::analyze(ctx.program);
    for race in mhp.static_races() {
        out.push(stmt_diag(
            ctx,
            codes::MHP_STATIC_RACE,
            Severity::Warning,
            race.first,
            format!(
                "conflicting shared accesses may happen in parallel: {} vs {}",
                ctx.map.describe(race.first),
                ctx.map.describe(race.second),
            ),
            vec![format!(
                "no execution-invariant ordering between {} and {}",
                ctx.map.describe(race.first),
                ctx.map.describe(race.second),
            )],
        ));
    }
    for s in mhp.unreachable_stmts() {
        let blocking = matches!(ctx.map.kind(s), StmtKind::Wait(_) | StmtKind::SemP(_));
        if blocking {
            out.push(stmt_diag(
                ctx,
                codes::MHP_BLOCKED_FOREVER,
                Severity::Error,
                s,
                "this blocking statement can never fire: its process hangs here forever"
                    .to_string(),
                vec!["no execution supplies it before it is reached".to_string()],
            ));
        } else {
            out.push(stmt_diag(
                ctx,
                codes::MHP_UNREACHABLE,
                Severity::Warning,
                s,
                "statement can never execute in any execution".to_string(),
                vec!["an earlier statement of this process blocks forever".to_string()],
            ));
        }
    }
}

fn style_lints(ctx: &Ctx<'_>, out: &mut Vec<Diagnostic>) {
    let mut joined = vec![false; ctx.program.processes.len()];
    for &j in &ctx.joins {
        if let StmtKind::Join(targets) = ctx.map.kind(j) {
            for &t in targets {
                joined[t.index()] = true;
            }
        }
    }
    for (ti, def) in ctx.program.processes.iter().enumerate() {
        if def.root || joined[ti] {
            continue;
        }
        if let Some(fs) = ctx.fork_site[ti] {
            out.push(stmt_diag(
                ctx,
                codes::FORKED_NEVER_JOINED,
                Severity::Info,
                fs,
                format!("process `{}` is forked here but never joined", def.name),
                vec!["its completion is unobservable to the rest of the program".to_string()],
            ));
        }
    }
}
