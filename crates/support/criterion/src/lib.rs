//! Vendored stand-in for the slice of the `criterion` crate API this
//! workspace's benches use: `Criterion` configuration, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io. The shim keeps the
//! bench sources compiling unchanged and reports wall-clock statistics
//! (min/mean/max over the sample runs) without criterion's outlier
//! analysis, plots, or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level bench configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target time spent measuring.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &name.to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput basis (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier made of a function name and a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one sample per measured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up until the configured time has elapsed (at least once).
        let warm_start = Instant::now();
        let mut per_iter = loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let took = t0.elapsed();
            if warm_start.elapsed() >= self.criterion.warm_up_time {
                break took.max(Duration::from_nanos(1));
            }
        };

        // Split the measurement budget over the samples; batch enough
        // iterations per sample that Instant resolution is not the story.
        let samples = self.criterion.sample_size;
        let budget = self
            .criterion
            .measurement_time
            .max(Duration::from_millis(1));
        for _ in 0..samples {
            let per_sample = budget / samples as u32;
            let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u32;
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let took = t0.elapsed();
            per_iter = (took / iters).max(Duration::from_nanos(1));
            self.samples.push(per_iter);
        }
    }
}

/// Throughput basis for a group (accepted for API compatibility).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_one(criterion: &Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        criterion,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<60} [{:>12.3} {:>12.3} {:>12.3}] µs/iter",
        min.as_secs_f64() * 1e6,
        mean.as_secs_f64() * 1e6,
        max.as_secs_f64() * 1e6,
    );
}

/// Bundles bench functions into a runnable group, mirroring criterion's
/// macro of the same name (both the list and `name =`/`config =` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// The bench entry point, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        let mut ran = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        g.bench_with_input(BenchmarkId::new("id", 7), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        assert!(ran > 0);
    }
}
