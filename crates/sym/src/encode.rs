//! The direct ⟨E, →T, →D⟩ → CNF partial-order encoding.
//!
//! A feasible execution is a total order of E respecting the
//! synchronization semantics and →D. One Boolean variable per unordered
//! event pair (`o(a,b)` ⇔ "a executes before b", with `o(b,a) = ¬o(a,b)`
//! by sign convention) plus:
//!
//! * **totality + transitivity** — `o(i,j) ∧ o(j,k) → o(i,k)` for all
//!   distinct triples. A transitive tournament is exactly a strict total
//!   order, so any model *is* a schedule;
//! * **base constraints** — unit clauses for program order, fork/join
//!   edges, and (in dependence-preserving mode) every →D pair;
//! * **semaphore tokens** — a matching variable `m_{t,p}` for every P
//!   event `p` and every token source `t` (a V event or one of the
//!   semaphore's initial tokens): each P claims at least one source, each
//!   source serves at most one P, and claiming a V implies executing
//!   after it. Any such matching makes every prefix token-sound (each
//!   executed P's source is already executed and sources are distinct),
//!   and any valid schedule admits one (FIFO), so the constraint is exact;
//! * **event-variable causality** — a trigger variable `t_{p,w}` for
//!   every Wait `w` and candidate Post `p` (plus an "initially set"
//!   trigger when the flag starts true): some trigger holds; a triggering
//!   Post precedes the Wait; and every Clear of the variable is ordered
//!   outside the (trigger, Wait) window — before the trigger or after the
//!   Wait.
//!
//! ## Queries as assumptions
//!
//! The encoding is built **once** into an incremental CDCL solver
//! ([`eo_sat::Solver`]); every query is then a single
//! [`eo_sat::Solver::solve_assuming`] call, so all clauses the solver
//! learns while answering one query shorten the next:
//!
//! * `first` CHB `second` — assume the one literal `o(first, second)`;
//! * `a` MHB `b` — the CHB query `b` before `a` is unsatisfiable;
//! * `a` CCW `b` (operational could-be-concurrent) — two *activation
//!   literals*, one per orientation. `act(a,b)` guards clauses asserting
//!   the model schedules `a` and `b` back to back (every other event is
//!   before `a` or after `b`) **and** that `b` was already enabled in the
//!   state `S` = {e : o(e,a)} reached just before `a` fires (see below).
//!   `a CCW b` iff assuming `act(a,b)` or assuming `act(b,a)` is
//!   satisfiable — exactly the exact engine's witness-overlap search,
//!   which looks for a reachable state with both events co-enabled and a
//!   completable back-to-back firing in either order. Activation clauses
//!   all contain `¬act`, so they are vacuous whenever the activation
//!   literal is not assumed; they stay in the database and are reused
//!   when the same pair is queried again.
//!
//! ## Enabledness of `b` at `S`
//!
//! `S` is a prefix of the model's schedule, so it is downward closed;
//! `b`'s enabledness gates mirror the machine's (`eo_model::Machine`):
//!
//! * *next in process* — `b`'s immediate program-order predecessor is in
//!   `S` (transitivity pulls in the rest of the chain);
//! * *process started* — the fork that created `b`'s process is in `S`
//!   (only needed explicitly when `b` is its process's first event);
//! * *→D predecessors* — each is in `S` (dependence-preserving mode);
//! * *`P(s)`* — `b`'s claimed token source is available at `S`: claiming
//!   a V source implies that V is in `S` (anonymous initial tokens are
//!   always available). Exclusivity of the matching then gives the
//!   counter ≥ 1 at `S`: every P in `S` claims a distinct source in `S`,
//!   and `b`'s source is yet another;
//! * *`Wait(u)`* — `b`'s trigger Post is in `S`; the base clauses already
//!   force every Clear outside the (trigger, Wait) window, and `b` runs
//!   immediately after `a`, so no Clear can sit between the trigger and
//!   `S`'s end;
//! * *`Join(children)`* — each child's last event is in `S` (program
//!   order pulls in the rest; the fork → first-event edge pulls in the
//!   creation), or the child's fork is in `S` for eventless children.
//!
//! `a`'s own enabledness at `S`, `b`'s at `S·a`, and reachability of `S`
//! need no extra clauses: the model is a feasible schedule that fires `a`
//! and `b` right there.
//!
//! The encoding is cubic in |E| (the transitivity clauses), so the
//! symbolic backend wins on query-heavy workloads over modest traces —
//! E19 measures the crossover against the enumerating engine.

use eo_model::{EventId, Op, Trace};
use eo_relations::Relation;
use eo_sat::{Lit, SolveOutcome, Solver, Var};
use std::collections::HashMap;

/// What a symbolic query ended with. Alias of the solver's outcome: a
/// model (decodable into a schedule), unsatisfiability, or interruption
/// by the caller's stop callback.
pub type SymOutcome = SolveOutcome;

/// A partial-order CNF encoding of one execution, with an embedded
/// incremental CDCL solver shared by every query asked of it.
pub struct PoEncoding {
    n: usize,
    solver: Solver,
    /// For each SemP event: its matching variables, each paired with the
    /// source's event id (`None` = an anonymous initial token).
    sem_claims: HashMap<usize, Vec<(Var, Option<usize>)>>,
    /// For each Wait event: its trigger variables, each paired with the
    /// triggering Post's event id (`None` = the initially-set flag).
    wait_triggers: HashMap<usize, Vec<(Var, Option<usize>)>>,
    /// Immediate program-order predecessor of each event.
    po_pred: Vec<Option<usize>>,
    /// The fork event that created each event's process (`None` = root).
    creator: Vec<Option<usize>>,
    /// For each Join event: per child, the event that must be in `S` for
    /// the child to count as complete (last event, or fork if eventless).
    join_gates: HashMap<usize, Vec<usize>>,
    /// →D predecessors of each event under the encoding's feasibility
    /// mode (empty in dependence-ignoring mode).
    d_preds: Vec<Vec<usize>>,
    /// Lazily created activation literals for overlap queries, keyed by
    /// the ordered pair (first-to-fire, second-to-fire).
    overlap_acts: HashMap<(usize, usize), Lit>,
    /// Clauses in the feasibility core (diagnostics).
    core_clauses: usize,
}

impl PoEncoding {
    /// Builds the feasibility encoding of `trace` under the effective
    /// dependence relation `d` (pass the real →D for
    /// dependence-preserving feasibility, an empty relation to ignore
    /// dependences) and loads it into a fresh incremental solver.
    pub fn new(trace: &Trace, d: &Relation) -> PoEncoding {
        eo_obs::span!("sym.encode");
        let n = trace.n_events();
        let n_pairs = n * n.saturating_sub(1) / 2;
        let mut solver = Solver::with_vars(n_pairs);
        let mut clauses = 0usize;

        let before = |a: usize, b: usize| before_lit(n, a, b);

        // Totality is implicit (o or ¬o); transitivity over all distinct
        // ordered triples: o(i,j) ∧ o(j,k) → o(i,k).
        for i in 0..n {
            for j in 0..n {
                if j == i {
                    continue;
                }
                for k in 0..n {
                    if k == i || k == j {
                        continue;
                    }
                    solver.add_clause(&[
                        before(i, j).negated(),
                        before(j, k).negated(),
                        before(i, k),
                    ]);
                    clauses += 1;
                }
            }
        }

        // Base constraints: program order, fork/join, dependences.
        for (a, b) in eo_model::induce::base_edges(trace, d).pairs() {
            solver.add_clause(&[before(a, b)]);
            clauses += 1;
        }

        // Semaphore token matching.
        let mut sem_claims: HashMap<usize, Vec<(Var, Option<usize>)>> = HashMap::new();
        for s in 0..trace.semaphores.len() {
            let sid = eo_model::SemId::new(s);
            let vs: Vec<usize> = trace
                .events
                .iter()
                .filter(|e| e.op == Op::SemV(sid))
                .map(|e| e.id.index())
                .collect();
            let ps: Vec<usize> = trace
                .events
                .iter()
                .filter(|e| e.op == Op::SemP(sid))
                .map(|e| e.id.index())
                .collect();
            if ps.is_empty() {
                continue;
            }
            let initial = trace.semaphores[s].initial as usize;
            // Token sources: every V, plus `initial` anonymous tokens.
            let sources: Vec<Option<usize>> = vs
                .iter()
                .map(|&v| Some(v))
                .chain((0..initial).map(|_| None))
                .collect();
            // m[src][pi]: source `src` serves P event `ps[pi]`.
            let m: Vec<Vec<Var>> = sources
                .iter()
                .map(|_| ps.iter().map(|_| solver.add_var()).collect())
                .collect();

            for (pi, &p) in ps.iter().enumerate() {
                // At least one source per P.
                let at_least: Vec<Lit> = m.iter().map(|row| Lit::pos(row[pi])).collect();
                solver.add_clause(&at_least);
                clauses += 1;
                // Claiming a V implies running after it.
                for (src, source) in sources.iter().enumerate() {
                    if let Some(v) = *source {
                        solver.add_clause(&[Lit::neg(m[src][pi]), before(v, p)]);
                        clauses += 1;
                    }
                }
                sem_claims.insert(
                    p,
                    sources
                        .iter()
                        .enumerate()
                        .map(|(src, &source)| (m[src][pi], source))
                        .collect(),
                );
            }
            // Each source serves at most one P.
            for row in &m {
                for pi in 0..ps.len() {
                    for pj in (pi + 1)..ps.len() {
                        solver.add_clause(&[Lit::neg(row[pi]), Lit::neg(row[pj])]);
                        clauses += 1;
                    }
                }
            }
        }

        // Event-variable causality.
        let mut wait_triggers: HashMap<usize, Vec<(Var, Option<usize>)>> = HashMap::new();
        for u in 0..trace.event_vars.len() {
            let uid = eo_model::EvVarId::new(u);
            let posts: Vec<usize> = trace
                .events
                .iter()
                .filter(|e| e.op == Op::Post(uid))
                .map(|e| e.id.index())
                .collect();
            let waits: Vec<usize> = trace
                .events
                .iter()
                .filter(|e| e.op == Op::Wait(uid))
                .map(|e| e.id.index())
                .collect();
            let clears: Vec<usize> = trace
                .events
                .iter()
                .filter(|e| e.op == Op::Clear(uid))
                .map(|e| e.id.index())
                .collect();
            let initially = trace.event_vars[u].initially_set;

            for &w in &waits {
                let triggers: Vec<(Var, Option<usize>)> = posts
                    .iter()
                    .map(|&p| Some(p))
                    .chain(initially.then_some(None))
                    .map(|p| (solver.add_var(), p))
                    .collect();

                // Some trigger explains the Wait.
                let some: Vec<Lit> = triggers.iter().map(|&(t, _)| Lit::pos(t)).collect();
                solver.add_clause(&some);
                clauses += 1;
                for &(t, post) in &triggers {
                    match post {
                        Some(p) => {
                            // Triggering post precedes the wait…
                            solver.add_clause(&[Lit::neg(t), before(p, w)]);
                            clauses += 1;
                            // …and no Clear sits between: each is before
                            // the post or after the wait.
                            for &c in &clears {
                                solver.add_clause(&[Lit::neg(t), before(c, p), before(w, c)]);
                                clauses += 1;
                            }
                        }
                        None => {
                            // The initial flag triggered it: every Clear
                            // is after the wait.
                            for &c in &clears {
                                solver.add_clause(&[Lit::neg(t), before(w, c)]);
                                clauses += 1;
                            }
                        }
                    }
                }
                wait_triggers.insert(w, triggers);
            }
        }

        // Per-event structural facts for the overlap (CCW) clauses.
        let per_process = trace.per_process();
        let mut po_pred: Vec<Option<usize>> = vec![None; n];
        for list in &per_process {
            for pair in list.windows(2) {
                po_pred[pair[1].index()] = Some(pair[0].index());
            }
        }
        let creator: Vec<Option<usize>> = trace
            .events
            .iter()
            .map(|e| {
                trace.processes[e.process.index()]
                    .created_by
                    .map(|f| f.index())
            })
            .collect();
        let mut join_gates: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in &trace.events {
            if let Op::Join(children) = &e.op {
                let gates = children
                    .iter()
                    .filter_map(|c| match per_process[c.index()].last() {
                        Some(&last) => Some(last.index()),
                        None => trace.processes[c.index()].created_by.map(|f| f.index()),
                    })
                    .collect();
                join_gates.insert(e.id.index(), gates);
            }
        }
        let mut d_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in d.pairs() {
            d_preds[b].push(a);
        }

        eo_obs::counter!("sym.clauses", clauses as u64);
        PoEncoding {
            n,
            solver,
            sem_claims,
            wait_triggers,
            po_pred,
            creator,
            join_gates,
            d_preds,
            overlap_acts: HashMap::new(),
            core_clauses: clauses,
        }
    }

    /// Builds the encoding from a **typed** dependence input
    /// ([`eo_model::Dependence`]): the →D unit facts asserted are the
    /// per-class relations' fold, and per-class fact counts are published
    /// through `eo_obs` (`sym.dep.co` / `.wr` / `.fr` / `.unclassified`;
    /// a pair in several classes is attributed to the first of co, wr,
    /// fr). The emitted CNF is **bit-identical** to
    /// [`PoEncoding::new`] over `dep.flat()` — the classes refine the
    /// input, never the theory — which the encoding tests pin.
    pub fn with_dependence(trace: &Trace, dep: &eo_model::Dependence) -> PoEncoding {
        let (mut co, mut wr, mut fr, mut other) = (0u64, 0u64, 0u64, 0u64);
        for (a, b) in dep.flat().pairs() {
            if dep.co.contains(a, b) {
                co += 1;
            } else if dep.wr.contains(a, b) {
                wr += 1;
            } else if dep.fr.contains(a, b) {
                fr += 1;
            } else {
                // From-flat compatibility inputs carry no classes.
                other += 1;
            }
        }
        eo_obs::counter!("sym.dep.co", co);
        eo_obs::counter!("sym.dep.wr", wr);
        eo_obs::counter!("sym.dep.fr", fr);
        eo_obs::counter!("sym.dep.unclassified", other);
        PoEncoding::new(trace, dep.flat())
    }

    /// Number of events in the encoded execution.
    pub fn n_events(&self) -> usize {
        self.n
    }

    /// Number of clauses in the feasibility core (diagnostics).
    pub fn core_clause_count(&self) -> usize {
        self.core_clauses
    }

    /// The shared solver's work counters, for metrics emission.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// The literal asserting "a executes before b".
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn before(&self, a: usize, b: usize) -> Lit {
        before_lit(self.n, a, b)
    }

    /// Decides "some feasible schedule runs `first` strictly before
    /// `second`" (the CHB query) as one incremental solve. Returns the
    /// witness schedule on success.
    pub fn solve_before(
        &mut self,
        first: EventId,
        second: EventId,
        stop: &mut dyn FnMut(u64) -> bool,
    ) -> SymOutcome {
        assert_ne!(first, second, "order query needs two distinct events");
        let assumption = self.before(first.index(), second.index());
        let span = eo_obs::span("sym.solve");
        let outcome = self.solver.solve_assuming(&[assumption], stop);
        span.end();
        outcome
    }

    /// Decides whether `a` and `b` can be concurrent in the operational
    /// sense (the CCW query): some feasible schedule reaches a state
    /// where both are enabled and fires them back to back, in either
    /// order, and still completes. Two incremental solves, one per
    /// orientation; the activation clauses are created on first use and
    /// reused thereafter.
    ///
    /// `Sat` carries the witnessing schedule's model; `Interrupted` is
    /// returned as soon as either orientation's solve is interrupted.
    pub fn solve_overlap(
        &mut self,
        a: EventId,
        b: EventId,
        stop: &mut dyn FnMut(u64) -> bool,
    ) -> SymOutcome {
        assert_ne!(a, b, "overlap query needs two distinct events");
        let span = eo_obs::span("sym.solve");
        let mut last = SymOutcome::Unsat;
        for (x, y) in [(a, b), (b, a)] {
            let act = self.overlap_activation(x.index(), y.index());
            match self.solver.solve_assuming(&[act], stop) {
                SymOutcome::Sat(model) => {
                    span.end();
                    return SymOutcome::Sat(model);
                }
                SymOutcome::Unsat => {}
                SymOutcome::Interrupted => {
                    last = SymOutcome::Interrupted;
                    break;
                }
            }
        }
        span.end();
        last
    }

    /// The activation literal for "x fires, then y immediately after,
    /// with y already enabled before x fired", creating its guarded
    /// clauses on first use.
    fn overlap_activation(&mut self, x: usize, y: usize) -> Lit {
        if let Some(&act) = self.overlap_acts.get(&(x, y)) {
            return act;
        }
        let act = Lit::pos(self.solver.add_var());
        let nact = act.negated();
        let n = self.n;

        // x fires, then y: o(x, y) …
        self.solver.add_clause(&[nact, before_lit(n, x, y)]);
        // … immediately after — every other event is before x or after y.
        for e in 0..n {
            if e == x || e == y {
                continue;
            }
            self.solver
                .add_clause(&[nact, before_lit(n, e, x), before_lit(n, y, e)]);
        }

        // Enabledness of y at S = {e : o(e, x)}. Each gate is an "event
        // in S" requirement; a gate on x or y itself can never hold (x
        // and y are outside S), so the orientation is infeasible outright.
        let mut gates: Vec<usize> = Vec::new();
        match self.po_pred[y] {
            Some(prev) => gates.push(prev),
            // First event of its process: the creating fork must be in S.
            None => gates.extend(self.creator[y]),
        }
        gates.extend(self.d_preds[y].iter().copied());
        if let Some(join_gates) = self.join_gates.get(&y) {
            gates.extend(join_gates.iter().copied());
        }
        let infeasible = gates.iter().any(|&g| g == x || g == y);
        if infeasible {
            self.solver.add_clause(&[nact]);
        } else {
            for g in gates {
                self.solver.add_clause(&[nact, before_lit(n, g, x)]);
            }
            // P(s): the claimed V source must already be in S.
            if let Some(claims) = self.sem_claims.get(&y).cloned() {
                for &(m, source) in claims.iter() {
                    if let Some(v) = source {
                        if v == x {
                            // Claiming x's own token means the counter was
                            // not positive before x fired.
                            self.solver.add_clause(&[nact, Lit::neg(m)]);
                        } else {
                            self.solver
                                .add_clause(&[nact, Lit::neg(m), before_lit(n, v, x)]);
                        }
                    }
                }
            }
            // Wait(u): the trigger post must already be in S.
            if let Some(triggers) = self.wait_triggers.get(&y).cloned() {
                for &(t, post) in triggers.iter() {
                    if let Some(p) = post {
                        if p == x {
                            self.solver.add_clause(&[nact, Lit::neg(t)]);
                        } else {
                            self.solver
                                .add_clause(&[nact, Lit::neg(t), before_lit(n, p, x)]);
                        }
                    }
                }
            }
        }

        self.overlap_acts.insert((x, y), act);
        act
    }

    /// Reads the schedule out of a model: events sorted by how many other
    /// events they precede.
    pub fn decode_schedule(&self, model: &[bool]) -> Vec<EventId> {
        let before = |a: usize, b: usize| {
            let lit = self.before(a, b);
            lit.satisfied_by(model[lit.var.index()])
        };
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&e| (0..self.n).filter(|&o| o != e && before(o, e)).count());
        order.into_iter().map(EventId::new).collect()
    }
}

/// The pair literal for "a before b" over `n` events (sign convention:
/// the variable is allocated for the `a < b` orientation).
fn before_lit(n: usize, a: usize, b: usize) -> Lit {
    assert_ne!(a, b, "no order literal for a pair of equal events");
    if a < b {
        Lit::pos(Var(pair_index(n, a, b) as u32))
    } else {
        Lit::neg(Var(pair_index(n, b, a) as u32))
    }
}

#[inline]
fn pair_index(n: usize, a: usize, b: usize) -> usize {
    debug_assert!(a < b && b < n);
    // Row-major upper triangle: offset of row a + (b - a - 1).
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::fixtures;

    fn never(_: u64) -> bool {
        false
    }

    fn encoding_of(trace: &Trace) -> PoEncoding {
        let exec = trace.to_execution().unwrap();
        PoEncoding::new(exec.trace(), exec.d())
    }

    #[test]
    fn typed_dependence_input_encodes_identically() {
        // The typed path must assert exactly the facts of the flat path:
        // same clause count, same verdicts on representative queries —
        // for both a classified input and a from-flat compat input.
        let (trace, _) = fixtures::figure1();
        let exec = trace.to_execution().unwrap();
        let mut flat_enc = PoEncoding::new(exec.trace(), exec.d());
        let mut typed_enc = PoEncoding::with_dependence(exec.trace(), exec.dependence());
        let compat = eo_model::Dependence::from_flat(exec.d().clone());
        let mut compat_enc = PoEncoding::with_dependence(exec.trace(), &compat);
        assert_eq!(
            flat_enc.core_clause_count(),
            typed_enc.core_clause_count(),
            "typed input must add no clause beyond the flat fold"
        );
        assert_eq!(flat_enc.core_clause_count(), compat_enc.core_clause_count());
        let n = trace.n_events();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (x, y) = (eo_model::EventId::new(a), eo_model::EventId::new(b));
                let f = matches!(flat_enc.solve_before(x, y, &mut never), SymOutcome::Sat(_));
                let t = matches!(typed_enc.solve_before(x, y, &mut never), SymOutcome::Sat(_));
                let c = matches!(
                    compat_enc.solve_before(x, y, &mut never),
                    SymOutcome::Sat(_)
                );
                assert_eq!(f, t, "typed verdict diverges on ({a}, {b})");
                assert_eq!(f, c, "compat verdict diverges on ({a}, {b})");
            }
        }
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(seen.insert(pair_index(n, a, b)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(seen.iter().max(), Some(&(n * (n - 1) / 2 - 1)));
    }

    #[test]
    fn handshake_orders() {
        let (trace, ids) = fixtures::sem_handshake();
        let mut enc = encoding_of(&trace);
        // v before p is forced; p before v is infeasible.
        assert!(matches!(
            enc.solve_before(ids.v, ids.p, &mut never),
            SymOutcome::Sat(_)
        ));
        assert!(matches!(
            enc.solve_before(ids.p, ids.v, &mut never),
            SymOutcome::Unsat
        ));
        // The tails can run in either order; the decoded witness replays.
        match enc.solve_before(ids.after_p, ids.after_v, &mut never) {
            SymOutcome::Sat(model) => {
                let schedule = enc.decode_schedule(&model);
                let exec = trace.to_execution().unwrap();
                let machine = eo_model::Machine::new(exec.trace());
                assert!(
                    machine.replay(&schedule).is_ok(),
                    "decoded schedule replays"
                );
            }
            o => panic!("tails must reorder, got {o:?}"),
        }
    }

    #[test]
    fn overlap_on_independent_pair() {
        let (trace, a, b) = fixtures::independent_pair();
        let mut enc = encoding_of(&trace);
        assert!(matches!(
            enc.solve_overlap(a, b, &mut never),
            SymOutcome::Sat(_)
        ));
    }

    #[test]
    fn overlap_rejects_handshake_order() {
        let (trace, ids) = fixtures::sem_handshake();
        let mut enc = encoding_of(&trace);
        // v MHB p: they can never be co-enabled.
        assert!(matches!(
            enc.solve_overlap(ids.v, ids.p, &mut never),
            SymOutcome::Unsat
        ));
    }

    #[test]
    fn overlap_activation_clauses_are_reused() {
        let (trace, a, b) = fixtures::independent_pair();
        let mut enc = encoding_of(&trace);
        let _ = enc.solve_overlap(a, b, &mut never);
        let acts_after_first = enc.overlap_acts.len();
        let _ = enc.solve_overlap(a, b, &mut never);
        assert_eq!(
            enc.overlap_acts.len(),
            acts_after_first,
            "no fresh activations"
        );
    }

    #[test]
    fn interrupts_propagate() {
        let (trace, a, b) = fixtures::independent_pair();
        let mut enc = encoding_of(&trace);
        assert!(matches!(
            enc.solve_overlap(a, b, &mut |_| true),
            SymOutcome::Interrupted
        ));
    }
}
