//! Process-signal plumbing for graceful interruption: a SIGINT/SIGTERM
//! flag the rest of the workspace can poll, with zero dependencies.
//!
//! Every analysis in this workspace is cancellable through the
//! supervisor's `Budget` checkpoints (`eo-engine`), and the serving
//! layer drains cleanly when asked — but *asking* requires catching the
//! signal in the first place, and `std` exposes no signal API. This crate
//! is the one place that talks to the platform: it installs a handler for
//! `SIGINT` and `SIGTERM` that does nothing but bump an atomic counter
//! (the only kind of work that is async-signal-safe), and everything else
//! polls that counter cooperatively:
//!
//! * `eo analyze` polls it to raise the engine's `CancelHandle`, so ^C
//!   yields a sound degraded report (exit 2) instead of a killed process;
//! * `eo-server` polls it to enter its drain state machine (first
//!   signal: stop accepting, finish in-flight, exit 0) and to hard-exit
//!   on an impatient second signal.
//!
//! # The unsafe boundary
//!
//! The whole workspace builds with `forbid(unsafe_code)` except this
//! crate, which is `deny(unsafe_code)` with one scoped `allow`: the
//! handler-installation FFI below (`sigaction(2)` with `SA_RESTART`
//! where the struct layout is known — Linux x86_64/aarch64, glibc and
//! musl agree there — and `signal(2)` as the fallback elsewhere). The
//! handler body is a single relaxed atomic increment —
//! async-signal-safe by construction — and the installation is
//! idempotent and race-free (guarded by `Once`). On non-unix targets
//! installation is a no-op and the flag simply never fires, so callers
//! need no platform gates of their own.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// How many termination signals (SIGINT or SIGTERM) have arrived since
/// [`install`] was first called.
static SIGNALS: AtomicU32 = AtomicU32::new(0);

static INSTALL: Once = Once::new();

#[cfg(unix)]
mod imp {
    //! The single unsafe boundary of the workspace: registering an
    //! async-signal-safe handler with the platform. Rust links libc on
    //! every unix target, so the symbols are always present; no crate
    //! dependency is needed.
    //!
    //! Where we can state the ABI confidently — Linux on x86_64/aarch64,
    //! where glibc and musl lay `struct sigaction` out identically — we
    //! use `sigaction(2)` with `SA_RESTART`: the handler persists across
    //! deliveries (so the "second signal hard-exits" contract cannot be
    //! defeated by System V reset-to-default semantics) and interrupted
    //! slow syscalls restart instead of surfacing spurious `EINTR`.
    //! Elsewhere we fall back to `signal(2)`, which already has
    //! BSD (persistent-handler) semantics on every modern libc.

    use std::sync::atomic::Ordering;

    /// POSIX signal numbers (identical on every unix Rust supports).
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe action we need: count the delivery.
        // Everything else (cancelling budgets, draining servers) happens
        // cooperatively on normal threads that poll this counter.
        super::SIGNALS.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[allow(unsafe_code)]
    pub(super) fn install() {
        /// Libc's `struct sigaction` as both glibc and musl define it on
        /// x86_64/aarch64 Linux: handler at 0, a 128-byte `sigset_t`,
        /// `int` flags, then the (unused without `SA_RESTORER`) restorer
        /// pointer. `repr(C)` reproduces the padding between the 4-byte
        /// flags and the 8-aligned restorer.
        #[repr(C)]
        struct Sigaction {
            sa_handler: extern "C" fn(i32),
            sa_mask: [u64; 16],
            sa_flags: i32,
            sa_restorer: usize,
        }
        /// Restart interruptible syscalls instead of failing with EINTR
        /// (Linux value; this constant is arch-independent there).
        const SA_RESTART: i32 = 0x1000_0000;
        extern "C" {
            /// POSIX `sigaction(2)`. The previous action (`oldact`) is
            /// deliberately not requested: we install once per process
            /// and never restore.
            fn sigaction(signum: i32, act: *const Sigaction, oldact: *mut Sigaction) -> i32;
        }
        let act = Sigaction {
            sa_handler: on_signal,
            // An empty mask: no extra signals blocked during delivery
            // (the handler is one relaxed atomic increment; nothing it
            // does needs protection).
            sa_mask: [0; 16],
            sa_flags: SA_RESTART,
            sa_restorer: 0,
        };
        // SAFETY: `sigaction` is the POSIX API for exactly this purpose;
        // the struct layout matches the libc definition for the gated
        // target triples, the handler only performs a relaxed atomic
        // increment (async-signal-safe), and installation happens inside
        // a `Once`, so there is no racing re-registration.
        unsafe {
            sigaction(SIGINT, &act, std::ptr::null_mut());
            sigaction(SIGTERM, &act, std::ptr::null_mut());
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    #[allow(unsafe_code)]
    pub(super) fn install() {
        type Handler = extern "C" fn(i32);
        extern "C" {
            /// POSIX `signal(2)`: the portable fallback where we cannot
            /// vouch for the `struct sigaction` layout. Every modern
            /// unix libc gives it BSD (persistent-handler) semantics, so
            /// the handler survives the first delivery. The return value
            /// (the previous handler) is deliberately ignored: we
            /// install once per process and never restore.
            fn signal(signum: i32, handler: Handler) -> usize;
        }
        // SAFETY: the handler we register only performs a relaxed atomic
        // increment, which is async-signal-safe. Installation happens
        // inside a `Once`, so there is no racing re-registration.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Signals don't exist (in the POSIX sense) on this target; the flag
    /// simply never fires and cancellation falls back to budgets alone.
    pub(super) fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent, thread-safe) and
/// returns the pollable flag. Subsequent calls return the same flag
/// without re-registering anything.
pub fn install() -> SigFlag {
    INSTALL.call_once(imp::install);
    SigFlag(())
}

/// A handle to the process-wide termination-signal counter. Cheap to
/// copy; all handles observe the same counter.
#[derive(Clone, Copy, Debug)]
pub struct SigFlag(());

impl SigFlag {
    /// Total SIGINT/SIGTERM deliveries observed so far.
    pub fn count(&self) -> u32 {
        SIGNALS.load(Ordering::Relaxed)
    }

    /// Whether at least one termination signal has arrived.
    pub fn triggered(&self) -> bool {
        self.count() > 0
    }

    /// Test-only back door: pretend a signal arrived. Lets the drain and
    /// cancellation paths be exercised deterministically without a real
    /// `kill`, on every platform.
    pub fn raise_for_test(&self) {
        SIGNALS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Spawns a watcher thread that polls the signal flag every few
/// milliseconds and runs `on_signal` (once) when it fires. Dropping the
/// returned guard stops the watcher; if the callback already ran the
/// guard's drop is a no-op. This is how `eo analyze` bridges ^C to the
/// engine's `CancelHandle` without threading signal logic through the
/// engine itself.
pub fn watch<F>(on_signal: F) -> WatchGuard
where
    F: FnOnce() + Send + 'static,
{
    let flag = install();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let mut callback = Some(on_signal);
        while !stop2.load(Ordering::Relaxed) {
            if flag.triggered() {
                if let Some(f) = callback.take() {
                    f();
                }
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    WatchGuard {
        stop,
        join: Some(join),
    }
}

/// Stops the [`watch`] poller when dropped (joining it; the poller wakes
/// at 10ms granularity so the join is prompt).
pub struct WatchGuard {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            // The watcher only sleeps in 10ms slices; ignore a panicked
            // watcher (its callback is user code) rather than propagate.
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn install_is_idempotent_and_flag_is_shared() {
        let a = install();
        let b = install();
        let before = a.count();
        a.raise_for_test();
        assert_eq!(b.count(), before + 1);
        assert!(b.triggered());
    }

    #[test]
    fn watch_fires_once_after_a_signal() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        let guard = watch(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        install().raise_for_test();
        // The poller wakes every 10ms; give it a generous window.
        for _ in 0..200 {
            if fired.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        drop(guard); // already fired: drop is a no-op join
    }

    #[test]
    fn dropping_the_guard_stops_an_unfired_watcher() {
        // This watcher's callback must never run if no signal arrives
        // between spawn and drop... but other tests raise the shared
        // flag, so only assert the drop completes promptly.
        let guard = watch(|| {});
        drop(guard);
    }
}
