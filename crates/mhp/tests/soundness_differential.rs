//! The MHP soundness contract, pinned differentially against the exact
//! engine: on the program reconstructed from a trace,
//!
//! 1. every event pair the exact engine observes as could-be-concurrent
//!    (CCW) must be statically `MayBeConcurrent` — a `NeverConcurrent`
//!    (or `Unreachable`) verdict on an observed-CCW pair would be
//!    unsound; and
//! 2. every exact (feasible) data race must survive the static tier —
//!    `never_concurrent` may never hold on a racing pair.
//!
//! The sweep covers the fixture gallery in both feasibility modes, both
//! E9 families (the pairing-pitfall ladder and the random semaphore
//! workloads), and 100 seeded generated programs across both
//! synchronization styles. The CCW check runs under the §5.3
//! dependence-ignoring mode where noted: it admits every interleaving the
//! dependence-preserving mode does and more, so `CCW_preserve ⊆
//! CCW_ignore` and one check subsumes both modes.

use eo_engine::{ExactEngine, FeasibilityMode};
use eo_lang::generator::{generate_trace, WorkloadSpec};
use eo_mhp::{MhpAnalysis, StmtId, Verdict};
use eo_model::{fixtures, ProgramExecution, Trace};

fn exec_of(trace: Trace) -> ProgramExecution {
    trace.to_execution().expect("test traces are valid")
}

/// Reconstructs the program behind `exec`, runs the fixpoint, and
/// returns the analysis plus the event → statement mapping.
fn analyze_trace(exec: &ProgramExecution) -> (MhpAnalysis, Vec<StmtId>) {
    let (program, event_of_stmt) = eo_lang::program_from_trace(exec.trace());
    let mhp = MhpAnalysis::analyze(&program);
    let mut stmt_of = vec![StmtId(0); event_of_stmt.len()];
    for (si, ev) in event_of_stmt.iter().enumerate() {
        stmt_of[ev.index()] = StmtId(si as u32);
    }
    (mhp, stmt_of)
}

/// Contract 1: exact CCW pairs are statically `MayBeConcurrent`.
fn check_ccw_covered(label: &str, exec: &ProgramExecution, mode: FeasibilityMode) {
    if exec.n_events() == 0 {
        return;
    }
    let (mhp, stmt_of) = analyze_trace(exec);
    let summary = ExactEngine::with_mode(exec, mode).summary();
    let ccw = summary.ccw_relation();
    for a in 0..exec.n_events() {
        for b in 0..exec.n_events() {
            if a == b || !ccw.contains(a, b) {
                continue;
            }
            let (sa, sb) = (stmt_of[a], stmt_of[b]);
            assert_eq!(
                mhp.verdict(sa, sb),
                Verdict::MayBeConcurrent,
                "{label} [{mode:?}]: events #{a} and #{b} are exactly CCW \
                 but the static verdict claims otherwise"
            );
        }
    }
}

/// Contract 2: exact races are never statically refuted.
fn check_races_survive(label: &str, exec: &ProgramExecution) {
    let (mhp, stmt_of) = analyze_trace(exec);
    for race in eo_race::exact_races(exec) {
        let (sa, sb) = (stmt_of[race.first.index()], stmt_of[race.second.index()]);
        assert!(
            !mhp.never_concurrent(sa, sb),
            "{label}: the static tier refutes the feasible race \
             #{} / #{}",
            race.first.index(),
            race.second.index()
        );
    }
}

fn fixture_gallery() -> Vec<(&'static str, ProgramExecution)> {
    vec![
        ("independent_pair", exec_of(fixtures::independent_pair().0)),
        ("sem_handshake", exec_of(fixtures::sem_handshake().0)),
        (
            "fork_join_diamond",
            exec_of(fixtures::fork_join_diamond().0),
        ),
        ("figure1", exec_of(fixtures::figure1().0)),
        (
            "post_wait_clear_chain",
            exec_of(fixtures::post_wait_clear_chain().0),
        ),
        (
            "shared_counter_race",
            exec_of(fixtures::shared_counter_race().0),
        ),
        ("crossing", exec_of(fixtures::crossing().0)),
    ]
}

#[test]
fn fixtures_are_covered_in_both_feasibility_modes() {
    for (label, exec) in fixture_gallery() {
        for mode in [
            FeasibilityMode::PreserveDependences,
            FeasibilityMode::IgnoreDependences,
        ] {
            check_ccw_covered(label, &exec, mode);
        }
        check_races_survive(label, &exec);
    }
}

/// The E9 "pairing pitfall" family (same shape as `eo-bench`'s; rebuilt
/// here because the bench crate sits above this one).
fn pitfall_exec(decoys: usize) -> ProgramExecution {
    let mut b = eo_lang::ProgramBuilder::new();
    let s = b.semaphore("s");
    let x = b.variable("x");
    let w = b.process("writer");
    b.compute_rw(w, &[], &[x], "write_x");
    b.sem_v(w, s);
    for k in 0..decoys {
        let d = b.process(&format!("decoy_{k}"));
        b.sem_v(d, s);
    }
    let r = b.process("reader");
    b.sem_p(r, s);
    b.compute_rw(r, &[x], &[], "read_x");
    let program = b.build();
    let trace = eo_lang::run_to_trace(&program, &mut eo_lang::Scheduler::deterministic())
        .expect("pitfall program cannot deadlock");
    exec_of(trace)
}

#[test]
fn the_e9_pitfall_family_is_covered() {
    for decoys in [1usize, 2, 4] {
        let label = format!("pitfall-{decoys}");
        let exec = pitfall_exec(decoys);
        check_ccw_covered(&label, &exec, FeasibilityMode::IgnoreDependences);
        check_races_survive(&label, &exec);
    }
}

#[test]
fn the_e9_random_family_is_covered() {
    for seed in 0..8u64 {
        let mut spec = WorkloadSpec::small_semaphore(seed);
        spec.variables = 3;
        spec.write_fraction = 0.5;
        let exec = exec_of(generate_trace(&spec, 100));
        let label = format!("e9-random-{seed}");
        for mode in [
            FeasibilityMode::PreserveDependences,
            FeasibilityMode::IgnoreDependences,
        ] {
            check_ccw_covered(&label, &exec, mode);
        }
        check_races_survive(&label, &exec);
    }
}

#[test]
fn a_hundred_seeded_generated_programs_are_covered() {
    // 50 semaphore-style + 50 event-style seeds; the dependence-ignoring
    // check subsumes the dependence-preserving one (see module docs).
    for seed in 0..50u64 {
        let sem = exec_of(generate_trace(&WorkloadSpec::small_semaphore(seed), 100));
        check_ccw_covered(
            &format!("gen-sem-{seed}"),
            &sem,
            FeasibilityMode::IgnoreDependences,
        );
        let ev = exec_of(generate_trace(&WorkloadSpec::small_events(seed), 100));
        check_ccw_covered(
            &format!("gen-ev-{seed}"),
            &ev,
            FeasibilityMode::IgnoreDependences,
        );
        // The race-side check issues one engine query per conflicting
        // pair; sampling every fifth seed keeps the sweep fast while
        // still crossing 20 distinct programs.
        if seed % 5 == 0 {
            check_races_survive(&format!("gen-sem-{seed}"), &sem);
            check_races_survive(&format!("gen-ev-{seed}"), &ev);
        }
    }
}
