//! The recording layer: span guards, counters, gauges, per-thread buffers.
//!
//! Design constraints (DESIGN.md §9):
//!
//! - **Zero cost when disabled.** Without the `enabled` cargo feature every
//!   entry point below is an empty `#[inline(always)]` function and
//!   [`SpanGuard`] is a unit type with no `Drop` impl, so instrumented code
//!   compiles to exactly what it would be with the probes deleted.
//! - **Lock-free recording.** With the feature on, events go into a
//!   thread-local `Vec` — no atomics or locks on the hot path beyond one
//!   relaxed load of the global "recording" flag. Buffers are flushed into a
//!   global sink when a thread exits (the engine's worker pool uses scoped
//!   threads, so workers flush before results are returned) and the calling
//!   thread is flushed explicitly by [`finish`].
//! - **Run-scoped.** [`start`] clears the sink and arms recording;
//!   [`finish`] disarms it and returns everything recorded in between.

/// One raw event as recorded on some thread, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span was opened.
    Begin {
        /// Static span name, e.g. `"engine.build_graph"`.
        name: &'static str,
        /// Microseconds since the process-wide recording epoch.
        t_us: u64,
    },
    /// The innermost open span on this thread was closed.
    End {
        /// Microseconds since the process-wide recording epoch.
        t_us: u64,
    },
    /// A monotonically accumulating count (summed across threads).
    Counter {
        /// Metric name, e.g. `"engine.states_interned"`.
        name: &'static str,
        /// Amount to add.
        delta: u64,
    },
    /// A point-in-time integer measurement (last write wins).
    GaugeI {
        /// Metric name.
        name: &'static str,
        /// Recorded value.
        value: i64,
    },
    /// A point-in-time float measurement (last write wins).
    GaugeF {
        /// Metric name.
        name: &'static str,
        /// Recorded value.
        value: f64,
    },
    /// A point-in-time string measurement (last write wins).
    GaugeS {
        /// Metric name.
        name: &'static str,
        /// Recorded value.
        value: String,
    },
}

/// All events recorded by a single thread, in recording order.
#[derive(Debug, Clone, Default)]
pub struct ThreadLog {
    /// Dense id assigned at first recording on the thread.
    pub tid: u64,
    /// The thread's events in program order.
    pub events: Vec<Event>,
}

/// Everything recorded between [`start`] and [`finish`].
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// Per-thread logs, sorted by `tid` for determinism.
    pub threads: Vec<ThreadLog>,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Event, ThreadLog};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    pub(super) static RECORDING: AtomicBool = AtomicBool::new(false);
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static SINK: Mutex<Vec<ThreadLog>> = Mutex::new(Vec::new());

    struct LocalBuf {
        tid: u64,
        events: Vec<Event>,
    }

    impl Drop for LocalBuf {
        fn drop(&mut self) {
            flush_into_sink(self.tid, &mut self.events);
        }
    }

    fn flush_into_sink(tid: u64, events: &mut Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let events = std::mem::take(events);
        // A poisoned sink only loses telemetry, never affects the engine.
        if let Ok(mut sink) = SINK.lock() {
            sink.push(ThreadLog { tid, events });
        }
    }

    thread_local! {
        static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
        });
    }

    pub(super) fn now_us() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }

    pub(super) fn push(ev: Event) {
        // try_with: during thread teardown the TLS slot may already be gone;
        // dropping the event is the only sound option then.
        let _ = LOCAL.try_with(|buf| buf.borrow_mut().events.push(ev));
    }

    pub(super) fn begin_run() {
        // Pin the epoch before arming so the first event never precedes it.
        let _ = EPOCH.get_or_init(Instant::now);
        if let Ok(mut sink) = SINK.lock() {
            sink.clear();
        }
        // Discard anything buffered on this thread from before the run.
        let _ = LOCAL.try_with(|buf| buf.borrow_mut().events.clear());
        RECORDING.store(true, Ordering::SeqCst);
    }

    pub(super) fn end_run() -> Vec<ThreadLog> {
        RECORDING.store(false, Ordering::SeqCst);
        let _ = LOCAL.try_with(|buf| {
            let mut buf = buf.borrow_mut();
            let tid = buf.tid;
            flush_into_sink(tid, &mut buf.events);
        });
        let mut threads = SINK
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default();
        threads.sort_by_key(|t| t.tid);
        threads
    }
}

// ---------------------------------------------------------------------------
// Public API, `enabled` build.
// ---------------------------------------------------------------------------

/// RAII guard closing a span when dropped. Created by [`span`].
#[cfg(feature = "enabled")]
#[must_use = "dropping the guard immediately records an empty span"]
pub struct SpanGuard {
    active: bool,
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            imp::push(Event::End {
                t_us: imp::now_us(),
            });
        }
    }
}

#[cfg(feature = "enabled")]
impl SpanGuard {
    /// Closes the span now, before the end of scope (consumes the guard).
    pub fn end(self) {}
}

/// Whether a recording run is currently active.
///
/// Instrumentation sites use this to skip *computing* a metric whose
/// computation itself is not free (e.g. an O(states) scan).
#[cfg(feature = "enabled")]
#[inline]
pub fn recording() -> bool {
    imp::RECORDING.load(std::sync::atomic::Ordering::Relaxed)
}

/// Starts a recording run: clears the sink and arms event capture.
#[cfg(feature = "enabled")]
pub fn start() {
    imp::begin_run();
}

/// Stops the current run and returns everything recorded since [`start`].
///
/// Flushes the calling thread's buffer; other threads contribute their
/// buffers when they exit (worker threads in the engine are scoped, so they
/// have always exited by the time results are available to call this).
#[cfg(feature = "enabled")]
pub fn finish() -> RunData {
    RunData {
        threads: imp::end_run(),
    }
}

/// Opens a span named `name`; the span closes when the guard drops.
#[cfg(feature = "enabled")]
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !recording() {
        return SpanGuard { active: false };
    }
    imp::push(Event::Begin {
        name,
        t_us: imp::now_us(),
    });
    SpanGuard { active: true }
}

/// Adds `delta` to the counter `name` (summed across all threads).
#[cfg(feature = "enabled")]
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if recording() {
        imp::push(Event::Counter { name, delta });
    }
}

/// Records an integer gauge (last write wins).
#[cfg(feature = "enabled")]
#[inline]
pub fn gauge(name: &'static str, value: i64) {
    if recording() {
        imp::push(Event::GaugeI { name, value });
    }
}

/// Records a float gauge (last write wins).
#[cfg(feature = "enabled")]
#[inline]
pub fn gauge_f64(name: &'static str, value: f64) {
    if recording() {
        imp::push(Event::GaugeF { name, value });
    }
}

/// Records a string gauge (last write wins).
#[cfg(feature = "enabled")]
#[inline]
pub fn gauge_str(name: &'static str, value: &str) {
    if recording() {
        imp::push(Event::GaugeS {
            name,
            value: value.to_owned(),
        });
    }
}

// ---------------------------------------------------------------------------
// Public API, disabled build: every function is an inlineable no-op and the
// guard has no `Drop` impl, so instrumentation vanishes entirely.
// ---------------------------------------------------------------------------

/// RAII guard closing a span when dropped (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[must_use = "binding the guard gives the span its extent"]
pub struct SpanGuard;

#[cfg(not(feature = "enabled"))]
impl SpanGuard {
    /// Closes the span now (no-op: `enabled` is off).
    #[inline(always)]
    pub fn end(self) {}
}

/// Whether a recording run is currently active (always `false` here).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn recording() -> bool {
    false
}

/// Starts a recording run (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn start() {}

/// Stops the current run (no-op: `enabled` is off; always empty).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn finish() -> RunData {
    RunData::default()
}

/// Opens a span (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Adds to a counter (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn counter(_name: &'static str, _delta: u64) {}

/// Records an integer gauge (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn gauge(_name: &'static str, _value: i64) {}

/// Records a float gauge (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn gauge_f64(_name: &'static str, _value: f64) {}

/// Records a string gauge (no-op: `enabled` is off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn gauge_str(_name: &'static str, _value: &str) {}
