//! Targeted witness queries with early exit.
//!
//! Deciding a *single* relation instance (e.g. "could `b` have happened
//! before `a`?" — the NP-hard question of Theorem 2) does not require
//! materializing all of F(P): a depth-first search over the cut lattice
//! can stop at the first witness. These queries power the theorem
//! benchmarks and give the engine its decision-procedure face:
//! satisfiability of the reduced formula is literally read off
//! [`witness_before`]'s answer.
//!
//! All searches memoize on [`MachState`]; the executed-set of a state is a
//! function of the state, so plain state memoization is sound.

use crate::ctx::SearchCtx;
use eo_model::{EventId, MachState};
use eo_relations::fxhash::FxHashSet;

/// Returns a complete feasible schedule, if one exists, from `st` onward
/// (appending to nothing — the returned suffix starts at `st`). Memoizes
/// failures in `dead`.
fn complete_from(
    ctx: &SearchCtx<'_>,
    st: &MachState,
    dead: &mut FxHashSet<MachState>,
) -> Option<Vec<EventId>> {
    if ctx.is_complete(st) {
        return Some(Vec::new());
    }
    if dead.contains(st) {
        return None;
    }
    for (p, e) in ctx.co_enabled(st) {
        let mut st2 = st.clone();
        ctx.step(&mut st2, p);
        if let Some(mut rest) = complete_from(ctx, &st2, dead) {
            rest.insert(0, e);
            return Some(rest);
        }
    }
    dead.insert(st.clone());
    None
}

/// Searches for a complete feasible schedule in which `first` executes
/// strictly before `second`, returning it as a witness. `None` means no
/// feasible execution orders them that way — i.e. `second` MHB `first`
/// (when `first ≠ second`).
pub fn witness_before(
    ctx: &SearchCtx<'_>,
    first: EventId,
    second: EventId,
) -> Option<Vec<EventId>> {
    assert_ne!(first, second, "witness_before needs two distinct events");
    let mut visited: FxHashSet<MachState> = FxHashSet::default();
    let mut dead: FxHashSet<MachState> = FxHashSet::default();
    let mut prefix: Vec<EventId> = Vec::new();

    return dfs(
        ctx,
        &ctx.initial_state(),
        first,
        second,
        &mut visited,
        &mut dead,
        &mut prefix,
    )
    .then_some(prefix);

    fn dfs(
        ctx: &SearchCtx<'_>,
        st: &MachState,
        first: EventId,
        second: EventId,
        visited: &mut FxHashSet<MachState>,
        dead: &mut FxHashSet<MachState>,
        prefix: &mut Vec<EventId>,
    ) -> bool {
        let machine = ctx.machine();
        let first_done = machine.executed(st, first);
        let second_done = machine.executed(st, second);
        if second_done && !first_done {
            return false; // this path already ordered them the wrong way
        }
        if first_done && !second_done {
            // Any completion now places `first` before `second`.
            if let Some(rest) = complete_from(ctx, st, dead) {
                prefix.extend(rest);
                return true;
            }
            return false;
        }
        // Neither executed yet (both-done is unreachable: paths pass
        // through a one-done state first, handled above).
        if !visited.insert(st.clone()) {
            return false;
        }
        for (p, e) in ctx.co_enabled(st) {
            let mut st2 = st.clone();
            ctx.step(&mut st2, p);
            prefix.push(e);
            if dfs(ctx, &st2, first, second, visited, dead, prefix) {
                return true;
            }
            prefix.pop();
        }
        false
    }
}

/// Decides `a MHB b` by witness search: true iff **no** feasible schedule
/// runs `b` before `a`.
pub fn must_happen_before(ctx: &SearchCtx<'_>, a: EventId, b: EventId) -> bool {
    a != b && witness_before(ctx, b, a).is_none()
}

/// Decides `a CHB b` by witness search: true iff some feasible schedule
/// runs `a` before `b`.
pub fn could_happen_before(ctx: &SearchCtx<'_>, a: EventId, b: EventId) -> bool {
    a != b && witness_before(ctx, a, b).is_some()
}

/// Searches for a feasible execution in which `a` and `b` are
/// simultaneously ready to execute (and running both keeps completion
/// reachable). Returns the schedule prefix up to that state.
///
/// This decides the operational could-be-concurrent relation; `None`
/// means the pair is must-ordered in the operational sense.
pub fn witness_overlap(ctx: &SearchCtx<'_>, a: EventId, b: EventId) -> Option<Vec<EventId>> {
    assert_ne!(a, b, "witness_overlap needs two distinct events");
    let mut visited: FxHashSet<MachState> = FxHashSet::default();
    let mut dead: FxHashSet<MachState> = FxHashSet::default();
    let mut prefix: Vec<EventId> = Vec::new();
    return dfs(
        ctx,
        &ctx.initial_state(),
        a,
        b,
        &mut visited,
        &mut dead,
        &mut prefix,
    )
    .then_some(prefix);

    fn both_fire_completably(
        ctx: &SearchCtx<'_>,
        st: &MachState,
        x: EventId,
        y: EventId,
        dead: &mut FxHashSet<MachState>,
    ) -> bool {
        let enabled = ctx.co_enabled(st);
        let proc_of = |e: EventId| enabled.iter().find(|&&(_, ev)| ev == e).map(|&(p, _)| p);
        let (Some(px), Some(py)) = (proc_of(x), proc_of(y)) else {
            return false;
        };
        let mut st2 = st.clone();
        ctx.step(&mut st2, px);
        if ctx.co_enabled(&st2).iter().any(|&(p, _)| p == py) {
            ctx.step(&mut st2, py);
            if complete_from(ctx, &st2, dead).is_some() {
                return true;
            }
        }
        false
    }

    fn dfs(
        ctx: &SearchCtx<'_>,
        st: &MachState,
        a: EventId,
        b: EventId,
        visited: &mut FxHashSet<MachState>,
        dead: &mut FxHashSet<MachState>,
        prefix: &mut Vec<EventId>,
    ) -> bool {
        let machine = ctx.machine();
        if machine.executed(st, a) || machine.executed(st, b) {
            return false; // overlap must be witnessed before either runs
        }
        if !visited.insert(st.clone()) {
            return false;
        }
        if both_fire_completably(ctx, st, a, b, dead) || both_fire_completably(ctx, st, b, a, dead)
        {
            return true;
        }
        for (p, e) in ctx.co_enabled(st) {
            let mut st2 = st.clone();
            ctx.step(&mut st2, p);
            prefix.push(e);
            if dfs(ctx, &st2, a, b, visited, dead, prefix) {
                return true;
            }
            prefix.pop();
        }
        false
    }
}

/// Decides operational `a CCW b` by witness search.
pub fn could_be_concurrent(ctx: &SearchCtx<'_>, a: EventId, b: EventId) -> bool {
    a != b && witness_overlap(ctx, a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FeasibilityMode;
    use crate::statespace::explore_statespace;
    use eo_model::fixtures;

    fn ctx_of(exec: &eo_model::ProgramExecution) -> SearchCtx<'_> {
        SearchCtx::new(exec, FeasibilityMode::PreserveDependences)
    }

    #[test]
    fn witness_is_a_valid_schedule() {
        let (trace, a, b) = fixtures::independent_pair();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        let w = witness_before(&ctx, b, a).expect("b can go first");
        assert_eq!(w.len(), exec.n_events());
        assert!(ctx.machine().replay(&w).is_ok(), "witness replays cleanly");
        let pos = |e: EventId| w.iter().position(|&x| x == e).unwrap();
        assert!(pos(b) < pos(a));
    }

    #[test]
    fn handshake_mhb_via_witness() {
        let (trace, ids) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        assert!(must_happen_before(&ctx, ids.v, ids.p));
        assert!(!must_happen_before(&ctx, ids.after_v, ids.after_p));
        assert!(could_happen_before(&ctx, ids.after_p, ids.after_v));
    }

    #[test]
    fn figure1_mhb_via_witness() {
        let (trace, ids) = fixtures::figure1();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        assert!(must_happen_before(&ctx, ids.post_left, ids.post_right));
        assert!(witness_before(&ctx, ids.post_right, ids.post_left).is_none());
    }

    #[test]
    fn overlap_witness_prefix_replays() {
        let (trace, ids) = fixtures::fork_join_diamond();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        let prefix = witness_overlap(&ctx, ids.left, ids.right).expect("workers overlap");
        // The prefix must be a valid partial schedule: replay it step by
        // step on the machine.
        let mut st = ctx.initial_state();
        for &e in &prefix {
            let p = exec.event(e).process;
            assert!(ctx.co_enabled(&st).iter().any(|&(_, ev)| ev == e));
            ctx.step(&mut st, p);
        }
        // At the witness state both events are co-enabled.
        let enabled: Vec<EventId> = ctx.co_enabled(&st).iter().map(|&(_, e)| e).collect();
        assert!(enabled.contains(&ids.left) && enabled.contains(&ids.right));
    }

    #[test]
    fn no_overlap_for_forced_pairs() {
        let (trace, ids) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        assert!(!could_be_concurrent(&ctx, ids.v, ids.p));
        assert!(could_be_concurrent(&ctx, ids.after_v, ids.after_p));
    }

    #[test]
    fn queries_agree_with_statespace_on_fixtures() {
        for (trace, _x, _y) in [
            fixtures::independent_pair(),
            fixtures::shared_counter_race(),
        ] {
            let exec = trace.to_execution().unwrap();
            let ctx = ctx_of(&exec);
            let space = explore_statespace(&ctx, 1 << 20).unwrap();
            let n = exec.n_events();
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let (ea, eb) = (EventId::new(a), EventId::new(b));
                    assert_eq!(
                        could_happen_before(&ctx, ea, eb),
                        space.chb.contains(a, b),
                        "chb({a},{b})"
                    );
                    assert_eq!(
                        could_be_concurrent(&ctx, ea, eb),
                        space.overlap.contains(a, b),
                        "overlap({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn clear_deadlock_paths_do_not_fool_witness_search() {
        let (trace, ids) = fixtures::post_wait_clear_chain();
        let exec = trace.to_execution().unwrap();
        let ctx = ctx_of(&exec);
        let post1 = ids[0];
        let wait1 = ids[1];
        // Running the wait before its post is impossible in a *complete*
        // execution.
        assert!(must_happen_before(&ctx, post1, wait1));
    }
}
