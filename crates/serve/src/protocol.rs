//! The serve wire protocol: JSON requests in, JSON responses out.
//!
//! Requests are newline-delimited JSON objects (or one JSON array of
//! such objects, as accepted by `eo serve --batch`):
//!
//! ```json
//! {"id": 1, "op": "mhb", "a": 0, "b": 3}
//! {"id": 2, "op": "witness_overlap", "a": "p1.w", "b": "p2.w"}
//! {"id": 3, "op": "summary"}
//! {"id": 4, "op": "races"}
//! ```
//!
//! `op` is one of `mhb`, `chb`, `ccw`, `witness_before`,
//! `witness_overlap`, `summary`, `races`. Event references `a` / `b` are
//! either zero-based event indices or event label strings. `id` is echoed
//! back verbatim (any JSON value) so clients can correlate out-of-order
//! processing; it is optional.
//!
//! Every response is one JSON object carrying the current `SCHEMA_VERSION` and a
//! `status` of `"exact"` (the answer is exact), `"degraded"` (a budget
//! stopped the search; `cause` says which bound), or `"error"` (the
//! request itself was malformed). Exact responses also say whether they
//! were served from a cross-query cache (`cached`) or decided by the
//! polynomial prefilter (`prefilter`).

use crate::session::SessionReply;
use eo_engine::{Answer, EngineError, Query, QueryBackend};
use eo_model::{EventId, ProgramExecution};
use eo_obs::json::{self, Value};
use eo_obs::report::SCHEMA_VERSION;
use eo_race::Race;

/// One operation a serve session can perform: an engine [`Query`] or the
/// serve-level race report (races are a derived analysis over CCW, not an
/// engine query, so they live in this layer's vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeOp {
    /// A point query answered by the engine/session.
    Query(Query),
    /// The exact race report for the whole program.
    Races,
}

impl ServeOp {
    /// The protocol `op` string for this operation.
    pub fn name(&self) -> &'static str {
        match self {
            ServeOp::Query(q) => q.op_name(),
            ServeOp::Races => "races",
        }
    }
}

/// One parsed request line: the echoed `id` (if any) plus either the
/// operation or a parse error to report back.
#[derive(Clone, Debug)]
pub struct ParsedRequest {
    /// The client's correlation id, echoed back verbatim.
    pub id: Option<Value>,
    /// The operation, or why the request line was rejected.
    pub op: Result<ServeOp, String>,
    /// Where the request came from in its batch: the 1-based input line
    /// for NDJSON streams, the 1-based entry index for `--batch` arrays.
    /// Error responses echo it (`"line"`) so a client staring at a
    /// malformed batch knows *which* line to fix; exact responses don't
    /// carry it (the `id` echo already correlates those).
    pub line: Option<usize>,
}

/// Parses a request stream: newline-delimited JSON objects, or a single
/// JSON array of request objects. Blank lines are skipped. Malformed
/// entries become `Err` items (one response is still owed per request,
/// carrying the offending line number), never a whole-batch failure —
/// requests after a malformed line are still parsed and answered.
pub fn parse_requests(exec: &ProgramExecution, input: &str) -> Vec<ParsedRequest> {
    let trimmed = input.trim_start();
    if trimmed.starts_with('[') {
        return match json::parse(trimmed) {
            Ok(Value::Arr(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| parse_one(exec, v, Some(i + 1)))
                .collect(),
            Ok(_) => vec![ParsedRequest {
                id: None,
                op: Err("batch file must be a JSON array of request objects".to_owned()),
                line: Some(1),
            }],
            Err(e) => vec![ParsedRequest {
                id: None,
                op: Err(format!("invalid batch JSON: {e}")),
                line: Some(1),
            }],
        };
    }
    input
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| match json::parse(line) {
            Ok(v) => parse_one(exec, &v, Some(i + 1)),
            Err(e) => ParsedRequest {
                id: None,
                op: Err(format!("invalid request JSON: {e}")),
                line: Some(i + 1),
            },
        })
        .collect()
}

/// Parses one request value (already JSON-decoded) with its batch
/// position. The network server uses this directly: each frame is one
/// request, and `line` is the connection's frame sequence number.
pub fn parse_one(exec: &ProgramExecution, v: &Value, line: Option<usize>) -> ParsedRequest {
    let id = v.get("id").cloned();
    ParsedRequest {
        id,
        op: parse_op(exec, v),
        line,
    }
}

fn parse_op(exec: &ProgramExecution, v: &Value) -> Result<ServeOp, String> {
    if !matches!(v, Value::Obj(_)) {
        return Err("each request must be a JSON object".to_owned());
    }
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "request needs a string \"op\" field".to_owned())?;
    let pair = |distinct: bool| -> Result<(EventId, EventId), String> {
        let a = event_ref(exec, v, "a")?;
        let b = event_ref(exec, v, "b")?;
        if distinct && a == b {
            return Err(format!(
                "op \"{op}\" needs two distinct events, got \"a\" == \"b\""
            ));
        }
        Ok((a, b))
    };
    let q = match op {
        "mhb" => {
            let (a, b) = pair(false)?;
            Query::Mhb { a, b }
        }
        "chb" => {
            let (a, b) = pair(false)?;
            Query::Chb { a, b }
        }
        "ccw" => {
            let (a, b) = pair(false)?;
            Query::Ccw { a, b }
        }
        "witness_before" => {
            let (first, second) = pair(true)?;
            Query::WitnessBefore { first, second }
        }
        "witness_overlap" => {
            let (a, b) = pair(true)?;
            Query::WitnessOverlap { a, b }
        }
        "summary" => Query::Summary,
        "races" => return Ok(ServeOp::Races),
        other => {
            return Err(format!(
                "unknown op {other:?} (expected mhb, chb, ccw, witness_before, \
                 witness_overlap, summary, or races)"
            ))
        }
    };
    Ok(ServeOp::Query(q))
}

/// Resolves an event reference: a zero-based index or a label string.
fn event_ref(exec: &ProgramExecution, v: &Value, key: &str) -> Result<EventId, String> {
    let n = exec.n_events();
    match v.get(key) {
        None => Err(format!("op needs an event reference in \"{key}\"")),
        Some(Value::Str(label)) => exec
            .event_labeled(label)
            .ok_or_else(|| format!("no event labeled {label:?}")),
        Some(value) => match value.as_i64() {
            Some(i) if i >= 0 && (i as usize) < n => Ok(EventId::new(i as usize)),
            Some(i) => Err(format!(
                "event index {i} out of range (program has {n} events)"
            )),
            None => Err(format!(
                "\"{key}\" must be an event index or a label string"
            )),
        },
    }
}

fn base_fields(id: &Option<Value>, op: &str, status: &str) -> Vec<(String, Value)> {
    vec![
        (
            "schema_version".to_owned(),
            Value::Num(SCHEMA_VERSION as f64),
        ),
        ("id".to_owned(), id.clone().unwrap_or(Value::Null)),
        ("op".to_owned(), Value::Str(op.to_owned())),
        ("status".to_owned(), Value::Str(status.to_owned())),
    ]
}

fn witness_value(witness: &Option<Vec<EventId>>) -> Value {
    match witness {
        None => Value::Null,
        Some(schedule) => Value::Arr(
            schedule
                .iter()
                .map(|e| Value::Num(e.index() as f64))
                .collect(),
        ),
    }
}

/// Renders one exact session reply as a response document.
pub fn render_reply(id: &Option<Value>, reply: &SessionReply) -> String {
    let mut fields = base_fields(id, reply.response.query.op_name(), "exact");
    fields.push(("cached".to_owned(), Value::Bool(reply.cached)));
    fields.push((
        "prefilter".to_owned(),
        Value::Bool(reply.prefilter || reply.static_prefilter),
    ));
    // Additive disposition marker: present only when the whole-program
    // static tier answered, so default-config responses are byte-stable.
    if reply.static_prefilter {
        fields.push(("prefilter_tier".to_owned(), Value::Str("static".to_owned())));
    }
    // Same additive pattern for the non-default backend: `--backend sat`
    // sessions tag every reply, default sessions stay byte-stable.
    if reply.backend != QueryBackend::Exact {
        fields.push((
            "backend".to_owned(),
            Value::Str(reply.backend.label().to_owned()),
        ));
    }
    // Additive engine-config echo: sessions opened from an explicit
    // `EngineConfig` (`--config`) tag every reply with the non-default
    // fields; default sessions carry no `config` object at all.
    if !reply.config_echo.is_empty() {
        fields.push((
            "config".to_owned(),
            Value::Obj(
                reply
                    .config_echo
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), Value::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    // Whole-program summary replies also echo the primitive classes the
    // analyzed trace uses (always the core calculus — surface primitives
    // reach the engine desugared).
    if !reply.primitives.is_empty() {
        fields.push((
            "primitives".to_owned(),
            Value::Arr(
                reply
                    .primitives
                    .iter()
                    .map(|p| Value::Str((*p).to_owned()))
                    .collect(),
            ),
        ));
    }
    match &reply.response.answer {
        Answer::Decided(v) => fields.push(("answer".to_owned(), Value::Bool(*v))),
        Answer::Witness(w) => fields.push(("witness".to_owned(), witness_value(w))),
        Answer::Summary(s) => {
            let mhb_pairs = s.mhb_relation().pair_count();
            fields.push((
                "summary".to_owned(),
                Value::Obj(vec![
                    ("events".to_owned(), Value::Num(s.n_events() as f64)),
                    ("classes".to_owned(), Value::Num(s.class_count() as f64)),
                    ("states".to_owned(), Value::Num(s.state_count() as f64)),
                    ("mhb_pairs".to_owned(), Value::Num(mhb_pairs as f64)),
                    (
                        "chb_pairs".to_owned(),
                        Value::Num(s.chb_relation().pair_count() as f64),
                    ),
                    (
                        "ccw_pairs".to_owned(),
                        Value::Num(s.ccw_relation().pair_count() as f64),
                    ),
                ]),
            ));
        }
        other => fields.push(("answer_debug".to_owned(), Value::Str(format!("{other:?}")))),
    }
    Value::Obj(fields).to_json()
}

/// Renders the race report response.
pub fn render_races(id: &Option<Value>, races: &[Race], cached: bool) -> String {
    let mut fields = base_fields(id, "races", "exact");
    fields.push(("cached".to_owned(), Value::Bool(cached)));
    fields.push(("prefilter".to_owned(), Value::Bool(false)));
    fields.push(("count".to_owned(), Value::Num(races.len() as f64)));
    fields.push((
        "races".to_owned(),
        Value::Arr(
            races
                .iter()
                .map(|r| {
                    Value::Obj(vec![
                        ("first".to_owned(), Value::Num(r.first.index() as f64)),
                        ("second".to_owned(), Value::Num(r.second.index() as f64)),
                    ])
                })
                .collect(),
        ),
    ));
    Value::Obj(fields).to_json()
}

/// Renders a degraded response: the budget stopped this query's search.
pub fn render_degraded(id: &Option<Value>, op: &str, error: &EngineError) -> String {
    let mut fields = base_fields(id, op, "degraded");
    fields.push((
        "cause".to_owned(),
        Value::Str(error.cause_label().to_owned()),
    ));
    fields.push(("error".to_owned(), Value::Str(error.to_string())));
    Value::Obj(fields).to_json()
}

/// Renders a request-level error response (malformed request, unknown
/// event, worker failure).
pub fn render_error(id: &Option<Value>, message: &str) -> String {
    render_error_at(id, message, None)
}

/// [`render_error`] with the offending batch position: parse failures
/// carry the 1-based input line (NDJSON) or entry index (`--batch`
/// array) as `"line"`, so `status:"error"` responses are attributable
/// even when the malformed line had no parseable `id`. The field is
/// additive — responses without a known position render exactly as
/// before.
pub fn render_error_at(id: &Option<Value>, message: &str, line: Option<usize>) -> String {
    let mut fields = base_fields(id, "error", "error");
    if let Some(n) = line {
        fields.push(("line".to_owned(), Value::Num(n as f64)));
    }
    fields.push(("error".to_owned(), Value::Str(message.to_owned())));
    Value::Obj(fields).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eo_model::{fixtures, ProgramExecution};

    fn figure1() -> ProgramExecution {
        let (trace, _) = fixtures::figure1();
        ProgramExecution::from_trace(trace).expect("fixture is valid")
    }

    #[test]
    fn parses_ndjson_with_indices_labels_and_errors() {
        let exec = figure1();
        let input = "\n{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                     {\"id\": 2, \"op\": \"witness_before\", \"a\": 3, \"b\": 3}\n\
                     {\"op\": \"races\"}\n\
                     not json\n";
        let reqs = parse_requests(&exec, input);
        assert_eq!(reqs.len(), 4);
        assert_eq!(
            reqs[0].op,
            Ok(ServeOp::Query(Query::Mhb {
                a: EventId::new(0),
                b: EventId::new(1)
            }))
        );
        assert!(reqs[1].op.as_ref().is_err_and(|e| e.contains("distinct")));
        assert_eq!(reqs[2].op, Ok(ServeOp::Races));
        assert!(reqs[2].id.is_none());
        assert!(reqs[3].op.is_err());
    }

    #[test]
    fn parses_a_json_array_batch() {
        let exec = figure1();
        let input = r#"[{"id": "x", "op": "summary"}, {"op": "ccw", "a": 90, "b": 0}]"#;
        let reqs = parse_requests(&exec, input);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].op, Ok(ServeOp::Query(Query::Summary)));
        assert_eq!(reqs[0].id, Some(Value::Str("x".to_owned())));
        assert!(reqs[1]
            .op
            .as_ref()
            .is_err_and(|e| e.contains("out of range")));
    }

    #[test]
    fn parse_positions_point_at_the_offending_input_line() {
        let exec = figure1();
        // The blank first line still counts: positions are raw 1-based
        // input lines, exactly what an editor shows.
        let input = "\n{\"id\": 1, \"op\": \"mhb\", \"a\": 0, \"b\": 1}\n\
                     not json\n\
                     \n\
                     {\"op\": \"nope\"}\n";
        let reqs = parse_requests(&exec, input);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].line, Some(2));
        assert_eq!(reqs[1].line, Some(3));
        assert_eq!(reqs[2].line, Some(5));

        let array = parse_requests(&exec, r#"[{"op": "summary"}, {"op": "nope"}]"#);
        assert_eq!(array[0].line, Some(1), "array entries are 1-based indices");
        assert_eq!(array[1].line, Some(2));

        let rendered = render_error_at(&None, "bad", Some(3));
        let v = eo_obs::json::parse(&rendered).expect("valid JSON");
        assert_eq!(v.get("line").and_then(Value::as_i64), Some(3));
        let plain = render_error(&None, "bad");
        assert!(
            eo_obs::json::parse(&plain)
                .expect("valid JSON")
                .get("line")
                .is_none(),
            "positionless errors render exactly as before"
        );
    }

    #[test]
    fn responses_carry_schema_version_and_echo_ids() {
        let rendered = render_error(&Some(Value::Num(7.0)), "boom");
        let v = eo_obs::json::parse(&rendered).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(Value::as_i64),
            Some(eo_obs::report::SCHEMA_VERSION)
        );
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom"));
    }
}
