//! The unified query surface of the engine.
//!
//! Every point question the engine answers — the decision forms of MHB /
//! CHB / CCW, the two witness searches, and the full six-relation summary
//! — is one variant of [`Query`], answered by
//! [`ExactEngine::query`](crate::ExactEngine::query) with a [`Response`].
//! One entry point means one place to budget, observe, cache, and
//! serialize: the serving layer (`eo-serve`) speaks this vocabulary over
//! the wire, and the legacy per-relation methods on
//! [`ExactEngine`](crate::ExactEngine) are thin wrappers over it.
//!
//! Engine construction is likewise collapsed into one bag of options:
//! [`EngineOptions`] carries the feasibility mode, the [`Limits`], and an
//! optional supervisor [`Budget`], with `Default` meaning "the paper's
//! F(P), default caps, no supervisor".

use crate::budget::Budget;
use crate::ctx::FeasibilityMode;
use crate::engine::Limits;
use crate::equiv::EquivStrategy;
use crate::summary::OrderingSummary;
use eo_model::EventId;

/// One point question about a program execution.
///
/// `Query` is `Hash + Eq`, so it can key result caches directly; the
/// serving layer relies on this. Non-exhaustive: the vocabulary grows
/// (downstream matches need a wildcard arm).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Query {
    /// Does `a` must-have-happened-before `b` — does every feasible
    /// execution run `a` before `b`?
    Mhb {
        /// First event of the pair.
        a: EventId,
        /// Second event of the pair.
        b: EventId,
    },
    /// Could `a` have happened before `b` — does some feasible execution
    /// run `a` before `b`?
    Chb {
        /// First event of the pair.
        a: EventId,
        /// Second event of the pair.
        b: EventId,
    },
    /// Could `a` and `b` have executed concurrently (operational
    /// reading)? Symmetric: `Ccw{a,b}` and `Ccw{b,a}` have equal answers.
    Ccw {
        /// First event of the pair.
        a: EventId,
        /// Second event of the pair.
        b: EventId,
    },
    /// A complete feasible schedule running `first` strictly before
    /// `second`, if one exists (the NP witness of Theorem 2).
    WitnessBefore {
        /// The event that must come first in the witness.
        first: EventId,
        /// The event that must come later.
        second: EventId,
    },
    /// A feasible schedule prefix reaching a state where both events are
    /// simultaneously ready (and completion stays reachable), if one
    /// exists.
    WitnessOverlap {
        /// First event of the pair.
        a: EventId,
        /// Second event of the pair.
        b: EventId,
    },
    /// The full six-relation [`OrderingSummary`].
    Summary,
}

impl Query {
    /// A short lowercase label for this query kind (metrics keys, CLI
    /// protocol `op` fields, log lines).
    pub fn op_name(&self) -> &'static str {
        match self {
            Query::Mhb { .. } => "mhb",
            Query::Chb { .. } => "chb",
            Query::Ccw { .. } => "ccw",
            Query::WitnessBefore { .. } => "witness_before",
            Query::WitnessOverlap { .. } => "witness_overlap",
            Query::Summary => "summary",
        }
    }
}

/// The payload of a [`Response`], shaped by the query kind.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Answer {
    /// A decided relation instance ([`Query::Mhb`] / [`Query::Chb`] /
    /// [`Query::Ccw`]).
    Decided(bool),
    /// A witness schedule (or prefix), or `None` when no witness exists —
    /// which is itself an exact answer, not a failure.
    Witness(Option<Vec<EventId>>),
    /// The full summary ([`Query::Summary`]). Boxed: the summary holds
    /// five relation matrices and would dominate the enum's size.
    Summary(Box<OrderingSummary>),
}

impl Answer {
    /// The decided boolean, if this is a [`Answer::Decided`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Decided(b) => Some(*b),
            _ => None,
        }
    }

    /// The witness schedule, if this is a [`Answer::Witness`].
    pub fn as_witness(&self) -> Option<&Option<Vec<EventId>>> {
        match self {
            Answer::Witness(w) => Some(w),
            _ => None,
        }
    }

    /// The summary, if this is a [`Answer::Summary`].
    pub fn as_summary(&self) -> Option<&OrderingSummary> {
        match self {
            Answer::Summary(s) => Some(s),
            _ => None,
        }
    }
}

/// What [`ExactEngine::query`](crate::ExactEngine::query) returns: the
/// query echoed back (batching callers correlate by it) plus its answer.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Response {
    /// The query this answers.
    pub query: Query,
    /// The exact answer.
    pub answer: Answer,
}

impl Response {
    /// Pairs a query with its answer. The struct is non-exhaustive, so
    /// layers that answer queries without running the engine (the serving
    /// layer's caches) build responses through this constructor.
    pub fn new(query: Query, answer: Answer) -> Self {
        Response { query, answer }
    }
}

/// Which decision procedure answers the point queries (MHB / CHB / CCW
/// and the witness searches).
///
/// Both backends are exact and agree on every query; what differs is the
/// cost profile. `Exact` explores the cut lattice with memoized witness
/// searches; `Sat` encodes ⟨E, →T, →D⟩ as CNF once and answers each query
/// with one incremental solve against a shared CDCL solver
/// ([`crate::sat_backend::SatSession`]), amortizing learned clauses
/// across a batch. Experiment E19 measures the crossover.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum QueryBackend {
    /// The enumeration/state-space engines (the default).
    #[default]
    Exact,
    /// The symbolic partial-order CNF backend.
    Sat,
}

impl QueryBackend {
    /// A short lowercase label (CLI flag values, protocol fields).
    pub fn label(&self) -> &'static str {
        match self {
            QueryBackend::Exact => "exact",
            QueryBackend::Sat => "sat",
        }
    }
}

impl std::str::FromStr for QueryBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(QueryBackend::Exact),
            "sat" => Ok(QueryBackend::Sat),
            other => Err(format!("unknown backend `{other}` (expected exact|sat)")),
        }
    }
}

/// Everything configurable about an [`ExactEngine`](crate::ExactEngine),
/// in one struct with a [`Default`]: the paper's dependence-preserving
/// F(P), default [`Limits`], no supervisor budget.
///
/// The `with_mode` / `with_limits` / `with_budget` builder methods remain
/// and delegate here; `EngineOptions` is the one place new knobs land.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// Which feasibility notion the engine uses.
    pub mode: FeasibilityMode,
    /// Resource caps for the exact passes.
    pub limits: Limits,
    /// Optional supervisor budget (deadline, caps, cancellation); caps it
    /// leaves unset fall back to `limits`.
    pub budget: Option<Budget>,
    /// Which trace equivalence the F(P) enumeration quotients by. The
    /// default (Mazurkiewicz sleep sets) is the differential baseline;
    /// the coarser strategies visit fewer schedules with bit-identical
    /// answers.
    pub equiv: EquivStrategy,
}

impl EngineOptions {
    /// Options for the given feasibility mode, everything else default.
    pub fn with_mode(mode: FeasibilityMode) -> Self {
        EngineOptions {
            mode,
            ..Default::default()
        }
    }

    /// The budget queries actually run under: the attached [`Budget`]
    /// (or an unconstrained one), with any caps it leaves unset filled
    /// from `limits`. [`ExactEngine::query`](crate::ExactEngine::query)
    /// and the serving layer's sessions both resolve their budgets here,
    /// so a batched query and a one-shot query of the same engine
    /// configuration are stopped by identical bounds.
    pub fn effective_budget(&self) -> Budget {
        self.budget
            .clone()
            .unwrap_or_default()
            .with_default_caps(self.limits.max_states, self.limits.max_schedules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_the_papers_reading() {
        let opts = EngineOptions::default();
        assert_eq!(opts.mode, FeasibilityMode::PreserveDependences);
        assert!(opts.budget.is_none());
        let d = Limits::default();
        assert_eq!(opts.limits.max_states, d.max_states);
        assert_eq!(opts.limits.max_schedules, d.max_schedules);
    }

    #[test]
    fn query_hashes_and_labels() {
        use std::collections::HashMap;
        let (a, b) = (EventId::new(0), EventId::new(1));
        let mut m: HashMap<Query, u32> = HashMap::new();
        m.insert(Query::Mhb { a, b }, 1);
        m.insert(Query::Ccw { a, b }, 2);
        assert_eq!(m.get(&Query::Mhb { a, b }), Some(&1));
        assert_eq!(Query::Summary.op_name(), "summary");
        assert_eq!(
            Query::WitnessBefore {
                first: a,
                second: b
            }
            .op_name(),
            "witness_before"
        );
    }
}
