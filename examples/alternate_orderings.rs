//! The paper's opening observation, made visible: "due to nondeterministic
//! timing variations, the program may, on different occasions, execute
//! exactly the same events but exhibit different orderings among those
//! events."
//!
//! This example runs a two-stage pipeline once, enumerates **every**
//! feasible re-execution (the set F(P)), prints each one's forced
//! ordering, and then answers must/could questions three independent ways
//! (cut-lattice search, early-exit witness search, SAT encoding).
//!
//! ```text
//! cargo run -p event-ordering --example alternate_orderings
//! ```

use eo_engine::{queries, sat_backend, ExactEngine, FeasibilityMode, SearchCtx};
use eo_lang::generator::pipeline_program;
use eo_model::render;
use eo_relations::closure;

fn main() {
    let program = pipeline_program(2, 2);
    let trace = eo_lang::generator::run_deterministic(&program);
    let exec = trace.to_execution().expect("interpreter traces are valid");

    println!("observed execution:");
    print!("{}", render::render_trace(exec.trace()));

    // Enumerate the full feasible set.
    let engine = ExactEngine::new(&exec);
    let feasible = engine.feasible_set().expect("small execution");
    println!(
        "\n|F(P)| = {} feasible execution(s), found in {} schedule visits:\n",
        feasible.orders.len(),
        feasible.schedules_explored
    );
    for (i, order) in feasible.orders.iter().enumerate() {
        println!("feasible execution #{i} — forced orderings (reduced):");
        let reduced = closure::transitive_reduction_dag(order);
        for (a, b) in reduced.pairs() {
            println!(
                "  {} -> {}",
                render::event_name(&exec, eo_model::EventId::new(a)),
                render::event_name(&exec, eo_model::EventId::new(b))
            );
        }
    }

    // Ask one must-question and one could-question three ways each.
    let s0_last = exec.event_labeled("s0_item1").unwrap();
    let s1_first = exec.event_labeled("s1_item0").unwrap();
    let ctx = SearchCtx::new(&exec, FeasibilityMode::PreserveDependences);

    let mhb_space = engine.summary().mhb(s0_last, s1_first);
    let mhb_witness = queries::must_happen_before(&ctx, s0_last, s1_first);
    let mhb_sat = sat_backend::mhb_via_sat(&ctx, s0_last, s1_first);
    println!(
        "\nmust s0_item1 happen before s1_item0?  statespace={mhb_space} \
         witness-search={mhb_witness} sat-encoding={mhb_sat}"
    );
    assert_eq!(mhb_space, mhb_witness);
    assert_eq!(mhb_space, mhb_sat);

    let ccw_space = engine.summary().ccw(s0_last, s1_first);
    let ccw_witness = queries::could_be_concurrent(&ctx, s0_last, s1_first);
    println!(
        "could they run concurrently?           statespace={ccw_space} \
         witness-search={ccw_witness}"
    );
    assert_eq!(ccw_space, ccw_witness);

    // And extract an actual alternate schedule as a certificate.
    if let Some(witness) = sat_backend::chb_via_sat(&ctx, s1_first, s0_last) {
        println!("\nan alternate feasible schedule running s1_item0 before s0_item1:");
        for e in &witness {
            println!("  {}", render::event_name(&exec, *e));
        }
        // Prove it by replaying.
        assert!(ctx.machine().replay(&witness).is_ok());
        println!("(replayed on the synchronization machine: valid)");
    } else {
        println!("\nno feasible schedule reorders them — the handshake forbids it.");
    }
}
