//! Theorems 3–4: the event-style (Post/Wait/Clear) reduction from
//! 3CNFSAT.
//!
//! The counting-semaphore construction of Theorem 1 hinges on `P(A_i)`
//! admitting exactly one winner. With event variables the same effect
//! needs *two-process mutual exclusion built from `Clear`* — the paper's
//! per-variable gadget:
//!
//! ```text
//! var_i:  Post(A_i); Post(B_i); fork {side1_i, side2_i}; join
//! side1_i: Clear(A_i); Wait(B_i); Post(X_i)
//! side2_i: Clear(B_i); Wait(A_i); Post(X̄_i)
//! ```
//!
//! Before the second pass, `A_i`/`B_i` are each posted once; a cyclic-wait
//! argument (each side clears the *other's* flag before waiting on its
//! own) shows at most one of `Post(X_i)`, `Post(X̄_i)` can execute — the
//! truth-value guess. Clause processes are `Wait(L); Post(C_j)`, and the
//! endpoints mirror Theorem 1's:
//!
//! ```text
//! proc_a: a: skip; Post(A_1); Post(B_1); …; Post(A_n); Post(B_n)
//! proc_b: Wait(C_1); …; Wait(C_m); b: skip
//! ```
//!
//! Unlike the semaphore program, *this one can deadlock* (the paper says
//! so explicitly): e.g. if both sides clear first, or if a side's `Clear`
//! eats the second-pass `Post`. Feasible program executions are the
//! complete schedules only, and the observed run must be one — the
//! builder uses a priority scheduler (gadget sides run eagerly, `proc_a`
//! runs only when nothing else can) which provably completes: sides
//! resolve each gadget immediately, and the deferred second pass re-posts
//! every flag after all `Clear`s have already happened.
//!
//! Claims checked by [`verify`]: `a MHB b ⇔ B unsatisfiable` (Theorem 3),
//! `b CHB a ⇔ B satisfiable` (Theorem 4).

use crate::ReductionCheck;
use eo_lang::{run_to_trace, Program, ProgramBuilder, Scheduler};
use eo_model::{EventId, ProgramExecution};
use eo_sat::{Formula, Solver};

/// The built Theorem 3/4 reduction.
pub struct EventReduction {
    /// The constructed program.
    pub program: Program,
    /// An observed *complete* execution (found by the priority schedule).
    pub exec: ProgramExecution,
    /// The `a: skip` event.
    pub a: EventId,
    /// The `b: skip` event.
    pub b: EventId,
    formula: Formula,
}

impl EventReduction {
    /// Builds the Theorem 3/4 program for `formula` and runs it to a
    /// complete observed execution.
    ///
    /// # Panics
    /// Panics if the formula is not 3CNF.
    pub fn build(formula: &Formula) -> EventReduction {
        assert!(formula.is_3cnf(), "the reduction consumes 3CNF formulas");
        let n = formula.n_vars;
        let m = formula.clauses.len();
        let mut b = ProgramBuilder::new();

        let a_flag: Vec<_> = (0..n).map(|i| b.event_var(&format!("A{i}"))).collect();
        let b_flag: Vec<_> = (0..n).map(|i| b.event_var(&format!("B{i}"))).collect();
        let lit_pos: Vec<_> = (0..n).map(|i| b.event_var(&format!("X{i}"))).collect();
        let lit_neg: Vec<_> = (0..n).map(|i| b.event_var(&format!("notX{i}"))).collect();
        let clause_flag: Vec<_> = (0..m).map(|j| b.event_var(&format!("C{j}"))).collect();

        // Scheduler priorities per *definition*: sides run most eagerly,
        // proc_a only when everything else is blocked.
        let mut priorities: Vec<u32> = Vec::new();

        for i in 0..n {
            let v = b.process(&format!("var_{i}"));
            priorities.push(1);
            let s1 = b.subprocess(&format!("side1_{i}"));
            priorities.push(0);
            let s2 = b.subprocess(&format!("side2_{i}"));
            priorities.push(0);

            b.post(v, a_flag[i]);
            b.post(v, b_flag[i]);
            b.fork(v, &[s1, s2]);
            b.join(v, &[s1, s2]);

            b.clear(s1, a_flag[i]);
            b.wait(s1, b_flag[i]);
            b.labeled(
                s1,
                eo_lang::StmtKind::Post(lit_pos[i]),
                &format!("Post_X{i}"),
            );

            b.clear(s2, b_flag[i]);
            b.wait(s2, a_flag[i]);
            b.labeled(
                s2,
                eo_lang::StmtKind::Post(lit_neg[i]),
                &format!("Post_notX{i}"),
            );
        }

        for (j, clause) in formula.clauses.iter().enumerate() {
            for (k, lit) in clause.0.iter().enumerate() {
                let p = b.process(&format!("clause_{j}_{k}"));
                priorities.push(2);
                let flag = if lit.positive {
                    lit_pos[lit.var.index()]
                } else {
                    lit_neg[lit.var.index()]
                };
                b.wait(p, flag);
                b.post(p, clause_flag[j]);
            }
        }

        let pa = b.process("proc_a");
        priorities.push(4);
        b.compute(pa, "a");
        for i in 0..n {
            b.post(pa, a_flag[i]);
            b.post(pa, b_flag[i]);
        }

        let pb = b.process("proc_b");
        priorities.push(3);
        for &c in clause_flag.iter().take(m) {
            b.wait(pb, c);
        }
        b.compute(pb, "b");

        let program = b.build();
        let trace = run_to_trace(&program, &mut Scheduler::priority(priorities))
            .expect("the priority schedule completes the Theorem 3 program");
        let exec = trace.to_execution().expect("interpreter traces are valid");
        let a = exec.event_labeled("a").expect("endpoint a exists");
        let b_ev = exec.event_labeled("b").expect("endpoint b exists");

        EventReduction {
            program,
            exec,
            a,
            b: b_ev,
            formula: formula.clone(),
        }
    }

    /// The encoded formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Decides `a MHB b` (Theorem 3's co-NP-hard question).
    pub fn decide_mhb(&self) -> bool {
        eo_engine::ExactEngine::new(&self.exec).mhb(self.a, self.b)
    }

    /// Witness for `b CHB a` (Theorem 4's NP-hard question).
    pub fn witness_b_before_a(&self) -> Option<Vec<EventId>> {
        eo_engine::ExactEngine::new(&self.exec).witness_before(self.b, self.a)
    }

    /// Reads a truth assignment off a witness schedule: variable `i` is
    /// true iff `Post(X_i)` executes before `a`.
    pub fn extract_assignment(&self, witness: &[EventId]) -> Vec<bool> {
        let pos_of_a = witness
            .iter()
            .position(|&e| e == self.a)
            .unwrap_or(witness.len());
        (0..self.formula.n_vars)
            .map(|i| {
                self.exec
                    .event_labeled(&format!("Post_X{i}"))
                    .and_then(|e| witness.iter().position(|&x| x == e))
                    .is_some_and(|p| p < pos_of_a)
            })
            .collect()
    }
}

/// End-to-end check of Theorems 3 and 4 on one formula.
pub fn verify(formula: &Formula) -> ReductionCheck {
    let red = EventReduction::build(formula);
    let sat = Solver::satisfiable(formula);
    ReductionCheck {
        sat,
        mhb_ab: red.decide_mhb(),
        chb_ba: red.witness_b_before_a().is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_counts_match_the_paper() {
        let f = Formula::random_3cnf(3, 3, 1);
        let red = EventReduction::build(&f);
        let (n, m) = (3, 3);
        assert_eq!(red.program.processes.len(), 3 * n + 3 * m + 2);
        assert_eq!(red.program.event_vars.len(), 4 * n + m);
        assert_eq!(red.exec.d().pair_count(), 0, "no shared variables");
    }

    #[test]
    fn observed_execution_is_complete() {
        let f = Formula::random_3cnf(3, 3, 5);
        let red = EventReduction::build(&f);
        // Every process's events appear, including both sides' posts.
        for i in 0..3 {
            assert!(red.exec.event_labeled(&format!("Post_X{i}")).is_some());
            assert!(red.exec.event_labeled(&format!("Post_notX{i}")).is_some());
        }
    }

    #[test]
    fn unsat_formula_forces_a_before_b() {
        let f = Formula::unsat_tiny();
        let check = verify(&f);
        assert!(!check.sat);
        assert!(check.mhb_ab, "Theorem 3");
        assert!(!check.chb_ba, "Theorem 4 contrapositive");
        assert!(check.consistent());
    }

    #[test]
    fn sat_formula_frees_b() {
        let f = Formula::trivially_sat(3, 2);
        let check = verify(&f);
        assert!(check.sat && check.chb_ba && !check.mhb_ab);
        assert!(check.consistent());
    }

    #[test]
    fn theorem_claims_hold_on_random_formulas() {
        for seed in 0..6 {
            let f = Formula::random_3cnf(3, 3, seed);
            let check = verify(&f);
            assert!(
                check.consistent(),
                "seed {seed}: {check:?} on {}",
                f.display()
            );
        }
    }

    #[test]
    fn witness_round_trips_to_a_satisfying_assignment() {
        for seed in [1, 4] {
            let f = Formula::random_3cnf(3, 3, seed);
            if !Solver::satisfiable(&f) {
                continue;
            }
            let red = EventReduction::build(&f);
            let witness = red.witness_b_before_a().expect("sat ⇒ witness");
            let assignment = red.extract_assignment(&witness);
            assert!(
                f.satisfied_by(&assignment),
                "seed {seed}: assignment from witness must satisfy {}",
                f.display()
            );
        }
    }

    #[test]
    fn gadget_deadlocks_exist_under_bad_schedules() {
        // The paper notes the construction can deadlock; random schedules
        // find such runs (e.g. both sides clear first and the second-pass
        // reposts get eaten).
        let f = Formula::random_3cnf(3, 3, 2);
        let red = EventReduction::build(&f);
        let mut deadlocked = 0;
        for seed in 0..20 {
            if run_to_trace(&red.program, &mut Scheduler::random(seed)).is_err() {
                deadlocked += 1;
            }
        }
        assert!(deadlocked > 0, "some random schedule should deadlock");
    }
}
