//! Shared criterion configuration: small samples, short measurement
//! windows — the points being made are orders-of-magnitude separations,
//! not 1% regressions.
use criterion::Criterion;
use std::time::Duration;

#[allow(dead_code)]
pub fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
