//! # event-ordering
//!
//! An executable reproduction of:
//!
//! > Robert H. B. Netzer and Barton P. Miller,
//! > *On the Complexity of Event Ordering for Shared-Memory Parallel
//! > Program Executions*, Proc. 1990 International Conference on Parallel
//! > Processing (UW–Madison TR 908).
//!
//! The paper models an execution of a shared-memory parallel program as a
//! triple ⟨E, →T, →D⟩ — events, temporal ordering, and shared-data
//! dependences — defines the set F(P) of *feasible* alternate executions,
//! and proves that the six ordering relations of its Table 1 (must-have /
//! could-have × happened-before / concurrent-with / ordered-with) are
//! co-NP-hard / NP-hard to compute. This workspace turns every object in
//! that story into running code:
//!
//! * [`model`] — the formal execution model (events, traces, ⟨E, →T, →D⟩);
//! * [`lang`] — a small concurrent language (fork/join, counting
//!   semaphores, Post/Wait/Clear) with a sequentially consistent
//!   interpreter that *generates* executions;
//! * [`relations`] — binary-relation algebra, graphs, vector clocks;
//! * [`engine`] — the exact (exponential) computation of all six ordering
//!   relations by enumerating feasible executions, plus targeted witness
//!   queries;
//! * [`approx`] — the polynomial baselines the paper critiques
//!   (Emrath–Ghosh–Padua task graphs, Helmbold–McDowell–Wang safe
//!   orderings, vector clocks);
//! * [`sat`] — 3CNF formulas and a DPLL solver;
//! * [`reductions`] — the Theorem 1–4 program constructions mapping 3CNFSAT
//!   to ordering queries, and the single-semaphore reduction;
//! * [`race`] — exact vs. approximate data-race detection (the paper's
//!   closing implication), with a sound static pruning pre-pass;
//! * [`lint`] — static synchronization analysis: misuse lints, wait-for
//!   deadlock cycles, and the guaranteed orderings behind the race
//!   pruning (`eo lint` on the command line).
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for measured results.
//!
//! ## Quickstart
//!
//! ```
//! use event_ordering::prelude::*;
//!
//! // Two processes synchronising through a semaphore:
//! //   p0: V(s); compute          p1: P(s); compute
//! let mut b = ProgramBuilder::new();
//! let s = b.semaphore("s");
//! let p0 = b.process("p0");
//! b.sem_v(p0, s);
//! b.compute(p0, "after-v");
//! let p1 = b.process("p1");
//! b.sem_p(p1, s);
//! b.compute(p1, "after-p");
//! let program = b.build();
//!
//! // Run it once to observe an execution, then ask the exact engine
//! // which orderings *must* hold in every feasible re-execution.
//! let trace = run_to_trace(&program, &mut Scheduler::deterministic()).unwrap();
//! let exec = trace.to_execution().unwrap();
//! let summary = ExactEngine::new(&exec).summary();
//! let a_id = exec.event_labeled("after-v").unwrap();
//! let c_id = exec.event_labeled("after-p").unwrap();
//! // V(s) must precede P(s), so `a` need not precede `c` … but P waits on
//! // V, hence "after-p" can never precede "after-v"'s own V. The summary
//! // answers all six Table-1 relations:
//! assert!(summary.chb(a_id, c_id) || summary.ccw(a_id, c_id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eo_approx as approx;
pub use eo_engine as engine;
pub use eo_lang as lang;
pub use eo_lint as lint;
pub use eo_model as model;
pub use eo_race as race;
pub use eo_reductions as reductions;
pub use eo_relations as relations;
pub use eo_sat as sat;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use eo_approx::{egp::TaskGraph, hmw::SafeOrderings, vc::VectorClockHb};
    pub use eo_engine::{ExactEngine, OrderingSummary};
    pub use eo_lang::{run_to_trace, Program, ProgramBuilder, Scheduler};
    pub use eo_lint::{lint_program, lint_trace, LintOptions, LintReport};
    pub use eo_model::{Event, EventId, Op, ProgramExecution, Trace};
    pub use eo_relations::{BitSet, Relation, VectorClock};
    pub use eo_sat::{Formula, Solver};
}
