//! Human-readable rendering of traces, executions, and event relations.
//!
//! Used by the examples and the `eo` CLI; nothing here affects analysis
//! results. All functions return `String` so they are trivially testable.

use crate::event::Op;
use crate::execution::ProgramExecution;
use crate::ids::EventId;
use crate::trace::Trace;
use eo_relations::{closure, Relation};

/// One line per event: id, process, operation, accesses, label.
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        let proc_name = &trace.processes[e.process.index()].name;
        let op = describe_op(trace, &e.op);
        let mut accesses = String::new();
        if !e.reads.is_empty() {
            accesses.push_str(" reads{");
            accesses.push_str(
                &e.reads
                    .iter()
                    .map(|v| trace.variables[v.index()].name.clone())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            accesses.push('}');
        }
        if !e.writes.is_empty() {
            accesses.push_str(" writes{");
            accesses.push_str(
                &e.writes
                    .iter()
                    .map(|v| trace.variables[v.index()].name.clone())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            accesses.push('}');
        }
        let label = e
            .label
            .as_deref()
            .map(|l| format!("  [{l}]"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:>4}  {:<12} {}{}{}\n",
            e.id.to_string(),
            proc_name,
            op,
            accesses,
            label
        ));
    }
    out
}

/// Describes one operation with declared object names.
pub fn describe_op(trace: &Trace, op: &Op) -> String {
    match op {
        Op::Compute => "compute".to_string(),
        Op::SemP(s) => format!("P({})", trace.semaphores[s.index()].name),
        Op::SemV(s) => format!("V({})", trace.semaphores[s.index()].name),
        Op::Post(v) => format!("Post({})", trace.event_vars[v.index()].name),
        Op::Wait(v) => format!("Wait({})", trace.event_vars[v.index()].name),
        Op::Clear(v) => format!("Clear({})", trace.event_vars[v.index()].name),
        Op::Fork(kids) => format!(
            "fork{{{}}}",
            kids.iter()
                .map(|p| trace.processes[p.index()].name.clone())
                .collect::<Vec<_>>()
                .join(",")
        ),
        Op::Join(kids) => format!(
            "join{{{}}}",
            kids.iter()
                .map(|p| trace.processes[p.index()].name.clone())
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

/// A short display name for an event: its label if present, else
/// `id:mnemonic`.
pub fn event_name(exec: &ProgramExecution, e: EventId) -> String {
    let ev = exec.event(e);
    ev.label
        .clone()
        .unwrap_or_else(|| format!("{}:{}", ev.id, ev.op.mnemonic()))
}

/// Renders a relation over events as `x -> y` lines using event names.
/// When the relation is a closed DAG, pass `reduce = true` to print its
/// transitive reduction instead (far more readable).
pub fn render_relation(exec: &ProgramExecution, rel: &Relation, reduce: bool) -> String {
    let shown = if reduce && rel.is_acyclic() {
        closure::transitive_reduction_dag(&rel.transitive_closure())
    } else {
        rel.clone()
    };
    let mut out = String::new();
    for (a, b) in shown.pairs() {
        out.push_str(&format!(
            "{} -> {}\n",
            event_name(exec, EventId::new(a)),
            event_name(exec, EventId::new(b))
        ));
    }
    out
}

/// Renders an n×n boolean matrix of the relation with event ids as
/// headers (rows = sources). Best for small executions.
pub fn render_matrix(rel: &Relation) -> String {
    let n = rel.len();
    let mut out = String::from("      ");
    for b in 0..n {
        out.push_str(&format!("{b:>3}"));
    }
    out.push('\n');
    for a in 0..n {
        out.push_str(&format!("{a:>4}  "));
        for b in 0..n {
            out.push_str(if rel.contains(a, b) { "  ■" } else { "  ·" });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn trace_rendering_mentions_everything() {
        let (trace, _ids) = fixtures::figure1();
        let text = render_trace(&trace);
        assert!(text.contains("fork{t1,t2,t3}"));
        assert!(text.contains("Post(ev)"));
        assert!(text.contains("writes{X}"));
        assert!(text.contains("[post_left]"));
        assert_eq!(text.lines().count(), trace.n_events());
    }

    #[test]
    fn event_names_prefer_labels() {
        let (trace, ids) = fixtures::figure1();
        let exec = trace.to_execution().unwrap();
        assert_eq!(event_name(&exec, ids.post_left), "post_left");
        assert_eq!(event_name(&exec, ids.fork), format!("{}:fork", ids.fork));
    }

    #[test]
    fn relation_rendering_reduces_when_asked() {
        let (trace, _) = fixtures::sem_handshake();
        let exec = trace.to_execution().unwrap();
        let full = render_relation(&exec, exec.t(), false);
        let reduced = render_relation(&exec, exec.t(), true);
        assert!(reduced.lines().count() <= full.lines().count());
        assert!(reduced.contains("->"));
    }

    #[test]
    fn matrix_rendering_shape() {
        let (trace, _a, _b) = fixtures::independent_pair();
        let exec = trace.to_execution().unwrap();
        let m = render_matrix(exec.t());
        assert_eq!(m.lines().count(), exec.n_events() + 1);
    }
}
