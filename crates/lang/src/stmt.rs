//! Dense statement identities over a [`Program`]'s AST.
//!
//! Every analysis that talks about *static statements* — the
//! Callahan–Subhlok guaranteed-ordering analysis in `eo-approx`, the
//! lints in `eo-lint`, and the anchored interpreter runs in
//! [`crate::interp`] — needs a common way to name an AST node. A
//! [`StmtMap`] flattens a program into a dense preorder numbering
//! ([`StmtId`]): processes in definition order; within a process each
//! statement is numbered before its sub-blocks, an `If` contributing
//! first its then-branch and then its else-branch.
//!
//! The map also records block structure (per-process bodies, per-`If`
//! branch id lists, and each statement's innermost enclosing branch),
//! which gives cheap answers to the structural questions diagnostics
//! ask: "which process owns this statement?", "are these two statements
//! on mutually exclusive branches of the same conditional?", "where in
//! the source does this id point?".

use crate::ast::{ProcRef, Program, Stmt, StmtKind};

/// Identity of one static statement (one AST node), densely numbered
/// across the whole program in flattening preorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Dense index into the flattened statement table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which branch of an `If` a statement sits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchSide {
    /// The `then` (equals) branch.
    Then,
    /// The `else` branch.
    Else,
}

/// The flattened statement table of one program.
///
/// Borrows the program; build it where the program lives and query away.
pub struct StmtMap<'p> {
    program: &'p Program,
    nodes: Vec<&'p Stmt>,
    process: Vec<ProcRef>,
    /// Innermost enclosing `If` and the branch side, if any.
    parent: Vec<Option<(StmtId, BranchSide)>>,
    /// Per process definition: ids of its top-level block, in order.
    bodies: Vec<Vec<StmtId>>,
    /// Per statement: branch id lists (empty unless the statement is an
    /// `If`).
    then_ids: Vec<Vec<StmtId>>,
    else_ids: Vec<Vec<StmtId>>,
}

impl<'p> StmtMap<'p> {
    /// Flattens `program`. Cheap (one AST walk); does not validate.
    pub fn build(program: &'p Program) -> StmtMap<'p> {
        let mut map = StmtMap {
            program,
            nodes: Vec::new(),
            process: Vec::new(),
            parent: Vec::new(),
            bodies: Vec::new(),
            then_ids: Vec::new(),
            else_ids: Vec::new(),
        };
        for (pi, def) in program.processes.iter().enumerate() {
            let ids = map.block(ProcRef(pi as u32), &def.body, None);
            map.bodies.push(ids);
        }
        map
    }

    fn block(
        &mut self,
        p: ProcRef,
        stmts: &'p [Stmt],
        parent: Option<(StmtId, BranchSide)>,
    ) -> Vec<StmtId> {
        stmts.iter().map(|s| self.stmt(p, s, parent)).collect()
    }

    fn stmt(&mut self, p: ProcRef, stmt: &'p Stmt, parent: Option<(StmtId, BranchSide)>) -> StmtId {
        let id = StmtId(self.nodes.len() as u32);
        self.nodes.push(stmt);
        self.process.push(p);
        self.parent.push(parent);
        self.then_ids.push(Vec::new());
        self.else_ids.push(Vec::new());
        if let StmtKind::If {
            then_branch,
            else_branch,
            ..
        } = &stmt.kind
        {
            let t = self.block(p, then_branch, Some((id, BranchSide::Then)));
            let e = self.block(p, else_branch, Some((id, BranchSide::Else)));
            self.then_ids[id.index()] = t;
            self.else_ids[id.index()] = e;
        }
        id
    }

    /// The program this map was built from.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the program has no statements at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All statement ids, in numbering order.
    pub fn ids(&self) -> impl Iterator<Item = StmtId> {
        (0..self.nodes.len() as u32).map(StmtId)
    }

    /// The AST node behind `id`.
    pub fn node(&self, id: StmtId) -> &'p Stmt {
        self.nodes[id.index()]
    }

    /// The statement's kind.
    pub fn kind(&self, id: StmtId) -> &'p StmtKind {
        &self.nodes[id.index()].kind
    }

    /// The process definition owning `id`.
    pub fn process(&self, id: StmtId) -> ProcRef {
        self.process[id.index()]
    }

    /// The innermost enclosing `If` and which branch, if the statement is
    /// inside a conditional.
    pub fn parent(&self, id: StmtId) -> Option<(StmtId, BranchSide)> {
        self.parent[id.index()]
    }

    /// Top-level statement ids of process `p`, in order.
    pub fn body(&self, p: ProcRef) -> &[StmtId] {
        &self.bodies[p.index()]
    }

    /// Then-branch ids of an `If` (empty for other statements).
    pub fn then_branch(&self, id: StmtId) -> &[StmtId] {
        &self.then_ids[id.index()]
    }

    /// Else-branch ids of an `If` (empty for other statements).
    pub fn else_branch(&self, id: StmtId) -> &[StmtId] {
        &self.else_ids[id.index()]
    }

    /// The first statement carrying `label`, scanning in numbering order.
    pub fn labeled(&self, label: &str) -> Option<StmtId> {
        self.ids()
            .find(|&id| self.node(id).label.as_deref() == Some(label))
    }

    /// Short mnemonic for the statement kind (diagnostics).
    pub fn kind_name(&self, id: StmtId) -> &'static str {
        kind_name(&self.nodes[id.index()].kind)
    }

    /// Do `a` and `b` sit on opposite branches of a common conditional?
    ///
    /// If so, no single execution runs both — useful for pruning
    /// "deadlock partner" candidates and imbalance counts.
    pub fn mutually_exclusive(&self, a: StmtId, b: StmtId) -> bool {
        // Collect a's ancestor chain: If id -> side taken.
        let mut chain: Vec<(StmtId, BranchSide)> = Vec::new();
        let mut cur = self.parent[a.index()];
        while let Some((anc, side)) = cur {
            chain.push((anc, side));
            cur = self.parent[anc.index()];
        }
        let mut cur = self.parent[b.index()];
        while let Some((anc, side)) = cur {
            if let Some(&(_, a_side)) = chain.iter().find(|&&(i, _)| i == anc) {
                return a_side != side;
            }
            cur = self.parent[anc.index()];
        }
        false
    }

    /// Human-readable location of `id`: process name, index, kind and
    /// label if present — e.g. `` `side1` stmt #2 (Wait "wait_B") ``.
    pub fn describe(&self, id: StmtId) -> String {
        let node = self.nodes[id.index()];
        let pname = &self.program.processes[self.process[id.index()].index()].name;
        match &node.label {
            Some(l) => format!(
                "`{pname}` stmt #{} ({} \"{l}\")",
                id.0,
                kind_name(&node.kind)
            ),
            None => format!("`{pname}` stmt #{} ({})", id.0, kind_name(&node.kind)),
        }
    }
}

/// Short mnemonic for a statement kind.
pub fn kind_name(kind: &StmtKind) -> &'static str {
    match kind {
        StmtKind::Skip => "skip",
        StmtKind::Compute { .. } => "compute",
        StmtKind::Assign { .. } => "assign",
        StmtKind::SemP(_) => "P",
        StmtKind::SemV(_) => "V",
        StmtKind::Post(_) => "Post",
        StmtKind::Wait(_) => "Wait",
        StmtKind::Clear(_) => "Clear",
        StmtKind::Fork(_) => "fork",
        StmtKind::Join(_) => "join",
        StmtKind::If { .. } => "if",
        StmtKind::BarrierWait(_) => "barrier_wait",
        StmtKind::Lock(_) => "lock",
        StmtKind::Unlock(_) => "unlock",
        StmtKind::CondWait(..) => "cond_wait",
        StmtKind::CondSignal(_) => "cond_signal",
        StmtKind::Send(_) => "send",
        StmtKind::Recv(_) => "recv",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn preorder_numbering_processes_then_branches() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let p0 = b.process("p0");
        b.compute(p0, "a"); // 0
        b.if_eq_labeled(
            p0,
            x,
            0,
            "test", // 1
            |t| {
                t.compute_here("then0"); // 2
                t.compute_here("then1"); // 3
            },
            |e| {
                e.compute_here("else0"); // 4
            },
        );
        b.compute(p0, "b"); // 5
        let p1 = b.process("p1");
        b.compute(p1, "c"); // 6
        let prog = b.build();
        let map = StmtMap::build(&prog);

        assert_eq!(map.len(), 7);
        for (label, want) in [
            ("a", 0),
            ("test", 1),
            ("then0", 2),
            ("then1", 3),
            ("else0", 4),
            ("b", 5),
            ("c", 6),
        ] {
            assert_eq!(map.labeled(label), Some(StmtId(want)), "label {label}");
        }
        assert_eq!(map.body(ProcRef(0)), &[StmtId(0), StmtId(1), StmtId(5)]);
        assert_eq!(map.body(ProcRef(1)), &[StmtId(6)]);
        assert_eq!(map.then_branch(StmtId(1)), &[StmtId(2), StmtId(3)]);
        assert_eq!(map.else_branch(StmtId(1)), &[StmtId(4)]);
        assert_eq!(map.process(StmtId(4)), ProcRef(0));
        assert_eq!(map.process(StmtId(6)), ProcRef(1));
    }

    #[test]
    fn parent_chains_and_mutual_exclusion() {
        let mut b = ProgramBuilder::new();
        let x = b.variable("x");
        let p = b.process("p");
        b.compute(p, "outside");
        b.if_eq_labeled(
            p,
            x,
            0,
            "outer",
            |t| {
                t.compute_here("in_then");
                t.if_eq_here(
                    x,
                    1,
                    |tt| {
                        tt.compute_here("deep_then");
                    },
                    |ee| {
                        ee.compute_here("deep_else");
                    },
                );
            },
            |e| {
                e.compute_here("in_else");
            },
        );
        let prog = b.build();
        let map = StmtMap::build(&prog);
        let outside = map.labeled("outside").unwrap();
        let in_then = map.labeled("in_then").unwrap();
        let in_else = map.labeled("in_else").unwrap();
        let deep_then = map.labeled("deep_then").unwrap();
        let deep_else = map.labeled("deep_else").unwrap();

        assert_eq!(map.parent(outside), None);
        assert!(map.mutually_exclusive(in_then, in_else));
        assert!(
            map.mutually_exclusive(deep_then, in_else),
            "nested vs sibling branch"
        );
        assert!(map.mutually_exclusive(deep_then, deep_else));
        assert!(
            !map.mutually_exclusive(in_then, deep_then),
            "same branch path"
        );
        assert!(!map.mutually_exclusive(outside, in_then));
        assert!(!map.mutually_exclusive(outside, outside));
    }

    #[test]
    fn describe_names_the_process_and_kind() {
        let mut b = ProgramBuilder::new();
        let ev = b.event_var("ev");
        let p = b.process("worker");
        b.compute(p, "setup");
        b.post(p, ev);
        let prog = b.build();
        let map = StmtMap::build(&prog);
        let setup = map.labeled("setup").unwrap();
        assert_eq!(map.describe(setup), "`worker` stmt #0 (compute \"setup\")");
        assert_eq!(map.kind_name(StmtId(1)), "Post");
        assert!(map.describe(StmtId(1)).contains("(Post)"));
    }
}
